//! Standalone use of the SCAP calculator as a pattern screen: measure
//! every pattern of an existing set, flag the ones whose block power
//! exceeds the statistical threshold, and show the fill-policy ablation
//! the paper discusses in §3.1 (random vs fill-0 vs fill-1 vs
//! fill-adjacent).
//!
//! ```text
//! cargo run --release --example scap_screening [scale]
//! ```

use scap::dft::FillPolicy;
use scap::{experiments, flows, CaseStudy, PatternAnalyzer};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.004);
    println!("building case-study SOC at scale {scale} …");
    let study = CaseStudy::new(scale);
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let threshold = experiments::scap_thresholds(&study)[b5.index()];
    println!("B5 SCAP threshold: {threshold:.2} mW\n");
    println!("fill policy      patterns  coverage  mean B5 SCAP  above-threshold");

    let analyzer = PatternAnalyzer::new(&study);
    for fill in FillPolicy::ALL {
        let flow = flows::conventional_with(&study, flows::flow_atpg_config(fill));
        let profile = analyzer.power_profile(&flow.patterns);
        let scaps: Vec<f64> = profile.iter().map(|p| p.scap_vdd_mw(b5)).collect();
        let mean = scaps.iter().sum::<f64>() / scaps.len().max(1) as f64;
        let above = scaps.iter().filter(|&&s| s > threshold).count();
        println!(
            "{:<16} {:>8}  {:>7.1}%  {:>11.2}  {:>10} ({:.1} %)",
            fill.to_string(),
            flow.patterns.len(),
            100.0 * flow.fault_coverage(),
            mean,
            above,
            100.0 * above as f64 / scaps.len().max(1) as f64
        );
    }
}
