//! The paper's Section 3 experiment: conventional random-fill ATPG vs the
//! staged, fill-0, per-block noise-aware procedure — coverage curves
//! (Figure 4), SCAP profiles (Figures 2 and 6) and the IR-drop-aware
//! endpoint re-timing (Figure 7).
//!
//! ```text
//! cargo run --release --example noise_aware_flow [scale]
//! ```

use scap::{experiments, flows, CaseStudy};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    println!("building case-study SOC at scale {scale} …");
    let study = CaseStudy::new(scale);

    println!("running conventional (random-fill) ATPG …");
    let conventional = flows::conventional(&study);
    println!("running the noise-aware staged procedure …");
    let noise_aware = flows::noise_aware(&study);
    for (label, start) in &noise_aware.steps {
        println!("  {label}: starts at pattern {start}");
    }

    println!(
        "\n{}",
        experiments::render_fig4(&conventional, &noise_aware)
    );

    let fig2 = experiments::fig2(&study, &conventional);
    let fig6 = experiments::fig6(&study, &noise_aware);
    println!(
        "{}",
        experiments::render_scap_series("Figure 2 (random-fill B5 SCAP)", &fig2)
    );
    println!(
        "{}",
        experiments::render_scap_series("Figure 6 (noise-aware B5 SCAP)", &fig6)
    );
    println!(
        "patterns above the B5 threshold: conventional {} / noise-aware {}\n",
        fig2.above.len(),
        fig6.above.len()
    );

    let fig7 = experiments::fig7(&study, &noise_aware);
    println!("{}", experiments::render_fig7(&fig7));
}
