//! Quickstart: generate a small SOC, run noise-aware ATPG, report SCAP.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scap::experiments;
use scap::{flows, CaseStudy, PatternAnalyzer};

fn main() {
    // A seeded, deterministic instance of the Turbo-Eagle-style case-study
    // SOC at 0.5 % of the paper's size — small enough to run in seconds.
    let study = CaseStudy::small();
    let report = experiments::table1(&study);
    println!("{}", experiments::render_table1(&report));
    println!("{}", experiments::render_table2(&report));

    // Conventional (random-fill) vs the paper's noise-aware procedure.
    let conventional = flows::conventional(&study);
    let noise_aware = flows::noise_aware(&study);
    println!(
        "conventional: {:>4} patterns, {:.1} % fault coverage",
        conventional.patterns.len(),
        100.0 * conventional.fault_coverage()
    );
    println!(
        "noise-aware : {:>4} patterns, {:.1} % fault coverage",
        noise_aware.patterns.len(),
        100.0 * noise_aware.fault_coverage()
    );

    // SCAP screening in the hot block B5.
    let fig2 = experiments::fig2(&study, &conventional);
    let fig6 = experiments::fig6(&study, &noise_aware);
    println!(
        "{}",
        experiments::render_scap_series("random-fill  B5 SCAP", &fig2)
    );
    println!(
        "{}",
        experiments::render_scap_series("noise-aware  B5 SCAP", &fig6)
    );

    // Worst pattern's IR-drop map.
    let analyzer = PatternAnalyzer::new(&study);
    let profile = analyzer.power_profile(&conventional.patterns);
    let worst = profile
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.chip_scap_vdd_mw()
                .partial_cmp(&b.chip_scap_vdd_mw())
                .expect("finite power")
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    let map = analyzer.ir_drop(&conventional.patterns.filled[worst]);
    println!(
        "worst pattern #{worst}: VDD drop {:.3} V, VSS bounce {:.3} V",
        map.worst_drop_vdd(),
        map.worst_drop_vss()
    );
    print!("{}", map.render_vdd_map(study.design.netlist.library.vdd));
}
