//! Beyond the paper: small-delay defects and faster-than-at-speed capture,
//! peak-power waveforms, failure diagnosis and power-constrained test
//! scheduling — all on the same generated case-study SOC.
//!
//! ```text
//! cargo run --release --example advanced_analysis [scale]
//! ```

use rand::SeedableRng;
use scap::dft::{FillPolicy, PatternSet, TestPattern};
use scap::diagnose::{diagnose, FailureLog};
use scap::power::PowerWaveform;
use scap::sdd::SddAnalysis;
use scap::sim::{FaultList, PropagationScratch, TransitionFaultSim};
use scap::{schedule, CaseStudy, PatternAnalyzer};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    println!("building case-study SOC at scale {scale} …");
    let study = CaseStudy::new(scale);
    let n = &study.design.netlist;
    let faults = FaultList::full(n);

    // A quick random pattern set stands in for a production set.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let mut set = PatternSet::new();
    for _ in 0..48 {
        let p = TestPattern::unspecified(n);
        let f = p.fill(n, FillPolicy::Random, &mut rng);
        set.push(p, f);
    }

    // --- small-delay defects & faster-than-at-speed -------------------
    let sdd = SddAnalysis::new(&study);
    let profile = sdd.profile(&faults, &set);
    let period = study.period_ps();
    println!("\nsmall-delay-defect coverage (of logic-detected faults):");
    // The clka cycle is 20 ns and sensitized paths land around 8-10 ns,
    // so slacks sit near 10 ns: sweep defect sizes around that knee.
    for defect_ns in [6.0, 9.0, 12.0, 15.0] {
        let at_speed = profile.sdd_coverage(defect_ns * 1000.0, period);
        let fast = profile.sdd_coverage(defect_ns * 1000.0, 0.7 * period);
        println!(
            "  {defect_ns:>4.1} ns defect: {:>5.1} % at-speed | {:>5.1} % at 0.7x period",
            100.0 * at_speed,
            100.0 * fast
        );
    }
    let analyzer = PatternAnalyzer::new(&study);
    let powers = analyzer.power_profile(&set);
    let hot = powers
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.chip_scap_vdd_mw()
                .partial_cmp(&b.chip_scap_vdd_mw())
                .expect("finite power")
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    println!(
        "safe capture period of the hottest pattern: {:.2} ns nominal, {:.2} ns IR-aware",
        sdd.safe_capture_period_ps(&set.filled[hot], false) / 1000.0,
        sdd.safe_capture_period_ps(&set.filled[hot], true) / 1000.0
    );

    // --- peak power waveform ------------------------------------------
    let trace = analyzer.trace(&set.filled[hot]);
    let wave = PowerWaveform::from_trace(n, &study.annotation, &trace, 500.0);
    println!(
        "\nhot pattern power profile (500 ps bins): peak {:.1} mW over 1 ns, total {:.1} pJ",
        wave.peak_power_mw(1000.0),
        wave.total_energy_fj() / 1000.0
    );
    println!("  [{}]", wave.sparkline());

    // --- failure diagnosis --------------------------------------------
    // Pretend one detectable fault is a real silicon defect: find one
    // that actually fails on this pattern set and produce its fail logs.
    let sim = TransitionFaultSim::new(n, study.clka());
    let mut scratch = PropagationScratch::new(n.num_nets());
    let mut defect = faults.faults()[0];
    let mut logs = Vec::new();
    'hunt: for &candidate in faults.faults().iter().skip(60) {
        logs.clear();
        for (start, batch) in set.batches() {
            let frames = sim.frames(&batch.load_words, &batch.pi_words);
            let signature = sim.signature_one(&frames, batch.valid_mask, candidate, &mut scratch);
            for bit in 0..batch.count {
                let failing: Vec<_> = signature
                    .iter()
                    .filter(|(_, mask)| mask >> bit & 1 == 1)
                    .flat_map(|(net, _)| n.fanout_flops(*net).to_vec())
                    .collect();
                if !failing.is_empty() {
                    logs.push(FailureLog {
                        pattern: start + bit,
                        failing_flops: failing,
                    });
                }
            }
        }
        if logs.len() >= 3 {
            defect = candidate;
            break 'hunt;
        }
    }
    logs.truncate(4);
    let candidates = diagnose(n, study.clka(), &faults, &set, &logs, 5);
    println!(
        "\ndiagnosis of {} fail logs (injected {:?}):",
        logs.len(),
        defect
    );
    for c in &candidates {
        println!("  {:>5.2}  {:?}", c.score, c.fault);
    }

    // --- power-constrained scheduling ---------------------------------
    let flow = scap::flows::conventional(&study);
    let tests = schedule::block_tests_from_flow(&study, &flow);
    let budget = 1.5 * tests.iter().map(|t| t.power_mw).fold(0.0f64, f64::max);
    let plan = schedule::schedule(&tests, budget);
    println!(
        "\nscheduling under {budget:.2} mW: {} sessions, {} patterns ({} serial)",
        plan.sessions.len(),
        plan.total_length(),
        schedule::serial_length(&tests)
    );
}
