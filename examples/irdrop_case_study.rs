//! The paper's Section 2 case study: statistical IR-drop analysis
//! (Table 3), the CAP vs SCAP comparison (Table 4) and the dynamic
//! IR-drop maps of a hot and a near-threshold pattern (Figure 3).
//!
//! ```text
//! cargo run --release --example irdrop_case_study [scale]
//! ```

use scap::{experiments, flows, CaseStudy};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    println!("building case-study SOC at scale {scale} …");
    let study = CaseStudy::new(scale);

    // §2.2: vector-less statistical analysis, full vs half cycle.
    let t3 = experiments::table3(&study);
    println!("{}", experiments::render_table3(&study, &t3));
    let thresholds = experiments::scap_thresholds(&study);
    let b5 = study.design.block_named("B5").expect("B5 exists");
    println!(
        "SCAP screening threshold for B5 (Case 2 avg power): {:.2} mW\n",
        thresholds[b5.index()]
    );

    // §2.3–2.4: pick a high-activity conventional pattern, compare models.
    println!("running conventional random-fill ATPG …");
    let conventional = flows::conventional(&study);
    let t4 = experiments::table4(&study, &conventional);
    println!("{}", experiments::render_table4(&t4));

    // Figure 3: dynamic IR-drop maps of P1 (hot) and P2 (near threshold).
    let f3 = experiments::fig3(&study, &conventional);
    println!("{}", experiments::render_fig3(&study, &f3));
}
