//! A bounded, closable MPMC queue — the admission-control primitive
//! under the serving layer's job pool.
//!
//! [`BoundedQueue::try_push`] **never blocks**: when the queue is at
//! capacity it hands the item back immediately, which is exactly the
//! signal a server needs to shed load (`503`) instead of accepting
//! unbounded work. Consumers block in [`BoundedQueue::pop`] until an
//! item arrives or the queue is closed *and drained* — so a graceful
//! shutdown (`close`) lets workers finish everything already admitted
//! before they exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item; the item is handed
/// back in both cases.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed load or retry later.
    Full(T),
    /// The queue was closed — no further work is admitted.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue with close
/// semantics (see the module docs).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at once (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; use for metrics, not
    /// control flow).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` without blocking, or hands it back when the
    /// queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed **and** drained —
    /// the consumer's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue poisoned");
        }
    }

    /// Closes the queue: further pushes are refused, and every blocked
    /// consumer wakes to drain the remaining items and exit.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_refuses_pushes_but_drains_queued_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q = BoundedQueue::<u8>::new(0);
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|h| h.join().expect("consumer panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
