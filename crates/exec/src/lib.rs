//! Deterministic, zero-dependency parallel execution layer.
//!
//! The SCAP hot loops — per-pattern power profiling, per-pattern dynamic
//! IR-drop solves, and batch fault simulation — are embarrassingly
//! parallel, but this workspace deliberately carries no thread-pool
//! dependency (the build environment is offline; see `vendor/`). This
//! crate provides the small slice of a thread pool those loops actually
//! need, built on [`std::thread::scope`]:
//!
//! * [`Executor::parallel_map`] — order-stable map over a slice. Results
//!   land at the same index the input had, so output is **bit-identical
//!   to the serial loop** regardless of thread count or scheduling.
//! * [`Executor::parallel_map_with`] — the same, with one mutable scratch
//!   state per worker (reusable solver/simulation buffers).
//! * [`join2`] / [`Executor::join2`] — run two independent jobs
//!   concurrently (the VDD and VSS grid solves).
//!
//! # Determinism contract
//!
//! `parallel_map(items, f)[i] == f(&items[i])` for every `i`, provided
//! `f` is a pure function of its argument (and of the per-worker state's
//! initial value, for [`Executor::parallel_map_with`]). Work is handed
//! out in contiguous chunks via an atomic cursor, and every result is
//! written to its input's slot; no merge order, reduction order, or
//! floating-point reassociation depends on the schedule. With one worker
//! the implementation degenerates to a plain serial `for` loop on the
//! calling thread.
//!
//! # Thread-count selection
//!
//! [`Executor::new`] picks the worker count from, in order:
//! 1. the process-wide override installed by [`set_default_threads`]
//!    (the CLI's `--threads N`),
//! 2. the `SCAP_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! [`set_default_threads`] is **last-write-wins**: the CLI parses
//! `--threads` at the top of `main`, after any library or test-harness
//! initialization, so the user's flag always takes effect even when a
//! library installed a default first. (It used to be first-write-wins,
//! which silently turned the CLI flag into a no-op whenever a library
//! call got in before argument parsing.)
//!
//! # Metrics
//!
//! When `scap-obs` collection is enabled, the executor records
//! `exec.parallel_maps`, `exec.items` and `exec.chunk_claims` counters
//! plus `exec.effective_threads` and `exec.worker_items_max` gauges
//! (high-water marks), so load imbalance and the *actual* worker count —
//! not the requested one — are visible in profiles.

pub mod queue;

pub use queue::{BoundedQueue, PushError};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count; 0 means "not installed".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Installs the process-wide default worker count used by
/// [`Executor::new`]. **Last write wins** — the CLI's `--threads`,
/// parsed at the top of `main`, overrides anything a library installed
/// earlier. Returns the previously installed value, or `None` if this is
/// the first install. `n` is clamped to at least 1.
pub fn set_default_threads(n: usize) -> Option<usize> {
    let prev = DEFAULT_THREADS.swap(n.max(1), Ordering::SeqCst);
    (prev != 0).then_some(prev)
}

/// The currently installed process-wide default, if any.
pub fn default_threads() -> Option<usize> {
    let n = DEFAULT_THREADS.load(Ordering::SeqCst);
    (n != 0).then_some(n)
}

/// Reads `SCAP_THREADS`, ignoring unset, empty, or unparsable values.
fn threads_from_env() -> Option<usize> {
    let raw = std::env::var("SCAP_THREADS").ok()?;
    let n: usize = raw.trim().parse().ok()?;
    (n >= 1).then_some(n)
}

/// A fixed-width worker pool. Cheap to construct (threads are scoped to
/// each call, not kept alive), so it is typically built on the fly.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An executor with the configured default width (see the crate docs
    /// for the selection order).
    pub fn new() -> Self {
        let threads = default_threads()
            .or_else(threads_from_env)
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// An executor with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The worker count this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, in parallel, preserving order: slot `i` of
    /// the result is `f(&items[i])`. Bit-identical to the serial loop for
    /// pure `f`.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.parallel_map_with(|| (), items, |(), item| f(item))
    }

    /// [`Executor::parallel_map`] with a per-worker scratch state: each
    /// worker calls `init` once, then threads its state through every item
    /// it processes. Results stay order-stable; determinism additionally
    /// requires that `f`'s output not depend on the state's history (use
    /// the state for buffer reuse, not for carrying values across items).
    pub fn parallel_map_with<S, T, R, I, F>(&self, init: I, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n.max(1));
        scap_obs::counter!("exec.parallel_maps").incr();
        scap_obs::counter!("exec.items").add(n as u64);
        scap_obs::gauge!("exec.effective_threads").set_max(workers as u64);
        if workers <= 1 {
            scap_obs::gauge!("exec.worker_items_max").set_max(n as u64);
            let mut state = init();
            return items.iter().map(|item| f(&mut state, item)).collect();
        }

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        // Chunks are contiguous index ranges claimed from an atomic
        // cursor. Small enough to balance uneven per-item cost, large
        // enough to amortize the claim.
        let chunk = (n / (workers * 8)).max(1);
        let cursor = AtomicUsize::new(0);
        // Finished chunks land here tagged with their start index; the
        // merge below puts every value back at its input's slot, so the
        // output is independent of completion order. One short lock per
        // chunk (~8 chunks per worker), never held while `f` runs.
        let done: std::sync::Mutex<Vec<(usize, Vec<R>)>> =
            std::sync::Mutex::new(Vec::with_capacity(n.div_ceil(chunk)));
        let metrics_on = scap_obs::is_enabled();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    let mut claims = 0u64;
                    let mut handled = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        claims += 1;
                        handled += (end - start) as u64;
                        let values: Vec<R> = items[start..end]
                            .iter()
                            .map(|item| f(&mut state, item))
                            .collect();
                        done.lock()
                            .expect("result sink poisoned")
                            .push((start, values));
                    }
                    if metrics_on {
                        scap_obs::counter!("exec.chunk_claims").add(claims);
                        scap_obs::gauge!("exec.worker_items_max").set_max(handled);
                    }
                });
            }
        });

        for (start, values) in done.into_inner().expect("result sink poisoned") {
            for (i, value) in values.into_iter().enumerate() {
                results[start + i] = Some(value);
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every index claimed exactly once"))
            .collect()
    }

    /// Runs two independent jobs, concurrently when this executor has
    /// more than one worker, and returns both results.
    pub fn join2<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            (a(), b())
        } else {
            std::thread::scope(|scope| {
                let handle = scope.spawn(b);
                let ra = a();
                (ra, handle.join().expect("join2 worker panicked"))
            })
        }
    }
}

/// Splits `0..n` into at most `shards` contiguous near-equal ranges
/// (longer ranges first). Used to shard a work list across workers when
/// single items are too cheap to schedule individually — e.g. one fault
/// check. Deterministic for a given `(n, shards)`; callers that must be
/// bit-identical across thread counts need an order-independent
/// per-item merge (min/max/OR into per-item slots), not a
/// shard-boundary-dependent one.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || shards == 0 {
        return Vec::new();
    }
    let k = shards.min(n);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for s in 0..k {
        let len = base + usize::from(s < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Exponential backoff schedule: each [`Backoff::advance`] returns the
/// current delay and doubles it up to a cap. Used wherever a retry loop
/// must not hammer a failing resource — the cluster supervisor's worker
/// respawn is the canonical caller. Deterministic (no jitter): retry
/// *timing* never feeds into any computed result, and reproducible
/// schedules are easier to assert on.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    base: std::time::Duration,
    cap: std::time::Duration,
    cur: std::time::Duration,
}

impl Backoff {
    /// A schedule starting at `base` and doubling up to `cap` (both
    /// clamped to at least 1 ms so the schedule always advances).
    pub fn new(base: std::time::Duration, cap: std::time::Duration) -> Self {
        let floor = std::time::Duration::from_millis(1);
        let base = base.max(floor);
        Backoff {
            base,
            cap: cap.max(base),
            cur: base,
        }
    }

    /// The delay to wait now; doubles the next one (saturating at the
    /// cap).
    pub fn advance(&mut self) -> std::time::Duration {
        let d = self.cur;
        self.cur = self.cur.saturating_mul(2).min(self.cap);
        d
    }

    /// The delay [`Backoff::advance`] would return, without advancing.
    pub fn peek(&self) -> std::time::Duration {
        self.cur
    }

    /// Resets the schedule to its base delay — call after the resource
    /// has proven healthy again.
    pub fn reset(&mut self) {
        self.cur = self.base;
    }
}

/// Runs two independent jobs on the default executor.
pub fn join2<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    Executor::new().join2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 2, 3, 8, 64] {
            let items: Vec<u64> = (0..1000).collect();
            let exec = Executor::with_threads(threads);
            let out = exec.parallel_map(&items, |&x| x * x);
            let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_handles_degenerate_sizes() {
        let exec = Executor::with_threads(4);
        assert_eq!(exec.parallel_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(exec.parallel_map(&[7u32], |&x| x + 1), vec![8]);
        assert_eq!(
            exec.parallel_map(&[1u32, 2], |&x| x * 10),
            vec![10, 20],
            "fewer items than workers"
        );
    }

    #[test]
    fn parallel_map_with_reuses_worker_state() {
        let exec = Executor::with_threads(4);
        let items: Vec<usize> = (0..500).collect();
        // The scratch buffer is reused across items; its *contents* never
        // leak into results, so output matches the pure map.
        let out = exec.parallel_map_with(
            || Vec::with_capacity(64),
            &items,
            |scratch: &mut Vec<usize>, &x| {
                scratch.clear();
                scratch.extend(0..x % 7);
                x + scratch.len()
            },
        );
        let serial: Vec<usize> = items.iter().map(|&x| x + x % 7).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn join2_returns_both_results() {
        for threads in [1, 2] {
            let exec = Executor::with_threads(threads);
            let (a, b) = exec.join2(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
        assert!(Executor::new().threads() >= 1);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 8, 1001] {
                let ranges = shard_ranges(n, shards);
                assert!(ranges.len() <= shards);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} shards={shards}");
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty shards");
                    next = r.end;
                }
                if !ranges.is_empty() {
                    let (min, max) = ranges.iter().fold((usize::MAX, 0), |(lo, hi), r| {
                        (lo.min(r.len()), hi.max(r.len()))
                    });
                    assert!(max - min <= 1, "near-equal split");
                }
            }
        }
        assert!(shard_ranges(10, 0).is_empty());
    }

    #[test]
    fn backoff_doubles_to_cap_and_resets() {
        use std::time::Duration;
        let mut b = Backoff::new(Duration::from_millis(250), Duration::from_secs(2));
        assert_eq!(b.advance(), Duration::from_millis(250));
        assert_eq!(b.advance(), Duration::from_millis(500));
        assert_eq!(b.advance(), Duration::from_millis(1000));
        assert_eq!(b.advance(), Duration::from_millis(2000));
        assert_eq!(b.advance(), Duration::from_millis(2000), "saturates at cap");
        b.reset();
        assert_eq!(b.peek(), Duration::from_millis(250));
        // Degenerate inputs clamp instead of stalling at zero.
        let mut z = Backoff::new(Duration::ZERO, Duration::ZERO);
        assert_eq!(z.advance(), Duration::from_millis(1));
        assert_eq!(z.advance(), Duration::from_millis(1));
    }

    #[test]
    fn float_sums_are_bit_identical_across_widths() {
        // Each item's result is internally reassociation-free, so equality
        // is exact, not approximate.
        let items: Vec<f64> = (0..300).map(|i| (i as f64).sin()).collect();
        let work = |&x: &f64| (0..100).fold(x, |acc, i| acc + (i as f64 * x).cos());
        let serial: Vec<f64> = items.iter().map(work).collect();
        for threads in [2, 5, 16] {
            let out = Executor::with_threads(threads).parallel_map(&items, work);
            assert!(
                out.iter()
                    .zip(&serial)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads = {threads}"
            );
        }
    }
}
