//! Thread-count precedence. One test, alone in its own integration
//! binary: `set_default_threads` is process-global state, so this file
//! must own its process to observe installation order deterministically.

use scap_exec::{default_threads, set_default_threads, Executor};

#[test]
fn later_install_overrides_earlier_one() {
    // A library (or test harness) installs a default first...
    let first = set_default_threads(2);
    assert_eq!(first, None, "no default installed yet");
    assert_eq!(default_threads(), Some(2));
    assert_eq!(Executor::new().threads(), 2);

    // ...then the CLI parses `--threads 5`. Last write wins — this was
    // the bug: the old OnceLock-based install silently kept 2 and made
    // the user's flag a no-op.
    let prev = set_default_threads(5);
    assert_eq!(prev, Some(2), "previous install is reported");
    assert_eq!(default_threads(), Some(5));
    assert_eq!(
        Executor::new().threads(),
        5,
        "the CLI's later install must win"
    );

    // The installed default also beats the SCAP_THREADS environment
    // variable (set it to prove the override ordering, not to rely on
    // ambient state).
    std::env::set_var("SCAP_THREADS", "3");
    assert_eq!(Executor::new().threads(), 5);

    // Zero is clamped to one worker, never zero.
    set_default_threads(0);
    assert_eq!(default_threads(), Some(1));
    assert_eq!(Executor::new().threads(), 1);
}
