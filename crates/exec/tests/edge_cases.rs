//! Edge-case coverage for `parallel_map_with`: empty input, fewer items
//! than workers, and chunk-size rounding when `n < workers * 8` (the
//! regime where the per-worker chunk computes to 0 and must clamp to 1).

use scap_exec::Executor;

#[test]
fn empty_slice_yields_empty_output_at_any_width() {
    for threads in [1, 2, 7, 32] {
        let out =
            Executor::with_threads(threads).parallel_map_with(|| 0u64, &[] as &[u32], |_, &x| x);
        assert!(out.is_empty(), "threads = {threads}");
    }
}

#[test]
fn fewer_items_than_workers() {
    // workers is clamped to the item count, so every item still lands in
    // its own slot and no worker spins on an empty range.
    let items = [10u64, 20, 30];
    for threads in [4, 8, 64] {
        let out = Executor::with_threads(threads).parallel_map_with(
            || 1u64,
            &items,
            |bias, &x| x + *bias,
        );
        assert_eq!(out, vec![11, 21, 31], "threads = {threads}");
    }
}

#[test]
fn chunk_rounds_up_to_one_when_items_are_scarce() {
    // With n < workers * 8 the raw chunk n / (workers * 8) is zero; the
    // executor must clamp it to 1 rather than looping forever or skipping
    // items. Cover the boundary densely.
    for n in 1usize..40 {
        for threads in [2, 3, 5, 8] {
            let items: Vec<usize> = (0..n).collect();
            let out = Executor::with_threads(threads).parallel_map_with(
                Vec::<usize>::new,
                &items,
                |scratch, &x| {
                    scratch.push(x);
                    x * x
                },
            );
            let serial: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, serial, "n = {n}, threads = {threads}");
        }
    }
}

#[test]
fn single_item_runs_serially() {
    let out = Executor::with_threads(16).parallel_map_with(|| (), &[41u8], |(), &x| x + 1);
    assert_eq!(out, vec![42]);
}
