//! Property-based tests: `parallel_map` is a drop-in for the serial map.

use proptest::prelude::*;
use scap_exec::Executor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Output length equals input length and every slot holds exactly
    /// `f(&items[i])`, for arbitrary item counts and thread counts.
    #[test]
    fn parallel_map_preserves_order_and_count(
        len in 0usize..400,
        threads in 1usize..17,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let items: Vec<i64> = (0..len).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let f = |&x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let out = Executor::with_threads(threads).parallel_map(&items, f);
        prop_assert_eq!(out.len(), items.len());
        let serial: Vec<i64> = items.iter().map(f).collect();
        prop_assert_eq!(out, serial);
    }

    /// Per-worker scratch state never changes results relative to serial.
    #[test]
    fn parallel_map_with_matches_serial(
        len in 0usize..200,
        threads in 1usize..9,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let out = Executor::with_threads(threads).parallel_map_with(
            Vec::new,
            &items,
            |scratch: &mut Vec<usize>, &x| {
                scratch.push(x);
                x * 2
            },
        );
        let serial: Vec<usize> = items.iter().map(|&x| x * 2).collect();
        prop_assert_eq!(out, serial);
    }
}
