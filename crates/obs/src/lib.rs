//! Zero-dependency structured metrics and tracing.
//!
//! The SCAP pipeline's wall-clock numbers (`BENCH_evaluation.json`) say
//! *where* the time goes only at stage granularity; this crate collects
//! the counters underneath — CG iterations, warm-start hits, fault-sim
//! detections, patterns screened, work-stealing chunk claims — so a slow
//! stage can be attributed to its actual kernel. Like `scap-exec` it is
//! std-only (the build environment is offline; see `vendor/`).
//!
//! # Model
//!
//! Four metric kinds, all process-wide, interned by name in a global
//! registry and updated with relaxed atomics:
//!
//! * [`Counter`] — monotonic `u64` (events, iterations, items),
//! * [`Gauge`] — last/max-written `u64` (effective thread count,
//!   per-worker item peaks),
//! * [`FloatGauge`] — last/max-written `f64` (residual norms),
//! * [`SpanStats`] — call count + total wall-clock of a scoped region,
//!   fed by the RAII [`Span`] guard.
//!
//! Call sites cache the interned handle in a site-local `OnceLock` via
//! the [`counter!`], [`gauge!`], [`float_gauge!`] and [`span!`] macros,
//! so the steady-state cost of a disabled metric is one atomic load and
//! a predictable branch — unmeasurable next to any kernel worth
//! instrumenting.
//!
//! # Enabling
//!
//! Collection is **off by default**. Turn it on with [`set_enabled`], or
//! install a [`Sink`] with [`install_sink`] (which enables collection as
//! a side effect and additionally receives every span close, e.g. for
//! live tracing). The sink lives in a `OnceLock`: first install wins and
//! stays for the life of the process.
//!
//! # Reading
//!
//! [`snapshot`] returns a point-in-time copy of every registered metric,
//! sorted by name; [`Snapshot::counter_deltas`] subtracts an earlier
//! snapshot for per-stage attribution (what `evaluation.rs` writes into
//! `BENCH_evaluation.json`); [`render`] formats a snapshot as the
//! human-readable table behind `scap profile --metrics`.
//!
//! # Determinism
//!
//! Metrics never feed back into computation: enabling collection cannot
//! change any result, only record what happened. Counter updates are
//! relaxed atomics, so values are exact under any interleaving (they are
//! sums), while gauges hold the last/max write.
//!
//! # Name registry
//!
//! Names are `layer.metric` (dots separate, snake_case within); the
//! prefix is the crate/subsystem that owns the call site. The load-bearing
//! families — the ones `BENCH_evaluation.json`, `scripts/check.sh` and the
//! serve `/metrics` endpoint assert on, and which therefore must not be
//! renamed casually:
//!
//! * `sim.*` — fault-simulation kernel. `sim.fault_sim_checks` counts
//!   fault×batch propagation attempts (the denominator of the
//!   `fault_sim_checks_per_sec` throughput `evaluation.rs` derives per
//!   stage); `sim.faults_skipped_unobservable` counts faults the static
//!   observability prune rejected without simulating;
//!   `sim.faults_collapsed` counts faults folded into an equivalence-class
//!   representative; `sim.fault_detections` counts set bits credited.
//!   The word-packed (PPSFP) kernel adds `sim.block_evals`, the number of
//!   64-lane pattern blocks built (each graded against many faults), and
//!   `sim.patterns_per_block`, the total real patterns across those
//!   blocks — `patterns_per_block / (64 * block_evals)` is the lane
//!   utilization `scap profile --metrics` reports.
//! * `grade.*` — pattern grading. `grade.fault_shards` counts the
//!   fault-parallel shards the grade/compact loops dispatched;
//!   `grade.faults_dropped`/`grade.fault_sim_targets` size the shrinking
//!   remaining-fault working set across rounds.
//! * `atpg.*` — spans around the PODEM primary/secondary passes and the
//!   per-pattern drop simulation.
//! * `cg.*` — power-grid conjugate-gradient solves, with warm-start
//!   hit/miss split and residual float gauges.
//! * `exec.*` — the work-stealing executor (`exec.effective_threads` is
//!   the high-water worker count `evaluation.rs` reports).
//! * `sta.*` — noise-aware static timing analysis. `sta.runs` /
//!   `sta.derated_runs` count nominal and IR-drop-derated slack passes;
//!   `sta.endpoints` and `sta.negative_slack_endpoints` size them;
//!   `sta.risk.{critical,high,moderate,low}` is the fault risk-tier
//!   histogram ATPG prioritization consumes; `sta.screen.patterns` /
//!   `sta.screen.invalidated` count patterns pushed through the derated
//!   launch-to-capture timing screen and those exceeding the cycle.
//! * `compact.*`, `screen.*`, `flow.*`, `ablation.*`, `lint.*`,
//!   `serve.*` — per-layer event counts named after what they count.
//! * `cluster.*` — the sharded serving tier (`scap-cluster`).
//!   `cluster.route.requests` / `.handoffs` count proxied requests and
//!   those whose hash-primary was dead (served by a live successor);
//!   `cluster.hedge.fired` / `.wins` count hedged duplicates launched
//!   after the latency threshold and the ones that answered first;
//!   `cluster.failover.reroutes` / `.shed_retries` / `.recovered`
//!   count transport-error reroutes, worker 5xx retries and requests a
//!   non-primary ultimately answered; `cluster.probe.ok` / `.failures`
//!   / `.marked_dead` / `.recovered` track the health prober, and
//!   `cluster.worker.spawned` / `.exited` / `.restarts` the process
//!   supervisor. `cluster.workers.total` / `.alive` are gauges the
//!   aggregated `/metrics` snapshot echoes.

pub mod json;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether collection is currently enabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Receives span-close events when installed (live tracing / logging).
pub trait Sink: Send + Sync {
    /// Called once per [`Span`] drop with the span's wall-clock.
    fn span_close(&self, name: &'static str, wall_ns: u64);
}

static SINK: OnceLock<&'static dyn Sink> = OnceLock::new();

/// Installs the process-wide sink and enables collection. First install
/// wins (the sink lives in a `OnceLock`); returns whether this call
/// installed it.
pub fn install_sink(sink: &'static dyn Sink) -> bool {
    let installed = SINK.set(sink).is_ok();
    if installed {
        set_enabled(true);
    }
    installed
}

// ---------------------------------------------------------------------
// Metric types
// ---------------------------------------------------------------------

/// A monotonic event counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (no-op while collection is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while collection is disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The interned metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// An integer gauge (last or max written value).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Stores `v` (no-op while collection is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if is_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (no-op while disabled).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if is_enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The interned metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A floating-point gauge (last or max written value), stored as bits.
#[derive(Debug)]
pub struct FloatGauge {
    name: &'static str,
    bits: AtomicU64,
}

impl FloatGauge {
    /// Stores `v` (no-op while collection is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if is_enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (no-op while disabled; NaN is
    /// ignored).
    pub fn set_max(&self, v: f64) {
        if !is_enabled() || v.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < v {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// The interned metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Accumulated statistics of one named span: call count and total
/// wall-clock.
#[derive(Debug)]
pub struct SpanStats {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl SpanStats {
    /// Records one completed span of `wall_ns`.
    pub fn record(&self, wall_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(wall_ns, Ordering::Relaxed);
    }

    /// `(count, total nanoseconds)`.
    pub fn get(&self) -> (u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
        )
    }

    /// The interned span name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// RAII timer for one [`SpanStats`] region. While collection is disabled
/// the guard is inert (no clock read).
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct Span {
    active: Option<(&'static SpanStats, Instant)>,
}

impl Span {
    /// Starts timing `stats` (inert while collection is disabled).
    pub fn enter(stats: &'static SpanStats) -> Span {
        Span {
            active: is_enabled().then(|| (stats, Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((stats, start)) = self.active.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stats.record(ns);
            if let Some(sink) = SINK.get() {
                sink.span_close(stats.name(), ns);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    float_gauges: Mutex<Vec<&'static FloatGauge>>,
    spans: Mutex<Vec<&'static SpanStats>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

macro_rules! intern_fn {
    ($fn_name:ident, $ty:ident, $field:ident, $make:expr) => {
        /// Returns the process-wide metric of this name, creating and
        /// registering it on first use. Call sites should cache the
        /// handle (see the corresponding macro).
        pub fn $fn_name(name: &'static str) -> &'static $ty {
            let mut list = registry().$field.lock().expect("metrics registry poisoned");
            if let Some(found) = list.iter().find(|m| m.name == name) {
                return found;
            }
            let made: &'static $ty = Box::leak(Box::new($make(name)));
            list.push(made);
            made
        }
    };
}

intern_fn!(counter, Counter, counters, |name| Counter {
    name,
    value: AtomicU64::new(0),
});
intern_fn!(gauge, Gauge, gauges, |name| Gauge {
    name,
    value: AtomicU64::new(0),
});
intern_fn!(float_gauge, FloatGauge, float_gauges, |name| FloatGauge {
    name,
    bits: AtomicU64::new(0),
});
intern_fn!(span_stats, SpanStats, spans, |name| SpanStats {
    name,
    count: AtomicU64::new(0),
    total_ns: AtomicU64::new(0),
});

/// Interns a [`Counter`] once per call site and returns the handle.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::counter($name))
    }};
}

/// Interns a [`Gauge`] once per call site and returns the handle.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Interns a [`FloatGauge`] once per call site and returns the handle.
#[macro_export]
macro_rules! float_gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::FloatGauge> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::float_gauge($name))
    }};
}

/// Opens a [`Span`] over an interned [`SpanStats`]; bind the result to
/// keep it alive for the region being timed:
///
/// ```
/// let _span = scap_obs::span!("grade.round");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::SpanStats> =
            ::std::sync::OnceLock::new();
        $crate::Span::enter(SITE.get_or_init(|| $crate::span_stats($name)))
    }};
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// `(count, total_ns)` of one span name at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed span count.
    pub count: u64,
    /// Total wall-clock, nanoseconds.
    pub total_ns: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(&'static str, u64)>,
    /// Integer gauge values.
    pub gauges: Vec<(&'static str, u64)>,
    /// Float gauge values.
    pub float_gauges: Vec<(&'static str, f64)>,
    /// Span statistics.
    pub spans: Vec<(&'static str, SpanSnapshot)>,
}

impl Snapshot {
    /// Value of one counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Value of one integer gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Counters that advanced since `earlier`, as `(name, delta)`;
    /// counters absent from `earlier` count from zero. Zero deltas are
    /// omitted.
    pub fn counter_deltas(&self, earlier: &Snapshot) -> Vec<(&'static str, u64)> {
        self.counters
            .iter()
            .filter_map(|&(name, now)| {
                let before = earlier.counter(name).unwrap_or(0);
                let delta = now.saturating_sub(before);
                (delta > 0).then_some((name, delta))
            })
            .collect()
    }
}

/// Captures every registered metric, sorted by name.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut counters: Vec<_> = reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect();
    let mut gauges: Vec<_> = reg
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|g| (g.name(), g.get()))
        .collect();
    let mut float_gauges: Vec<_> = reg
        .float_gauges
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|g| (g.name(), g.get()))
        .collect();
    let mut spans: Vec<_> = reg
        .spans
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|s| {
            let (count, total_ns) = s.get();
            (s.name(), SpanSnapshot { count, total_ns })
        })
        .collect();
    counters.sort_by_key(|&(n, _)| n);
    gauges.sort_by_key(|&(n, _)| n);
    float_gauges.sort_by_key(|&(n, _)| n);
    spans.sort_by_key(|&(n, _)| n);
    Snapshot {
        counters,
        gauges,
        float_gauges,
        spans,
    }
}

/// Zeroes every registered metric (counters, gauges and spans). Intended
/// for test isolation and fresh measurement windows; racing updates may
/// land on either side of the reset.
pub fn reset() {
    let reg = registry();
    for c in reg
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .iter()
    {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.lock().expect("metrics registry poisoned").iter() {
        g.value.store(0, Ordering::Relaxed);
    }
    for g in reg
        .float_gauges
        .lock()
        .expect("metrics registry poisoned")
        .iter()
    {
        g.bits.store(0, Ordering::Relaxed);
    }
    for s in reg.spans.lock().expect("metrics registry poisoned").iter() {
        s.count.store(0, Ordering::Relaxed);
        s.total_ns.store(0, Ordering::Relaxed);
    }
}

/// Formats a snapshot as a human-readable table (the body of
/// `scap profile --metrics`). Zero-valued metrics are skipped.
pub fn render(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let live_counters: Vec<_> = snap.counters.iter().filter(|&&(_, v)| v > 0).collect();
    if !live_counters.is_empty() {
        out.push_str("counters:\n");
        for &&(name, v) in &live_counters {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    let live_gauges: Vec<_> = snap.gauges.iter().filter(|&&(_, v)| v > 0).collect();
    if !live_gauges.is_empty() {
        out.push_str("gauges:\n");
        for &&(name, v) in &live_gauges {
            let _ = writeln!(out, "  {name:<32} {v:>14}");
        }
    }
    let live_floats: Vec<_> = snap
        .float_gauges
        .iter()
        .filter(|&&(_, v)| v != 0.0)
        .collect();
    if !live_floats.is_empty() {
        out.push_str("float gauges:\n");
        for &&(name, v) in &live_floats {
            let _ = writeln!(out, "  {name:<32} {v:>14.3e}");
        }
    }
    let live_spans: Vec<_> = snap.spans.iter().filter(|(_, s)| s.count > 0).collect();
    if !live_spans.is_empty() {
        out.push_str("spans:                                    count      total ms\n");
        for (name, s) in live_spans {
            let _ = writeln!(
                out,
                "  {name:<32} {:>12} {:>13.3}",
                s.count,
                s.total_ns as f64 / 1e6
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded — was collection enabled?)\n");
    }
    out
}

/// Renders a snapshot as one compact JSON object (the body of the
/// server's `GET /metrics`). Schema:
///
/// ```json
/// {"counters": {"exec.items": 12},
///  "gauges": {"exec.effective_threads": 3},
///  "float_gauges": {"cg.residual": 1.2e-9},
///  "spans": {"grade.round": {"count": 4, "total_ns": 1200}}}
/// ```
///
/// Zero-valued metrics are included: the full instrumentation surface
/// is part of the contract, not just what happened to fire.
pub fn render_json(snap: &Snapshot) -> String {
    let mut counters = json::Obj::new();
    for &(name, v) in &snap.counters {
        counters.u64(name, v);
    }
    let mut gauges = json::Obj::new();
    for &(name, v) in &snap.gauges {
        gauges.u64(name, v);
    }
    let mut float_gauges = json::Obj::new();
    for &(name, v) in &snap.float_gauges {
        float_gauges.f64(name, v);
    }
    let mut spans = json::Obj::new();
    for &(name, s) in &snap.spans {
        let mut span = json::Obj::new();
        span.u64("count", s.count).u64("total_ns", s.total_ns);
        spans.raw(name, &span.finish());
    }
    let mut root = json::Obj::new();
    root.raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("float_gauges", &float_gauges.finish())
        .raw("spans", &spans.finish());
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global enabled flag.
    fn enabled_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_accumulate_when_enabled() {
        let _guard = enabled_lock();
        set_enabled(true);
        let c = counter("test.counter_accumulates");
        let before = c.get();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), before + 4);
        set_enabled(false);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _guard = enabled_lock();
        set_enabled(false);
        let c = counter("test.disabled_counter");
        let g = gauge("test.disabled_gauge");
        let f = float_gauge("test.disabled_float");
        let before = c.get();
        c.add(10);
        g.set(7);
        g.set_max(9);
        f.set(1.5);
        f.set_max(2.5);
        assert_eq!(c.get(), before);
        assert_eq!(g.get(), 0);
        assert_eq!(f.get(), 0.0);
        // Spans opened while disabled are inert.
        {
            let _span = span!("test.disabled_span");
        }
        let (count, _) = span_stats("test.disabled_span").get();
        assert_eq!(count, 0);
    }

    #[test]
    fn interning_returns_the_same_metric() {
        let a = counter("test.interned") as *const Counter;
        let b = counter("test.interned") as *const Counter;
        assert_eq!(a, b);
        assert_ne!(a, counter("test.interned_other") as *const Counter);
    }

    #[test]
    fn gauge_set_max_is_monotone() {
        let _guard = enabled_lock();
        set_enabled(true);
        let g = gauge("test.gauge_max");
        g.set(0);
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        let f = float_gauge("test.float_max");
        f.set(0.0);
        f.set_max(2.5);
        f.set_max(1.0);
        f.set_max(f64::NAN); // ignored
        assert_eq!(f.get(), 2.5);
        set_enabled(false);
    }

    #[test]
    fn spans_accumulate_and_snapshot_deltas_work() {
        let _guard = enabled_lock();
        set_enabled(true);
        let before = snapshot();
        counter("test.delta").add(2);
        {
            let _span = span!("test.span");
            std::hint::black_box(0u64);
        }
        let after = snapshot();
        let deltas = after.counter_deltas(&before);
        assert!(deltas.iter().any(|&(n, d)| n == "test.delta" && d >= 2));
        let (count, _total) = span_stats("test.span").get();
        assert!(count >= 1);
        // Snapshot is sorted by name.
        for w in after.counters.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        set_enabled(false);
    }

    #[test]
    fn render_json_covers_every_metric_kind() {
        let _guard = enabled_lock();
        set_enabled(true);
        counter("test.json_counter").incr();
        gauge("test.json_gauge").set(4);
        float_gauge("test.json_float").set(0.5);
        {
            let _span = span!("test.json_span");
        }
        let text = render_json(&snapshot());
        for needle in [
            "\"counters\":{",
            "\"test.json_counter\":",
            "\"test.json_gauge\":4",
            "\"test.json_float\":0.5",
            "\"test.json_span\":{\"count\":",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        set_enabled(false);
    }

    #[test]
    fn render_lists_live_metrics_only() {
        let _guard = enabled_lock();
        set_enabled(true);
        counter("test.render_live").incr();
        let text = render(&snapshot());
        assert!(text.contains("test.render_live"));
        set_enabled(false);
        let empty = render(&Snapshot::default());
        assert!(empty.contains("no metrics recorded"));
    }

    #[test]
    fn sink_receives_span_closes() {
        struct Recorder {
            hits: AtomicU64,
        }
        impl Sink for Recorder {
            fn span_close(&self, _name: &'static str, _wall_ns: u64) {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _guard = enabled_lock();
        static RECORDER: Recorder = Recorder {
            hits: AtomicU64::new(0),
        };
        // First install wins; either way collection is enabled afterwards
        // only if this call installed it — enable explicitly for the test.
        let _ = install_sink(&RECORDER);
        set_enabled(true);
        let before = RECORDER.hits.load(Ordering::Relaxed);
        {
            let _span = span!("test.sink_span");
        }
        assert!(RECORDER.hits.load(Ordering::Relaxed) > before);
        set_enabled(false);
    }
}
