//! Minimal strict-JSON writer shared across the workspace.
//!
//! Three call sites used to carry their own hand-rolled JSON emission —
//! the lint report (`scap-lint`), the bench evaluation document
//! (`BENCH_evaluation.json`) and the CLI — each with its own escaping
//! and non-finite-float handling. This module is the single
//! implementation: one escaper, one number formatter (non-finite `f64`
//! becomes `null`, which strict JSON parsers accept and `NaN`/`inf`
//! tokens are not), and push-style [`Obj`] / [`Arr`] builders that
//! compose into arbitrarily nested documents.
//!
//! Builders emit *compact* JSON (no insignificant whitespace) — the
//! right shape for HTTP bodies and line-oriented validation. Documents
//! meant for humans or for committed artifacts go through [`pretty`],
//! a whitespace-only re-indenter that never re-orders or re-parses
//! values.

use std::fmt::Write as _;

/// Appends `s` to `out`, escaped for the inside of a JSON string
/// literal (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` escaped for the inside of a JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Formats `v` as a strict-JSON number token; non-finite values (which
/// JSON cannot represent) become `null` instead of the `NaN`/`inf`
/// tokens Rust's `Display` would emit.
pub fn f64_token(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// [`f64_token`] rounded to `digits` decimal places (still `null` for
/// non-finite values).
pub fn f64_token_fixed(v: f64, digits: usize) -> String {
    if v.is_finite() {
        format!("{v:.digits$}")
    } else {
        "null".to_owned()
    }
}

/// Push-style builder for one JSON object. Emits compact output; run
/// the result through [`pretty`] for a human-readable document.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// An empty object builder.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a field whose value is pre-rendered JSON (a nested object,
    /// array, or literal).
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field; non-finite values become `null`.
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&f64_token(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Finishes the object and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Push-style builder for one JSON array (compact output).
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
    any: bool,
}

impl Arr {
    /// An empty array builder.
    pub fn new() -> Self {
        Arr {
            buf: String::from("["),
            any: false,
        }
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Pushes a pre-rendered JSON value.
    pub fn raw(&mut self, value: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(value);
        self
    }

    /// Pushes a string value (escaped).
    pub fn str(&mut self, value: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Pushes an unsigned integer value.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Pushes a float value; non-finite values become `null`.
    pub fn f64(&mut self, value: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&f64_token(value));
        self
    }

    /// Finishes the array and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// Re-indents a compact JSON document for human readers. Pure
/// whitespace transformation: values, keys and their order are
/// untouched, so `pretty(j)` parses to exactly what `j` parses to.
pub fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut depth: usize = 0;
    let mut in_string = false;
    let mut escape_next = false;
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escape_next {
                escape_next = false;
            } else if c == '\\' {
                escape_next = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    depth += 1;
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth));
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push_str(": ");
            }
            c if c.is_whitespace() => {}
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escaped("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escaped("\u{1}"), "\\u0001");
        assert_eq!(escaped("tab\there"), "tab\\there");
        assert_eq!(escaped("plain"), "plain");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64_token(1.5), "1.5");
        assert_eq!(f64_token(f64::NAN), "null");
        assert_eq!(f64_token(f64::INFINITY), "null");
        assert_eq!(f64_token_fixed(1.23456, 3), "1.235");
        assert_eq!(f64_token_fixed(f64::NEG_INFINITY, 3), "null");
    }

    #[test]
    fn object_builder_composes_nested_documents() {
        let mut inner = Arr::new();
        inner.u64(1).str("two").f64(f64::NAN);
        let mut obj = Obj::new();
        obj.str("name", "a\"b")
            .u64("count", 3)
            .bool("ok", true)
            .raw("items", &inner.finish());
        assert_eq!(
            obj.finish(),
            r#"{"name":"a\"b","count":3,"ok":true,"items":[1,"two",null]}"#
        );
    }

    #[test]
    fn empty_builders_render_empty_containers() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn pretty_is_a_whitespace_only_transform() {
        let compact = r#"{"a":[1,2],"b":{"c":"x,y {z}"},"d":[],"e":{}}"#;
        let p = pretty(compact);
        // Same document once whitespace outside strings is removed.
        let mut stripped = String::new();
        let mut in_string = false;
        let mut escape_next = false;
        for c in p.chars() {
            if in_string {
                stripped.push(c);
                if escape_next {
                    escape_next = false;
                } else if c == '\\' {
                    escape_next = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                    stripped.push(c);
                }
                c if c.is_whitespace() => {}
                c => stripped.push(c),
            }
        }
        assert_eq!(stripped, compact);
        // Braces with content got indented.
        assert!(p.contains("{\n"));
        // Commas inside strings did not break lines.
        assert!(p.contains("x,y {z}"));
    }
}
