//! Minimal strict-JSON writer shared across the workspace.
//!
//! Three call sites used to carry their own hand-rolled JSON emission —
//! the lint report (`scap-lint`), the bench evaluation document
//! (`BENCH_evaluation.json`) and the CLI — each with its own escaping
//! and non-finite-float handling. This module is the single
//! implementation: one escaper, one number formatter (non-finite `f64`
//! becomes `null`, which strict JSON parsers accept and `NaN`/`inf`
//! tokens are not), and push-style [`Obj`] / [`Arr`] builders that
//! compose into arbitrarily nested documents.
//!
//! Builders emit *compact* JSON (no insignificant whitespace) — the
//! right shape for HTTP bodies and line-oriented validation. Documents
//! meant for humans or for committed artifacts go through [`pretty`],
//! a whitespace-only re-indenter that never re-orders or re-parses
//! values.
//!
//! The module also carries the matching strict *reader* ([`parse`] into
//! [`Value`]): the cluster coordinator aggregates worker `/metrics`
//! bodies, and the integration tests validate response documents,
//! without reaching for an external JSON dependency. The reader accepts
//! exactly the strict-JSON dialect the writers emit (no comments, no
//! trailing commas, no `NaN`/`inf` tokens) and keys numbers as `f64` —
//! exact for the `u64` counters the registry produces up to 2^53,
//! far beyond any counter this workspace increments.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out`, escaped for the inside of a JSON string
/// literal (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` escaped for the inside of a JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Formats `v` as a strict-JSON number token; non-finite values (which
/// JSON cannot represent) become `null` instead of the `NaN`/`inf`
/// tokens Rust's `Display` would emit.
pub fn f64_token(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// [`f64_token`] rounded to `digits` decimal places (still `null` for
/// non-finite values).
pub fn f64_token_fixed(v: f64, digits: usize) -> String {
    if v.is_finite() {
        format!("{v:.digits$}")
    } else {
        "null".to_owned()
    }
}

/// Push-style builder for one JSON object. Emits compact output; run
/// the result through [`pretty`] for a human-readable document.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// An empty object builder.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a field whose value is pre-rendered JSON (a nested object,
    /// array, or literal).
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field; non-finite values become `null`.
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&f64_token(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Finishes the object and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Push-style builder for one JSON array (compact output).
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
    any: bool,
}

impl Arr {
    /// An empty array builder.
    pub fn new() -> Self {
        Arr {
            buf: String::from("["),
            any: false,
        }
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Pushes a pre-rendered JSON value.
    pub fn raw(&mut self, value: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(value);
        self
    }

    /// Pushes a string value (escaped).
    pub fn str(&mut self, value: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Pushes an unsigned integer value.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Pushes a float value; non-finite values become `null`.
    pub fn f64(&mut self, value: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&f64_token(value));
        self
    }

    /// Finishes the array and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// Re-indents a compact JSON document for human readers. Pure
/// whitespace transformation: values, keys and their order are
/// untouched, so `pretty(j)` parses to exactly what `j` parses to.
pub fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut depth: usize = 0;
    let mut in_string = false;
    let mut escape_next = false;
    let mut chars = json.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escape_next {
                escape_next = false;
            } else if c == '\\' {
                escape_next = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    depth += 1;
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth));
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push_str(": ");
            }
            c if c.is_whitespace() => {}
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Strict reader
// ---------------------------------------------------------------------

/// One parsed JSON value. Objects preserve no duplicate keys (last
/// write wins, as in every mainstream parser) and iterate in sorted
/// order (`BTreeMap`) — deterministic, like everything else here.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The object map itself, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one strict-JSON document (exactly one top-level value,
/// nothing but whitespace after it).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte at {}", self.pos));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so this is
                    // always a valid boundary walk).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (pos is on the `u`), handling
    /// surrogate pairs. Leaves pos after the final consumed digit + 1.
    fn unicode_escape(&mut self) -> Result<char, String> {
        fn hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
            let s = bytes
                .get(at..at + 4)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or_else(|| format!("bad \\u escape at byte {at}"))?;
            u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape at byte {at}"))
        }
        let hi = hex4(self.bytes, self.pos + 1)?;
        self.pos += 5;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes.get(self.pos) != Some(&b'\\')
                || self.bytes.get(self.pos + 1) != Some(&b'u')
            {
                return Err("lone high surrogate".to_owned());
            }
            let lo = hex4(self.bytes, self.pos + 2)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("invalid low surrogate".to_owned());
            }
            self.pos += 6;
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| "invalid code point".to_owned())
        } else if (0xDC00..0xE000).contains(&hi) {
            Err("lone low surrogate".to_owned())
        } else {
            char::from_u32(hi).ok_or_else(|| "invalid code point".to_owned())
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        // Strict JSON: no leading zeros like 042.
        if self.pos - digits_from > 1 && self.bytes[digits_from] == b'0' {
            return Err(format!("leading zero at byte {digits_from}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(format!("expected fraction digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(format!("expected exponent digits at byte {}", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escaped("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escaped("\u{1}"), "\\u0001");
        assert_eq!(escaped("tab\there"), "tab\\there");
        assert_eq!(escaped("plain"), "plain");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64_token(1.5), "1.5");
        assert_eq!(f64_token(f64::NAN), "null");
        assert_eq!(f64_token(f64::INFINITY), "null");
        assert_eq!(f64_token_fixed(1.23456, 3), "1.235");
        assert_eq!(f64_token_fixed(f64::NEG_INFINITY, 3), "null");
    }

    #[test]
    fn object_builder_composes_nested_documents() {
        let mut inner = Arr::new();
        inner.u64(1).str("two").f64(f64::NAN);
        let mut obj = Obj::new();
        obj.str("name", "a\"b")
            .u64("count", 3)
            .bool("ok", true)
            .raw("items", &inner.finish());
        assert_eq!(
            obj.finish(),
            r#"{"name":"a\"b","count":3,"ok":true,"items":[1,"two",null]}"#
        );
    }

    #[test]
    fn empty_builders_render_empty_containers() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn pretty_is_a_whitespace_only_transform() {
        let compact = r#"{"a":[1,2],"b":{"c":"x,y {z}"},"d":[],"e":{}}"#;
        let p = pretty(compact);
        // Same document once whitespace outside strings is removed.
        let mut stripped = String::new();
        let mut in_string = false;
        let mut escape_next = false;
        for c in p.chars() {
            if in_string {
                stripped.push(c);
                if escape_next {
                    escape_next = false;
                } else if c == '\\' {
                    escape_next = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                    stripped.push(c);
                }
                c if c.is_whitespace() => {}
                c => stripped.push(c),
            }
        }
        assert_eq!(stripped, compact);
        // Braces with content got indented.
        assert!(p.contains("{\n"));
        // Commas inside strings did not break lines.
        assert!(p.contains("x,y {z}"));
    }

    #[test]
    fn parses_what_the_builders_emit() {
        let mut inner = Arr::new();
        inner.u64(1).str("two").f64(f64::NAN).f64(-2.5e3);
        let mut obj = Obj::new();
        obj.str("name", "a\"b\n")
            .u64("count", 3)
            .bool("ok", true)
            .raw("items", &inner.finish());
        let doc = obj.finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\n"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let items = v.get("items").unwrap().as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_str(), Some("two"));
        assert_eq!(items[2], Value::Null);
        assert_eq!(items[3].as_f64(), Some(-2500.0));
        // pretty() output parses to the same document.
        assert_eq!(parse(&pretty(&doc)).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let v = parse(r#""A\t😀\\""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t\u{1F600}\\"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_non_strict_documents() {
        assert!(parse("{,}").is_err());
        assert!(parse("[1,2,]").is_err(), "trailing comma");
        assert!(parse("{\"a\":1} garbage").is_err());
        assert!(parse("042").is_err(), "leading zero");
        assert!(parse("NaN").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "bounded nesting");
    }

    #[test]
    fn numbers_roundtrip_counter_magnitudes() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(9007199254740992));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }
}
