//! End-to-end tests of the cluster tier: a real coordinator in-process,
//! real `scap-cluster-worker` child processes on ephemeral ports.
//!
//! The `cluster.*` counters live in this (coordinator) process, so the
//! tests that assert on deltas take the `serial()` lock. Scales stay
//! tiny — the CI machine usually has a single CPU and every worker is
//! a full OS process.

use scap_cluster::{
    ClusterConfig, ClusterController, ClusterShutdown, Coordinator, Ring, DEFAULT_REPLICAS,
};
use scap_serve::loadgen;
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SCALE: &str = "0.003";

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_command(extra: &[&str]) -> Vec<String> {
    let mut cmd = vec![
        env!("CARGO_BIN_EXE_scap-cluster-worker").to_owned(),
        "--workers".to_owned(),
        "2".to_owned(),
        "--cache-cap".to_owned(),
        "16".to_owned(),
    ];
    cmd.extend(extra.iter().map(|s| (*s).to_owned()));
    cmd
}

struct Cluster {
    addr: SocketAddr,
    control: ClusterController,
    shutdown: ClusterShutdown,
    join: JoinHandle<scap_obs::Snapshot>,
}

fn boot(cfg: ClusterConfig) -> Cluster {
    let coordinator = Coordinator::launch(ClusterConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..cfg
    })
    .expect("launching the cluster");
    let addr = coordinator.local_addr();
    let control = coordinator.controller();
    let shutdown = coordinator.shutdown_handle();
    let join = std::thread::spawn(move || coordinator.run().expect("coordinator run"));
    Cluster {
        addr,
        control,
        shutdown,
        join,
    }
}

fn stop(c: Cluster) -> scap_obs::Snapshot {
    c.shutdown.signal();
    c.join.join().expect("coordinator thread panicked")
}

#[test]
fn routes_the_full_surface_and_aggregates_metrics() {
    let _guard = serial();
    let before = scap_obs::snapshot();
    let c = boot(ClusterConfig {
        workers: 2,
        worker_command: worker_command(&[]),
        ..ClusterConfig::default()
    });

    // Coordinator-local health, never forwarded.
    let health = loadgen::get(c.addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"role\":\"coordinator\""));
    assert!(health.text().contains("\"workers_alive\":2"));

    // Distinct seeds spread over the fleet; identical requests answer
    // byte-for-byte identically regardless of which worker owns them.
    let mut bodies = Vec::new();
    for seed in 1..=4u64 {
        let path = format!("/v1/design?scale={SCALE}&seed={seed}");
        let r1 = loadgen::get(c.addr, &path).unwrap();
        assert_eq!(r1.status, 200, "body: {}", r1.text());
        let r2 = loadgen::get(c.addr, &path).unwrap();
        assert_eq!(
            r1.body, r2.body,
            "repeat of seed {seed} must be byte-identical"
        );
        bodies.push(r1.body);
    }
    // …and the cluster answers exactly what a single-process server
    // answers for the same parameters (proxying changes nothing).
    let solo = scap_serve::Server::bind(scap_serve::ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..scap_serve::ServeConfig::default()
    })
    .expect("binding the reference server");
    let solo_addr = solo.local_addr();
    let solo_shutdown = solo.shutdown_handle();
    let solo_join = std::thread::spawn(move || solo.run().expect("solo run"));
    for (i, seed) in (1..=4u64).enumerate() {
        let r = loadgen::get(solo_addr, &format!("/v1/design?scale={SCALE}&seed={seed}")).unwrap();
        assert_eq!(
            r.body, bodies[i],
            "cluster and solo disagree on seed {seed}"
        );
    }
    solo_shutdown.signal();
    solo_join.join().unwrap();

    // POST endpoints forward with their bodies intact.
    let r = loadgen::post(c.addr, "/v1/lint", &format!("scale={SCALE}&seed=3")).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.text());
    assert!(r.text().contains("\"lint\":{"));

    // Worker errors pass through untouched.
    let r = loadgen::get(c.addr, "/v1/design?scale=2.0").unwrap();
    assert_eq!(r.status, 400);
    let r = loadgen::get(c.addr, "/v1/nope").unwrap();
    assert_eq!(r.status, 404);

    // The aggregated /metrics is strict JSON carrying worker counters,
    // coordinator counters and the per-worker cluster object.
    let metrics = loadgen::get(c.addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = scap_obs::json::parse(metrics.text()).expect("aggregated metrics parse strictly");
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    assert!(counter("serve.requests") >= 10, "workers saw the traffic");
    assert!(counter("cluster.route.requests") >= 10);
    assert_eq!(
        doc.get("cluster")
            .and_then(|cl| cl.get("workers_total"))
            .and_then(|v| v.as_u64()),
        Some(2)
    );
    let per_worker = doc
        .get("cluster")
        .and_then(|cl| cl.get("per_worker"))
        .and_then(|v| v.as_arr())
        .expect("per_worker array");
    assert_eq!(per_worker.len(), 2);
    for w in per_worker {
        assert!(
            matches!(w.get("alive"), Some(scap_obs::json::Value::Bool(true))),
            "both workers should be alive in the scrape"
        );
        assert!(
            matches!(w.get("scraped"), Some(scap_obs::json::Value::Bool(true))),
            "both live workers should have been scraped"
        );
    }

    let snap = stop(c);
    let delta = |name: &str| snap.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert!(delta("cluster.route.requests") >= 10);
    assert_eq!(delta("cluster.worker.spawned"), 2);
}

#[test]
fn killing_a_worker_mid_burst_loses_no_client_requests() {
    let _guard = serial();
    let before = scap_obs::snapshot();
    let c = boot(ClusterConfig {
        workers: 2,
        worker_command: worker_command(&[]),
        // Probes far apart: the *request path* must discover the death
        // and fail over — deterministically exercising the reroute
        // counters rather than racing the prober.
        probe_interval: Duration::from_secs(120),
        ..ClusterConfig::default()
    });

    // Pick seeds that provably span both workers (the same ring the
    // coordinator routes by), so killing worker 0 actually cuts into
    // the burst's key set.
    let scale: f64 = SCALE.parse().unwrap();
    let ring = Ring::new(2, DEFAULT_REPLICAS);
    let mut seeds: Vec<u64> = Vec::new();
    let mut quota = [2usize; 2];
    for seed in 1..10_000u64 {
        let owner = ring.owner(Ring::shard_key(scale, seed));
        if quota[owner] > 0 {
            quota[owner] -= 1;
            seeds.push(seed);
        }
        if seeds.len() == 4 {
            break;
        }
    }
    assert_eq!(seeds.len(), 4, "no balanced seed set below 10000");

    // Warm every shard so the burst is cheap and fast.
    let targets: Vec<(String, String)> = seeds
        .iter()
        .map(|seed| {
            (
                format!("/v1/design?scale={SCALE}&seed={seed}"),
                String::new(),
            )
        })
        .collect();
    let warm = loadgen::burst_targets(c.addr, "GET", &targets, 4, 1);
    assert_eq!(warm.transport_errors, 0);
    assert_eq!(warm.count(200), 4);

    // Kill one worker, then burst straight through the outage window.
    c.control.kill_worker(0);
    let report = loadgen::burst_targets(c.addr, "GET", &targets, 4, 4);
    assert_eq!(
        report.transport_errors, 0,
        "clients must never see transport failures"
    );
    assert_eq!(
        report.count(200),
        16,
        "every client request must succeed; statuses: {:?}",
        report.statuses
    );

    let snap = stop(c);
    let delta = |name: &str| snap.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert!(
        delta("cluster.failover.reroutes") > 0,
        "the dead worker's requests must have been rerouted"
    );
    assert!(
        delta("cluster.failover.recovered") > 0,
        "rerouted requests must have succeeded on the successor"
    );
}

#[test]
fn a_crashed_worker_is_respawned_with_backoff() {
    let _guard = serial();
    let before = scap_obs::snapshot();
    let c = boot(ClusterConfig {
        workers: 2,
        worker_command: worker_command(&[]),
        probe_interval: Duration::from_millis(50),
        ..ClusterConfig::default()
    });
    assert_eq!(c.control.alive_workers(), 2);

    c.control.kill_worker(1);
    let t = Instant::now();
    loop {
        let infos = c.control.worker_infos();
        if c.control.alive_workers() == 2 && infos[1].restarts >= 1 && infos[1].pid != 0 {
            break;
        }
        assert!(
            t.elapsed() < Duration::from_secs(20),
            "worker 1 was never respawned: {infos:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The respawned worker serves its shard again.
    let r = loadgen::get(c.addr, &format!("/v1/design?scale={SCALE}&seed=9")).unwrap();
    assert_eq!(r.status, 200);

    let snap = stop(c);
    let delta = |name: &str| snap.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert!(delta("cluster.worker.restarts") >= 1);
    assert_eq!(
        delta("cluster.worker.spawned"),
        delta("cluster.worker.restarts") + 2
    );
}

#[test]
fn slow_requests_hedge_to_the_next_live_worker() {
    let _guard = serial();
    let before = scap_obs::snapshot();
    let c = boot(ClusterConfig {
        workers: 2,
        worker_command: worker_command(&["--debug-endpoints"]),
        hedge: Duration::from_millis(50),
        ..ClusterConfig::default()
    });

    // A sleep far past the hedge threshold: the coordinator must race a
    // duplicate against the successor and still answer 200.
    let r = loadgen::get(c.addr, "/v1/sleep?ms=400").unwrap();
    assert_eq!(r.status, 200);

    let snap = stop(c);
    let delta = |name: &str| snap.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert!(
        delta("cluster.hedge.fired") >= 1,
        "a 400 ms request over a 50 ms hedge threshold must hedge"
    );
}
