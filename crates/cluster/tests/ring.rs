//! Property tests of the consistent-hash ring: the three contracts the
//! coordinator's router depends on.

use proptest::prelude::*;
use scap_cluster::hash::{fnv1a64, Ring, DEFAULT_REPLICAS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// **Stable**: routing is a pure function of `(slots, replicas,
    /// key)` — two independently built rings agree on every owner and
    /// every failover order.
    #[test]
    fn routing_is_stable_across_ring_rebuilds(
        slots in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = Ring::new(slots, DEFAULT_REPLICAS);
        let b = Ring::new(slots, DEFAULT_REPLICAS);
        for i in 0..256u64 {
            let key = fnv1a64(&(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes());
            prop_assert_eq!(a.owner(key), b.owner(key));
            prop_assert_eq!(a.order(key), b.order(key));
        }
    }

    /// **Balanced**: over a large key sample, no slot owns more than
    /// 2× the mean share of the keyspace.
    #[test]
    fn load_stays_within_twice_the_mean(
        slots in 1usize..9,
        seed in any::<u64>(),
    ) {
        let ring = Ring::new(slots, 128);
        const KEYS: usize = 4096;
        let mut load = vec![0usize; slots];
        for i in 0..KEYS as u64 {
            let key = fnv1a64(&(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes());
            load[ring.owner(key)] += 1;
        }
        let mean = KEYS as f64 / slots as f64;
        for (slot, &n) in load.iter().enumerate() {
            prop_assert!(
                (n as f64) <= 2.0 * mean,
                "slot {} owns {} of {} keys (mean {:.0})",
                slot, n, KEYS, mean
            );
        }
    }

    /// **Minimal disruption**: growing the fleet from N to N+1 slots
    /// only moves keys *to the new slot* — every other key keeps its
    /// worker, and therefore its warm cache.
    #[test]
    fn growing_the_fleet_moves_keys_only_to_the_new_slot(
        slots in 1usize..8,
        seed in any::<u64>(),
    ) {
        let before = Ring::new(slots, DEFAULT_REPLICAS);
        let after = Ring::new(slots + 1, DEFAULT_REPLICAS);
        let mut moved = 0usize;
        const KEYS: usize = 2048;
        for i in 0..KEYS as u64 {
            let key = fnv1a64(&(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes());
            let old = before.owner(key);
            let new = after.owner(key);
            if old != new {
                prop_assert_eq!(
                    new, slots,
                    "a key moved between pre-existing slots {} -> {}", old, new
                );
                moved += 1;
            }
        }
        // The new slot takes roughly its fair share, never everything.
        prop_assert!(moved < KEYS, "every key moved — not consistent hashing");
    }

    /// The failover order is always a permutation of the slots and is
    /// headed by the owner — the routing invariant `forward` walks.
    #[test]
    fn order_is_an_owner_headed_permutation(
        slots in 1usize..9,
        raw_key in any::<u64>(),
    ) {
        let ring = Ring::new(slots, DEFAULT_REPLICAS);
        let order = ring.order(raw_key);
        prop_assert_eq!(order.len(), slots);
        prop_assert_eq!(order[0], ring.owner(raw_key));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..slots).collect::<Vec<_>>());
    }
}
