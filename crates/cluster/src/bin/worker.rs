//! `scap-cluster-worker` — a standalone `scap serve` worker process.
//!
//! Exactly the serving surface of `scap serve`, as a separate binary so
//! the cluster integration tests (via `CARGO_BIN_EXE_scap-cluster-worker`)
//! and the benchmark harness can spawn workers without depending on the
//! full CLI. The one line of stdout the fleet supervisor parses:
//!
//! ```text
//! scap serve listening on http://127.0.0.1:PORT
//! ```
//!
//! Flags mirror `scap serve`: `--addr`, `--workers`, `--queue-depth`,
//! `--cache-capacity` (design LRU), `--cache-cap` (response LRU),
//! `--deadline-ms`, `--debug-endpoints`.

use scap_serve::params::Args;
use scap_serve::{ServeConfig, Server};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let defaults = ServeConfig::default();
    let cfg = match (
        args.usize_flag("workers", defaults.workers),
        args.usize_flag("queue-depth", defaults.queue_depth),
        args.usize_flag("cache-capacity", defaults.cache_capacity),
        args.usize_flag("cache-cap", defaults.response_cache_capacity),
        args.usize_flag(
            "deadline-ms",
            defaults.default_deadline.as_millis() as usize,
        ),
    ) {
        (Ok(workers), Ok(queue_depth), Ok(cache_capacity), Ok(cache_cap), Ok(deadline_ms)) => {
            ServeConfig {
                addr: args.get("addr").unwrap_or("127.0.0.1:0").to_owned(),
                workers,
                queue_depth,
                cache_capacity,
                response_cache_capacity: cache_cap,
                default_deadline: std::time::Duration::from_millis(deadline_ms as u64),
                debug_endpoints: args.has("debug-endpoints"),
            }
        }
        (w, q, c, r, d) => {
            for e in [w.err(), q.err(), c.err(), r.err(), d.err()]
                .into_iter()
                .flatten()
            {
                eprintln!("scap-cluster-worker: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scap-cluster-worker: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The stable line the fleet supervisor parses for the port.
    println!("scap serve listening on http://{}", server.local_addr());
    match server.run() {
        Ok(_snapshot) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scap-cluster-worker: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}
