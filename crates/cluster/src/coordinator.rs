//! The coordinator: a thin std-only HTTP proxy in front of the fleet.
//!
//! Request lifecycle:
//!
//! 1. parse the request with the same `scap_serve::http` reader the
//!    workers use;
//! 2. answer `/healthz`, `/metrics` and `/v1/shutdown` locally;
//! 3. for everything else, compute the shard key from the request's
//!    `(scale, seed)` (the same canonical parameters the workers
//!    validate), walk the hash ring's failover order restricted to
//!    live slots, and forward;
//! 4. **hedge**: if the first attempt has not answered within the
//!    configured latency threshold, race a duplicate against the next
//!    live slot and return whichever finishes first — every analysis
//!    handler is a pure function of its parameters, so duplicated work
//!    is wasted capacity, never wrong answers;
//! 5. **failover**: a transport error or gateway-shaped status
//!    (`500`/`502`, plus `503` sheds) reroutes to the next live slot,
//!    each slot tried at most once per request; only when every
//!    candidate has failed does the client see a `502`.
//!
//! `/metrics` aggregation scrapes every live worker, sums counters and
//! span statistics, takes the max of gauges (capacities and queue
//! depths are per-process facts), folds in the coordinator's own
//! registry (the `cluster.*` family lives here), and appends a
//! `cluster` object describing per-worker liveness.

use crate::hash::{fnv1a64, Ring, DEFAULT_REPLICAS};
use crate::worker::{Fleet, WorkerInfo};
use scap_serve::http::{read_request, ReadError, Request, Response};
use scap_serve::loadgen::{self, ClientResponse};
use scap_serve::params::Args;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Forward-leg connect timeout (workers are local processes).
const FORWARD_CONNECT: Duration = Duration::from_secs(2);
/// Forward-leg read timeout — generous: heavy analyses are legitimate.
const FORWARD_READ: Duration = Duration::from_secs(120);
/// How long the fleet gets to drain before stragglers are killed.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Coordinator configuration; every knob mirrors a `scap cluster` flag.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Coordinator listen address (`host:port`, port 0 = ephemeral).
    pub addr: String,
    /// Worker processes to spawn.
    pub workers: usize,
    /// Worker argv; the fleet appends `--addr 127.0.0.1:0`. The binary
    /// must print `scap serve listening on http://ADDR` once bound.
    pub worker_command: Vec<String>,
    /// Latency threshold after which a slow request is hedged against
    /// the next live slot.
    pub hedge: Duration,
    /// Supervision cycle period (probe + respawn cadence).
    pub probe_interval: Duration,
    /// Consecutive probe/transport failures before a slot is marked
    /// dead and its hash range drains to successors.
    pub probe_failure_threshold: u32,
    /// Virtual nodes per slot on the hash ring.
    pub replicas: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            addr: "127.0.0.1:7900".to_owned(),
            workers: 2,
            worker_command: Vec::new(),
            hedge: Duration::from_millis(1000),
            probe_interval: Duration::from_millis(500),
            probe_failure_threshold: 3,
            replicas: DEFAULT_REPLICAS,
        }
    }
}

/// Signals a running [`Coordinator`] to shut down gracefully.
#[derive(Clone, Debug)]
pub struct ClusterShutdown {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ClusterShutdown {
    /// Requests shutdown: stop accepting, drain the fleet. Idempotent.
    pub fn signal(&self) {
        self.flag.store(true, Ordering::Release);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

struct ClusterCtx {
    cfg: ClusterConfig,
    fleet: Fleet,
    ring: Ring,
    shutdown: ClusterShutdown,
    started: Instant,
}

/// The bound, fleet-launched, not-yet-serving coordinator.
/// [`Coordinator::launch`] then [`Coordinator::run`]; `run` blocks
/// until shutdown is signaled, then drains the fleet.
pub struct Coordinator {
    listener: TcpListener,
    ctx: Arc<ClusterCtx>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.local_addr())
            .field("workers", &self.ctx.fleet.len())
            .finish()
    }
}

impl Coordinator {
    /// Spawns the fleet, binds the listener, starts the supervision
    /// thread. Metrics collection is enabled as a side effect
    /// (`/metrics` is part of the API contract).
    pub fn launch(cfg: ClusterConfig) -> std::io::Result<Coordinator> {
        scap_obs::set_enabled(true);
        intern_counter_families();
        let fleet = Fleet::launch(
            cfg.worker_command.clone(),
            cfg.workers,
            cfg.probe_failure_threshold,
        )?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ring = Ring::new(fleet.len(), cfg.replicas);
        let ctx = Arc::new(ClusterCtx {
            fleet,
            ring,
            shutdown: ClusterShutdown {
                flag: Arc::new(AtomicBool::new(false)),
                addr,
            },
            started: Instant::now(),
            cfg,
        });
        let prober = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("scap-cluster-probe".to_owned())
                .spawn(move || {
                    while !ctx.shutdown.is_signaled() {
                        ctx.fleet.probe_once();
                        // Sleep in short steps so shutdown is prompt
                        // even under long probe intervals.
                        let until = Instant::now() + ctx.cfg.probe_interval;
                        while Instant::now() < until && !ctx.shutdown.is_signaled() {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                    }
                })
                .expect("spawning probe thread")
        };
        Ok(Coordinator {
            listener,
            ctx,
            prober: Some(prober),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// A handle that can signal graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ClusterShutdown {
        self.ctx.shutdown.clone()
    }

    /// Snapshot of every worker slot (CLI banner, tests).
    pub fn worker_infos(&self) -> Vec<WorkerInfo> {
        self.ctx.fleet.infos()
    }

    /// Kills worker `i`'s process outright — failure injection for the
    /// integration tests; the router discovers the death like a crash.
    pub fn kill_worker(&self, i: usize) {
        self.ctx.fleet.kill(i);
    }

    /// Number of slots the router currently considers live.
    pub fn alive_workers(&self) -> usize {
        self.ctx.fleet.alive_count()
    }

    /// A clone-cheap control handle usable after [`Coordinator::run`]
    /// has consumed `self` — the integration tests hold one to inject
    /// worker crashes and watch recovery while the serve loop runs.
    pub fn controller(&self) -> ClusterController {
        ClusterController {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Serves until shutdown is signaled, then drains the fleet and
    /// returns the coordinator's final metrics snapshot.
    pub fn run(mut self) -> std::io::Result<scap_obs::Snapshot> {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.ctx.shutdown.is_signaled() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let ctx = Arc::clone(&self.ctx);
            let handle = std::thread::Builder::new()
                .name("scap-cluster-conn".to_owned())
                .spawn(move || handle_connection(&ctx, stream))
                .expect("spawning connection thread");
            connections.push(handle);
            connections.retain(|h| !h.is_finished());
        }
        drop(self.listener);
        for h in connections {
            let _ = h.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        self.ctx.fleet.drain(DRAIN_GRACE);
        Ok(scap_obs::snapshot())
    }
}

/// Clone-cheap control view of a running cluster (see
/// [`Coordinator::controller`]).
#[derive(Clone)]
pub struct ClusterController {
    ctx: Arc<ClusterCtx>,
}

impl std::fmt::Debug for ClusterController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterController")
            .field("workers", &self.ctx.fleet.len())
            .finish()
    }
}

impl ClusterController {
    /// Snapshot of every worker slot.
    pub fn worker_infos(&self) -> Vec<WorkerInfo> {
        self.ctx.fleet.infos()
    }

    /// Kills worker `i`'s process outright (failure injection).
    pub fn kill_worker(&self, i: usize) {
        self.ctx.fleet.kill(i);
    }

    /// Number of slots the router currently considers live.
    pub fn alive_workers(&self) -> usize {
        self.ctx.fleet.alive_count()
    }
}

/// Interns the whole `cluster.*` counter family at startup so the
/// first `/metrics` scrape echoes every name, zeros included.
fn intern_counter_families() {
    for name in [
        "cluster.route.requests",
        "cluster.route.handoffs",
        "cluster.hedge.fired",
        "cluster.hedge.wins",
        "cluster.failover.reroutes",
        "cluster.failover.shed_retries",
        "cluster.failover.recovered",
        "cluster.probe.ok",
        "cluster.probe.failures",
        "cluster.probe.marked_dead",
        "cluster.probe.recovered",
        "cluster.worker.spawned",
        "cluster.worker.exited",
        "cluster.worker.restarts",
    ] {
        scap_obs::counter(name);
    }
    scap_obs::gauge("cluster.workers.total");
    scap_obs::gauge("cluster.workers.alive");
}

fn handle_connection(ctx: &ClusterCtx, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let response = match read_request(&mut stream) {
        Ok(Some(req)) => handle_request(ctx, &req),
        Ok(None) => return, // silent close (shutdown waker, port probe)
        Err(ReadError::Io(_)) => return,
        Err(ReadError::BadRequest(msg)) => Response::error(400, msg),
        Err(ReadError::TooLarge(msg)) => Response::error(413, msg),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn handle_request(ctx: &ClusterCtx, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(ctx),
        ("GET", "/metrics") => aggregate_metrics(ctx),
        ("POST", "/v1/shutdown") => {
            ctx.shutdown.signal();
            let mut obj = scap_obs::json::Obj::new();
            obj.bool("shutting_down", true);
            Response::json(200, obj.finish())
        }
        _ => forward(ctx, req),
    }
}

fn healthz(ctx: &ClusterCtx) -> Response {
    let mut obj = scap_obs::json::Obj::new();
    obj.str("status", "ok")
        .str("role", "coordinator")
        .u64("uptime_ms", ctx.started.elapsed().as_millis() as u64)
        .u64("workers_total", ctx.fleet.len() as u64)
        .u64("workers_alive", ctx.fleet.alive_count() as u64);
    Response::json(200, obj.finish())
}

/// The shard key of a request: `(scale, seed)` when both parse (the
/// overwhelmingly common case — defaults included), else a hash of the
/// raw parameter text so malformed requests still route *somewhere*
/// deterministic and come back with the worker's own `400`.
fn shard_key_of(req: &Request) -> u64 {
    let args = Args::from_request(&req.query, req.body_str());
    match (args.scale(), args.seed()) {
        (Ok(scale), Ok(seed)) => Ring::shard_key(scale, seed),
        _ => {
            let mut raw = req.query.clone().into_bytes();
            raw.extend_from_slice(&req.body);
            fnv1a64(&raw)
        }
    }
}

/// Statuses that indicate the *worker* (not the request) is in trouble
/// and the next live slot deserves a try. `504` passes through: the
/// deadline is a property of the request, not the worker.
fn retryable(status: u16) -> bool {
    matches!(status, 500 | 502 | 503)
}

fn to_response(upstream: ClientResponse) -> Response {
    let mut resp = Response::json(upstream.status, "");
    if let Some(v) = upstream.header("retry-after") {
        resp = resp.with_header("retry-after", v);
    }
    resp.body = upstream.body;
    resp
}

fn forward(ctx: &ClusterCtx, req: &Request) -> Response {
    scap_obs::counter!("cluster.route.requests").incr();
    let key = shard_key_of(req);
    let order = ctx.ring.order(key);
    let candidates: Vec<(usize, SocketAddr)> = order
        .iter()
        .filter_map(|&slot| ctx.fleet.live_addr(slot).map(|a| (slot, a)))
        .collect();
    let Some(&(first_slot, _)) = candidates.first() else {
        return Response::error(503, "no live workers").with_header("retry-after", "1");
    };
    if first_slot != order[0] {
        // The owner is dead: its hash range is handed to a successor.
        scap_obs::counter!("cluster.route.handoffs").incr();
    }

    let target = if req.query.is_empty() {
        req.path.clone()
    } else {
        format!("{}?{}", req.path, req.query)
    };
    let body = String::from_utf8_lossy(&req.body).into_owned();
    let method = req.method.clone();

    let (tx, rx) = mpsc::channel::<(usize, std::io::Result<ClientResponse>)>();
    let attempt = |slot: usize, addr: SocketAddr| {
        let tx = tx.clone();
        let method = method.clone();
        let target = target.clone();
        let body = body.clone();
        std::thread::Builder::new()
            .name("scap-cluster-fwd".to_owned())
            .spawn(move || {
                let result = loadgen::request_with_timeouts(
                    addr,
                    &method,
                    &target,
                    &body,
                    FORWARD_CONNECT,
                    FORWARD_READ,
                );
                let _ = tx.send((slot, result));
            })
            .expect("spawning forward thread");
    };

    let mut next = 1usize;
    let mut in_flight = 1usize;
    let mut hedge_slot: Option<usize> = None;
    let mut had_failure = false;
    attempt(candidates[0].0, candidates[0].1);

    loop {
        let can_launch_more = next < candidates.len();
        let timeout = if hedge_slot.is_none() && can_launch_more {
            ctx.cfg.hedge
        } else {
            // Longer than the forward read timeout: a verdict (or a
            // transport error) always arrives before this fires.
            FORWARD_READ + Duration::from_secs(10)
        };
        match rx.recv_timeout(timeout) {
            Ok((slot, Ok(resp))) => {
                in_flight -= 1;
                if retryable(resp.status) && next < candidates.len() {
                    if resp.status == 503 {
                        scap_obs::counter!("cluster.failover.shed_retries").incr();
                    } else {
                        scap_obs::counter!("cluster.failover.reroutes").incr();
                    }
                    had_failure = true;
                    attempt(candidates[next].0, candidates[next].1);
                    next += 1;
                    in_flight += 1;
                    continue;
                }
                if resp.status == 200 {
                    if had_failure {
                        scap_obs::counter!("cluster.failover.recovered").incr();
                    }
                    if hedge_slot == Some(slot) {
                        scap_obs::counter!("cluster.hedge.wins").incr();
                    }
                }
                return to_response(resp);
            }
            Ok((slot, Err(_))) => {
                in_flight -= 1;
                ctx.fleet.note_transport_failure(slot);
                had_failure = true;
                if next < candidates.len() {
                    scap_obs::counter!("cluster.failover.reroutes").incr();
                    attempt(candidates[next].0, candidates[next].1);
                    next += 1;
                    in_flight += 1;
                } else if in_flight == 0 {
                    return Response::error(502, "every live worker failed this request");
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if hedge_slot.is_none() && next < candidates.len() {
                    scap_obs::counter!("cluster.hedge.fired").incr();
                    hedge_slot = Some(candidates[next].0);
                    attempt(candidates[next].0, candidates[next].1);
                    next += 1;
                    in_flight += 1;
                } else if in_flight == 0 {
                    return Response::error(502, "every live worker failed this request");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Response::error(502, "every live worker failed this request");
            }
        }
    }
}

/// One worker's parsed `/metrics` folded into the running aggregate.
#[derive(Default)]
struct Aggregate {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    float_gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, (u64, u64)>,
}

impl Aggregate {
    fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    fn max_gauge(&mut self, name: &str, v: u64) {
        let slot = self.gauges.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(v);
    }

    fn max_float_gauge(&mut self, name: &str, v: f64) {
        let slot = self.float_gauges.entry(name.to_owned()).or_insert(0.0);
        *slot = slot.max(v);
    }

    fn add_span(&mut self, name: &str, count: u64, total_ns: u64) {
        let slot = self.spans.entry(name.to_owned()).or_insert((0, 0));
        slot.0 += count;
        slot.1 += total_ns;
    }

    /// Folds one worker's strict-JSON `/metrics` document in. Returns
    /// `false` (leaving the aggregate untouched for the unparsed
    /// remainder) when the document is not the expected shape.
    fn merge_json(&mut self, text: &str) -> bool {
        let Ok(doc) = scap_obs::json::parse(text) else {
            return false;
        };
        if let Some(counters) = doc.get("counters").and_then(|v| v.as_obj()) {
            for (name, v) in counters {
                if let Some(v) = v.as_u64() {
                    self.add_counter(name, v);
                }
            }
        }
        if let Some(gauges) = doc.get("gauges").and_then(|v| v.as_obj()) {
            for (name, v) in gauges {
                if let Some(v) = v.as_u64() {
                    self.max_gauge(name, v);
                }
            }
        }
        if let Some(fgauges) = doc.get("float_gauges").and_then(|v| v.as_obj()) {
            for (name, v) in fgauges {
                if let Some(v) = v.as_f64() {
                    self.max_float_gauge(name, v);
                }
            }
        }
        if let Some(spans) = doc.get("spans").and_then(|v| v.as_obj()) {
            for (name, v) in spans {
                if let (Some(count), Some(total_ns)) = (
                    v.get("count").and_then(|c| c.as_u64()),
                    v.get("total_ns").and_then(|t| t.as_u64()),
                ) {
                    self.add_span(name, count, total_ns);
                }
            }
        }
        true
    }

    /// Folds the coordinator's own registry in (the `cluster.*`
    /// family, plus anything else this process recorded).
    fn merge_local(&mut self, snap: &scap_obs::Snapshot) {
        for &(name, v) in &snap.counters {
            self.add_counter(name, v);
        }
        for &(name, v) in &snap.gauges {
            self.max_gauge(name, v);
        }
        for &(name, v) in &snap.float_gauges {
            self.max_float_gauge(name, v);
        }
        for &(name, s) in &snap.spans {
            self.add_span(name, s.count, s.total_ns);
        }
    }

    fn render(&self, cluster: &str) -> String {
        let mut counters = scap_obs::json::Obj::new();
        for (name, v) in &self.counters {
            counters.u64(name, *v);
        }
        let mut gauges = scap_obs::json::Obj::new();
        for (name, v) in &self.gauges {
            gauges.u64(name, *v);
        }
        let mut fgauges = scap_obs::json::Obj::new();
        for (name, v) in &self.float_gauges {
            fgauges.f64(name, *v);
        }
        let mut spans = scap_obs::json::Obj::new();
        for (name, (count, total_ns)) in &self.spans {
            let mut span = scap_obs::json::Obj::new();
            span.u64("count", *count).u64("total_ns", *total_ns);
            spans.raw(name, &span.finish());
        }
        let mut doc = scap_obs::json::Obj::new();
        doc.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("float_gauges", &fgauges.finish())
            .raw("spans", &spans.finish())
            .raw("cluster", cluster);
        doc.finish()
    }
}

fn aggregate_metrics(ctx: &ClusterCtx) -> Response {
    let mut agg = Aggregate::default();
    let infos = ctx.fleet.infos();
    let mut per_worker = scap_obs::json::Arr::new();
    for info in &infos {
        let mut scraped = false;
        if info.alive {
            if let Some(addr) = info.addr {
                if let Ok(resp) = loadgen::request_with_timeouts(
                    addr,
                    "GET",
                    "/metrics",
                    "",
                    FORWARD_CONNECT,
                    Duration::from_secs(10),
                ) {
                    if resp.status == 200 {
                        scraped = agg.merge_json(resp.text());
                    }
                }
            }
        }
        let mut w = scap_obs::json::Obj::new();
        w.u64("index", info.index as u64)
            .str(
                "addr",
                &info
                    .addr
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "-".to_owned()),
            )
            .bool("alive", info.alive)
            .u64("restarts", info.restarts)
            .bool("scraped", scraped);
        per_worker.raw(&w.finish());
    }
    agg.merge_local(&scap_obs::snapshot());
    let mut cluster = scap_obs::json::Obj::new();
    cluster
        .u64("workers_total", ctx.fleet.len() as u64)
        .u64("workers_alive", ctx.fleet.alive_count() as u64)
        .raw("per_worker", &per_worker.finish());
    Response::json(200, agg.render(&cluster.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_counters_and_maxes_gauges() {
        let mut agg = Aggregate::default();
        let worker = |hits: u64, cap: u64, ns: u64| {
            format!(
                "{{\"counters\":{{\"serve.cache.hits\":{hits}}},\
                 \"gauges\":{{\"serve.cache.capacity\":{cap}}},\
                 \"float_gauges\":{{}},\
                 \"spans\":{{\"serve.handle.design\":{{\"count\":1,\"total_ns\":{ns}}}}}}}"
            )
        };
        assert!(agg.merge_json(&worker(3, 4, 100)));
        assert!(agg.merge_json(&worker(5, 8, 250)));
        assert_eq!(agg.counters["serve.cache.hits"], 8);
        assert_eq!(agg.gauges["serve.cache.capacity"], 8);
        assert_eq!(agg.spans["serve.handle.design"], (2, 350));

        // The rendered aggregate is itself strict JSON.
        let rendered = agg.render("{\"workers_total\":2}");
        let doc = scap_obs::json::parse(&rendered).expect("aggregate renders strict JSON");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.cache.hits"))
                .and_then(|v| v.as_u64()),
            Some(8)
        );
        assert_eq!(
            doc.get("cluster")
                .and_then(|c| c.get("workers_total"))
                .and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn malformed_worker_documents_are_rejected() {
        let mut agg = Aggregate::default();
        assert!(!agg.merge_json("not json"));
        assert!(agg.counters.is_empty());
    }

    #[test]
    fn retryable_covers_gateway_shaped_statuses_only() {
        assert!(retryable(500));
        assert!(retryable(502));
        assert!(retryable(503));
        assert!(!retryable(200));
        assert!(!retryable(400));
        assert!(!retryable(404));
        assert!(!retryable(504), "deadlines are request-scoped");
    }
}
