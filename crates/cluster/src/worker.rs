//! Worker fleet: spawning, health probing, restart with backoff, drain.
//!
//! Each worker is a child process running the `scap serve` surface
//! (the `scap-cluster-worker` binary, or `scap serve` itself) on an
//! ephemeral port. The fleet learns the port from the worker's one
//! stable stdout line — `scap serve listening on http://ADDR` — the
//! same line `scripts/check.sh` parses for single-process serving.
//!
//! Supervision is a single cycle ([`Fleet::probe_once`]) the
//! coordinator runs on a timer:
//!
//! * a worker whose process exited is marked dead immediately and
//!   scheduled for respawn after an exponential backoff
//!   ([`scap_exec::Backoff`], 250 ms doubling to 5 s);
//! * a live process failing `GET /healthz` (short timeouts)
//!   `probe_failure_threshold` times in a row is marked dead — its
//!   hash range drains to ring successors until it recovers;
//! * a dead-but-running worker that answers a probe again is revived
//!   in place, caches intact.
//!
//! The request path reports its own transport failures through
//! [`Fleet::note_transport_failure`], so a crashed worker is usually
//! dead to the router before the next probe tick fires.

use scap_serve::loadgen;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long `spawn_worker` waits for the listening line before giving
/// up on a child that started but never bound.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(30);

/// Connect / read timeouts of a health probe — much shorter than a
/// client's, so a wedged worker cannot stall the supervision cycle.
const PROBE_CONNECT: Duration = Duration::from_millis(500);
const PROBE_READ: Duration = Duration::from_secs(2);

/// Identity of one worker slot, for logs and `/metrics`.
#[derive(Clone, Debug)]
pub struct WorkerInfo {
    /// Slot index (the ring identity — stable across restarts).
    pub index: usize,
    /// OS process id of the current child, 0 when down.
    pub pid: u32,
    /// Bound address of the current child, if any.
    pub addr: Option<SocketAddr>,
    /// Whether the router currently considers the slot live.
    pub alive: bool,
    /// Times this slot has been respawned after an exit.
    pub restarts: u64,
}

struct Slot {
    proc: Option<Child>,
    addr: Option<SocketAddr>,
    alive: bool,
    failures: u32,
    backoff: scap_exec::Backoff,
    restarts: u64,
    respawn_at: Option<Instant>,
}

/// The supervised worker fleet (see module docs).
pub struct Fleet {
    command: Vec<String>,
    slots: Vec<Mutex<Slot>>,
    probe_failure_threshold: u32,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("workers", &self.slots.len())
            .finish()
    }
}

/// Spawns one worker process and waits for its listening line.
///
/// The child runs `command + ["--addr", "127.0.0.1:0"]` with stdout
/// piped; once `scap serve listening on http://ADDR` appears the
/// remaining stdout is drained (and discarded) on a background thread
/// so the child never blocks on a full pipe.
fn spawn_worker(command: &[String]) -> std::io::Result<(Child, SocketAddr)> {
    let (program, args) = command.split_first().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty worker command")
    })?;
    let mut child = Command::new(program)
        .args(args)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        // Null rather than inherited stderr: an inherited descriptor
        // would keep the parent's output pipes open for as long as any
        // worker lives, wedging shell pipelines around the coordinator.
        .stderr(Stdio::null())
        .stdin(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let started = Instant::now();
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker exited before announcing its address",
            ));
        }
        if let Some(raw) = line.trim().strip_prefix("scap serve listening on http://") {
            match raw.parse::<SocketAddr>() {
                Ok(a) => break a,
                Err(_) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparseable worker address '{raw}'"),
                    ));
                }
            }
        }
        if started.elapsed() > SPAWN_TIMEOUT {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "worker never announced its address",
            ));
        }
    };
    // Drain the rest of the child's stdout forever (it prints again at
    // drain time); the thread dies with the pipe.
    std::thread::Builder::new()
        .name("scap-cluster-stdout".to_owned())
        .spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        })
        .expect("spawning stdout drainer");
    Ok((child, addr))
}

impl Fleet {
    /// Spawns `workers` processes of `command` and waits until each has
    /// announced its address. Fails (killing what already started) if
    /// any worker cannot come up — a partially-launched fleet routes
    /// requests into a void.
    pub fn launch(
        command: Vec<String>,
        workers: usize,
        probe_failure_threshold: u32,
    ) -> std::io::Result<Fleet> {
        let workers = workers.max(1);
        scap_obs::gauge("cluster.workers.total").set(workers as u64);
        let mut slots = Vec::with_capacity(workers);
        for _ in 0..workers {
            match spawn_worker(&command) {
                Ok((child, addr)) => {
                    scap_obs::counter!("cluster.worker.spawned").incr();
                    slots.push(Mutex::new(Slot {
                        proc: Some(child),
                        addr: Some(addr),
                        alive: true,
                        failures: 0,
                        backoff: scap_exec::Backoff::new(
                            Duration::from_millis(250),
                            Duration::from_secs(5),
                        ),
                        restarts: 0,
                        respawn_at: None,
                    }));
                }
                Err(e) => {
                    for s in &slots {
                        let mut s = lock(s);
                        if let Some(child) = s.proc.as_mut() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                    }
                    return Err(e);
                }
            }
        }
        let fleet = Fleet {
            command,
            slots,
            probe_failure_threshold: probe_failure_threshold.max(1),
        };
        fleet.update_alive_gauge();
        Ok(fleet)
    }

    /// Number of worker slots (live or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the fleet has no slots (never true after `launch`).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Address of slot `i` if the router currently considers it live.
    pub fn live_addr(&self, i: usize) -> Option<SocketAddr> {
        let s = lock(&self.slots[i]);
        if s.alive {
            s.addr
        } else {
            None
        }
    }

    /// Number of live slots.
    pub fn alive_count(&self) -> usize {
        (0..self.slots.len())
            .filter(|&i| lock(&self.slots[i]).alive)
            .count()
    }

    /// Snapshot of every slot, for `/metrics` and the CLI banner.
    pub fn infos(&self) -> Vec<WorkerInfo> {
        self.slots
            .iter()
            .enumerate()
            .map(|(index, s)| {
                let s = lock(s);
                WorkerInfo {
                    index,
                    pid: s.proc.as_ref().map(Child::id).unwrap_or(0),
                    addr: s.addr,
                    alive: s.alive,
                    restarts: s.restarts,
                }
            })
            .collect()
    }

    /// The request path saw a transport-level failure against slot `i`:
    /// counts toward the same consecutive-failure threshold as probes,
    /// so a crashed worker is dead to the router without waiting for
    /// the next probe tick.
    pub fn note_transport_failure(&self, i: usize) {
        let mut s = lock(&self.slots[i]);
        s.failures = s.failures.saturating_add(1);
        if s.alive && s.failures >= self.probe_failure_threshold {
            s.alive = false;
            scap_obs::counter!("cluster.probe.marked_dead").incr();
        }
        drop(s);
        self.update_alive_gauge();
    }

    /// Kills slot `i`'s process outright (SIGKILL) — the failure
    /// injection the integration tests and the check.sh smoke use.
    pub fn kill(&self, i: usize) {
        let mut s = lock(&self.slots[i]);
        if let Some(child) = s.proc.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        s.proc = None;
        // Leave `alive`/`addr` untouched: the next request or probe
        // must *discover* the death, exactly like a real crash.
    }

    /// One supervision cycle over every slot: reap exits, probe
    /// `/healthz`, mark dead / revive, respawn after backoff.
    pub fn probe_once(&self) {
        for i in 0..self.slots.len() {
            self.supervise_slot(i);
        }
        self.update_alive_gauge();
    }

    fn supervise_slot(&self, i: usize) {
        let mut s = lock(&self.slots[i]);
        // 1. Reap an exited child.
        let exited = matches!(
            s.proc.as_mut().map(std::process::Child::try_wait),
            Some(Ok(Some(_)))
        );
        if exited {
            scap_obs::counter!("cluster.worker.exited").incr();
            s.proc = None;
            s.addr = None;
            if s.alive {
                s.alive = false;
                scap_obs::counter!("cluster.probe.marked_dead").incr();
            }
            let wait = s.backoff.advance();
            s.respawn_at = Some(Instant::now() + wait);
        }
        // 2. Probe a running child.
        if let Some(addr) = s.proc.as_ref().and(s.addr) {
            let ok = matches!(
                loadgen::request_with_timeouts(addr, "GET", "/healthz", "", PROBE_CONNECT, PROBE_READ),
                Ok(resp) if resp.status == 200
            );
            if ok {
                scap_obs::counter!("cluster.probe.ok").incr();
                s.failures = 0;
                if !s.alive {
                    s.alive = true;
                    s.backoff.reset();
                    scap_obs::counter!("cluster.probe.recovered").incr();
                }
            } else {
                scap_obs::counter!("cluster.probe.failures").incr();
                s.failures = s.failures.saturating_add(1);
                if s.alive && s.failures >= self.probe_failure_threshold {
                    s.alive = false;
                    scap_obs::counter!("cluster.probe.marked_dead").incr();
                }
            }
        }
        // 3. Respawn a down slot whose backoff has elapsed.
        let due = s.proc.is_none() && s.respawn_at.map(|t| Instant::now() >= t).unwrap_or(true);
        if due && s.proc.is_none() {
            match spawn_worker(&self.command) {
                Ok((child, addr)) => {
                    scap_obs::counter!("cluster.worker.spawned").incr();
                    scap_obs::counter!("cluster.worker.restarts").incr();
                    s.proc = Some(child);
                    s.addr = Some(addr);
                    s.alive = true;
                    s.failures = 0;
                    s.restarts += 1;
                    s.respawn_at = None;
                    s.backoff.reset();
                }
                Err(_) => {
                    let wait = s.backoff.advance();
                    s.respawn_at = Some(Instant::now() + wait);
                }
            }
        }
    }

    /// Graceful fleet drain: `POST /v1/shutdown` to every live worker,
    /// then wait for each child (killing stragglers after `grace`).
    pub fn drain(&self, grace: Duration) {
        for s in &self.slots {
            let addr = lock(s).addr;
            if let Some(addr) = addr {
                let _ = loadgen::request_with_timeouts(
                    addr,
                    "POST",
                    "/v1/shutdown",
                    "",
                    PROBE_CONNECT,
                    PROBE_READ,
                );
            }
        }
        let deadline = Instant::now() + grace;
        for s in &self.slots {
            let mut s = lock(s);
            if let Some(child) = s.proc.as_mut() {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(25))
                        }
                        Ok(None) | Err(_) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            s.proc = None;
            s.alive = false;
        }
        self.update_alive_gauge();
    }

    fn update_alive_gauge(&self) {
        scap_obs::gauge("cluster.workers.alive").set(self.alive_count() as u64);
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Last-resort cleanup: never leave orphan workers behind.
        for s in &mut self.slots {
            let s = s.get_mut().unwrap_or_else(|e| e.into_inner());
            if let Some(child) = s.proc.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn lock(slot: &Mutex<Slot>) -> MutexGuard<'_, Slot> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}
