//! Sharded multi-process serving tier for the SCAP pipeline.
//!
//! A single `scap serve` process holds one design cache and one
//! response cache; its capacity for *distinct* `(scale, seed)` shards
//! is whatever fits in those LRUs. This crate scales that horizontally
//! the way the serving layer's determinism contract allows: a
//! **coordinator** process spawns N `scap serve` **workers** on
//! ephemeral ports and routes every request by consistent hashing on
//! the request's `(scale, seed)` — so each worker owns a stable shard
//! of the keyspace and its caches stay warm for exactly that shard.
//!
//! ```text
//!              ┌────────────── scap cluster ──────────────┐
//!   client ──► │ coordinator: route ▸ hedge ▸ failover    │
//!              │   │ consistent-hash ring on (scale,seed) │
//!              │   ├──► worker 0  (scap serve, own caches)│
//!              │   ├──► worker 1                          │
//!              │   └──► worker N-1                        │
//!              └──────── /metrics aggregation ────────────┘
//! ```
//!
//! * [`hash::Ring`] — the consistent-hash ring: balanced, and minimally
//!   disruptive when the fleet grows (property-tested).
//! * [`worker::Fleet`] — process supervision: spawn, probe `/healthz`,
//!   mark dead after consecutive failures, respawn with exponential
//!   backoff, drain on shutdown.
//! * [`coordinator::Coordinator`] — the thin std-only HTTP proxy:
//!   routing with handoff to ring successors when the owner is dead,
//!   request hedging past a latency threshold (handlers are pure, so
//!   duplicates are safe), failover on transport errors and
//!   gateway-shaped statuses, fleet-wide `/metrics` aggregation.
//!
//! Everything observable lives in the `cluster.*` metric family —
//! routing (`cluster.route.*`), hedging (`cluster.hedge.*`), failover
//! (`cluster.failover.*`), supervision (`cluster.probe.*`,
//! `cluster.worker.*`) — documented in the `scap-obs` name registry.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coordinator;
pub mod hash;
pub mod worker;

pub use coordinator::{ClusterConfig, ClusterController, ClusterShutdown, Coordinator};
pub use hash::{Ring, DEFAULT_REPLICAS};
pub use worker::{Fleet, WorkerInfo};
