//! Consistent-hash ring over worker slots.
//!
//! Each worker slot contributes [`Ring::replicas`] virtual nodes —
//! points on a 64-bit circle at `fnv1a64("w{slot}:{replica}")`. A
//! request key owns the first point clockwise from its own hash; the
//! slot behind that point is the key's **owner**. Two properties make
//! this the right router for a shard-per-worker cache tier:
//!
//! * **balance** — with enough virtual nodes the keyspace splits close
//!   to evenly (the property tests pin ≤ 2× the mean);
//! * **minimal disruption** — growing the fleet from N to N+1 slots
//!   moves only the keys the new slot now owns; every other key keeps
//!   its worker, and therefore its warm cache.
//!
//! [`Ring::order`] extends ownership to a full failover sequence: the
//! distinct slots in ring-walk order starting at the owner. The
//! coordinator forwards to the first *live* entry, so a dead worker's
//! hash range drains onto its successors without renumbering anything.

/// Virtual nodes per slot used across the crate (coordinator, bench,
/// tests) — routing only agrees between processes when this matches.
pub const DEFAULT_REPLICAS: usize = 32;

/// 64-bit FNV-1a over `bytes` — the crate's one hash function, chosen
/// for determinism across processes (no per-process seeding) and
/// std-only implementability.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Consistent-hash ring over `slots` worker slots (see module docs).
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, slot)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    slots: usize,
    replicas: usize,
}

impl Ring {
    /// A ring of `slots` slots (clamped to ≥ 1), each contributing
    /// `replicas` virtual nodes (clamped to ≥ 1).
    pub fn new(slots: usize, replicas: usize) -> Self {
        let slots = slots.max(1);
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(slots * replicas);
        for slot in 0..slots {
            for r in 0..replicas {
                points.push((fnv1a64(format!("w{slot}:{r}").as_bytes()), slot));
            }
        }
        // Sort by point; break (astronomically unlikely) hash ties by
        // slot index so the ring is identical in every process.
        points.sort_unstable();
        Ring {
            points,
            slots,
            replicas,
        }
    }

    /// Number of slots on the ring.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Virtual nodes per slot.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The routing key of a `(scale, seed)` design shard: every
    /// endpoint that touches the same built design hashes to the same
    /// worker, so its design + response caches stay hot.
    pub fn shard_key(scale: f64, seed: u64) -> u64 {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&scale.to_bits().to_le_bytes());
        bytes[8..].copy_from_slice(&seed.to_le_bytes());
        fnv1a64(&bytes)
    }

    /// Index into `points` of the first point at or clockwise of `key`.
    fn successor(&self, key: u64) -> usize {
        match self.points.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap
            Err(i) => i,
        }
    }

    /// The slot owning `key`.
    pub fn owner(&self, key: u64) -> usize {
        self.points[self.successor(key)].1
    }

    /// Every slot in ring-walk order starting at the owner of `key` —
    /// the failover sequence. Always a permutation of `0..slots`.
    pub fn order(&self, key: u64) -> Vec<usize> {
        let start = self.successor(key);
        let mut seen = vec![false; self.slots];
        let mut out = Vec::with_capacity(self.slots);
        for step in 0..self.points.len() {
            let slot = self.points[(start + step) % self.points.len()].1;
            if !seen[slot] {
                seen[slot] = true;
                out.push(slot);
                if out.len() == self.slots {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn owner_heads_the_order_and_order_is_a_permutation() {
        let ring = Ring::new(4, DEFAULT_REPLICAS);
        for raw in 0..1000u64 {
            let key = fnv1a64(&raw.to_le_bytes());
            let order = ring.order(key);
            assert_eq!(order[0], ring.owner(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn single_slot_ring_owns_everything() {
        let ring = Ring::new(1, DEFAULT_REPLICAS);
        for raw in 0..100u64 {
            assert_eq!(ring.owner(fnv1a64(&raw.to_le_bytes())), 0);
            assert_eq!(ring.order(raw), vec![0]);
        }
    }

    #[test]
    fn shard_key_separates_scale_and_seed() {
        // Distinct (scale, seed) tuples must not trivially collide.
        let a = Ring::shard_key(0.01, 1);
        let b = Ring::shard_key(0.01, 2);
        let c = Ring::shard_key(0.02, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // …and the key is a pure function of its inputs.
        assert_eq!(a, Ring::shard_key(0.01, 1));
    }
}
