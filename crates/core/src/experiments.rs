//! One driver per table and figure of the paper's evaluation.
//!
//! Each function returns typed data; the `render_*` companions produce the
//! paper-style text rows printed by the benches and examples. Absolute
//! numbers differ from the paper (the substrate is a scaled synthetic
//! design, not the authors' 23 K-flop chip + commercial tools); the
//! comparisons each experiment makes — who wins, by roughly what factor —
//! are the reproduction target. See `EXPERIMENTS.md` at the repo root.

use crate::flows::FlowResult;
use crate::{CaseStudy, PatternAnalyzer};
use scap_netlist::BlockId;
use scap_power::{DynamicAnalysis, IrDropMap, StatisticalAnalysis, StatisticalReport};
use scap_soc::DesignReport;
use std::fmt::Write as _;

/// Toggle probability the paper uses for the pessimistic statistical
/// analysis (§2.2).
pub const TOGGLE_PROBABILITY: f64 = 0.30;

// ---------------------------------------------------------------------
// Tables 1 & 2
// ---------------------------------------------------------------------

/// Table 1: design characteristics.
pub fn table1(study: &CaseStudy) -> DesignReport {
    DesignReport::build(&study.design)
}

/// Renders Table 1.
pub fn render_table1(report: &DesignReport) -> String {
    let mut out = String::from("Table 1: Design Characteristics\n");
    for (label, value) in report.table1_rows() {
        let _ = writeln!(out, "  {label:<26} {value:>10}");
    }
    out
}

/// Renders Table 2 (clock-domain analysis) from the same report.
pub fn render_table2(report: &DesignReport) -> String {
    let mut out = String::from(
        "Table 2: Clock Domain Analysis\n  Domain   #Scan Cells   Freq [MHz]   Blocks Covered\n",
    );
    for row in &report.domains {
        let _ = writeln!(
            out,
            "  {:<8} {:>11} {:>12.1}   {}",
            row.name,
            row.scan_cells,
            row.frequency_mhz,
            row.blocks_covered.join(",")
        );
    }
    out
}

// ---------------------------------------------------------------------
// Table 3: statistical IR-drop, full vs half cycle
// ---------------------------------------------------------------------

/// Table 3 data: Case 1 (full-cycle window) and Case 2 (half-cycle
/// window) statistical analyses.
#[derive(Debug)]
pub struct Table3 {
    /// Full-cycle window.
    pub case1: StatisticalReport,
    /// Half-cycle window (the paper's average-STW assumption).
    pub case2: StatisticalReport,
}

/// Runs the Table 3 experiment.
pub fn table3(study: &CaseStudy) -> Table3 {
    let stat = StatisticalAnalysis::new(&study.design.netlist, &study.design.floorplan, study.grid);
    let period = study.period_ps();
    // The two window cases share the (already assembled) grid and are
    // independent — solve them concurrently.
    let (case1, case2) = scap_exec::join2(
        || stat.run(&study.annotation, TOGGLE_PROBABILITY, period),
        || stat.run(&study.annotation, TOGGLE_PROBABILITY, period / 2.0),
    );
    Table3 { case1, case2 }
}

/// The per-block SCAP screening thresholds (mW): the Case 2 average
/// switching power of each block (§2.2 / §3.2).
pub fn scap_thresholds(study: &CaseStudy) -> Vec<f64> {
    table3(study)
        .case2
        .blocks
        .iter()
        .map(|b| b.avg_power_mw)
        .collect()
}

/// Renders Table 3.
pub fn render_table3(study: &CaseStudy, t: &Table3) -> String {
    let mut out = String::from(
        "Table 3: Statistical functional IR-drop analysis per block\n\
                    -- Case1 (full cycle) --    -- Case2 (half cycle) --\n  \
         Block   Power[mW]  WorstDrop[V]    Power[mW]  WorstDrop[V]\n",
    );
    let names: Vec<&str> = study
        .design
        .netlist
        .blocks()
        .iter()
        .map(|b| b.name.as_str())
        .collect();
    for (i, name) in names.iter().enumerate() {
        let c1 = &t.case1.blocks[i];
        let c2 = &t.case2.blocks[i];
        let _ = writeln!(
            out,
            "  {name:<7} {:>9.2} {:>13.4} {:>12.2} {:>13.4}",
            c1.avg_power_mw, c1.worst_drop_vdd_v, c2.avg_power_mw, c2.worst_drop_vdd_v
        );
    }
    let _ = writeln!(
        out,
        "  {:<7} {:>9.2} {:>13.4} {:>12.2} {:>13.4}",
        "Chip",
        t.case1.chip.avg_power_mw,
        t.case1.chip.worst_drop_vdd_v,
        t.case2.chip.avg_power_mw,
        t.case2.chip.worst_drop_vdd_v
    );
    out
}

// ---------------------------------------------------------------------
// Table 4: CAP vs SCAP for one pattern
// ---------------------------------------------------------------------

/// Table 4 data: one pattern measured under both power models.
#[derive(Debug)]
pub struct Table4 {
    /// Index of the measured pattern in the conventional set.
    pub pattern_index: usize,
    /// Switching time window, ps.
    pub stw_ps: f64,
    /// Tester cycle, ps.
    pub period_ps: f64,
    /// (power VDD mW, power VSS mW, worst drop VDD V, worst drop VSS V)
    /// under the CAP (full-cycle) model.
    pub cap: (f64, f64, f64, f64),
    /// Same, under the SCAP (STW) model.
    pub scap: (f64, f64, f64, f64),
}

/// Runs Table 4 on a representative high-activity pattern of the
/// conventional set.
pub fn table4(study: &CaseStudy, conventional: &FlowResult) -> Table4 {
    let analyzer = PatternAnalyzer::new(study);
    // Representative pattern: the highest chip SCAP (the kind of pattern
    // CAP-based screening would wave through).
    let profile = analyzer.power_profile(&conventional.patterns);
    let idx = argmax(profile.iter().map(|p| p.chip_scap_vdd_mw()));
    let filled = &conventional.patterns.filled[idx];
    let trace = analyzer.trace(filled);
    let power = analyzer.power_of_trace(&trace);
    let dynir = DynamicAnalysis::new(&study.design.netlist, &study.design.floorplan, study.grid);
    let map_scap = dynir.analyze(&study.annotation, &trace);
    let map_cap = dynir.analyze_windowed(&study.annotation, &trace, study.period_ps());
    Table4 {
        pattern_index: idx,
        stw_ps: trace.stw_ps(),
        period_ps: study.period_ps(),
        cap: (
            power.chip.power_vdd_mw(study.period_ps()),
            power.chip.power_vss_mw(study.period_ps()),
            map_cap.worst_drop_vdd(),
            map_cap.worst_drop_vss(),
        ),
        scap: (
            power.chip.power_vdd_mw(trace.stw_ps()),
            power.chip.power_vss_mw(trace.stw_ps()),
            map_scap.worst_drop_vdd(),
            map_scap.worst_drop_vss(),
        ),
    }
}

/// Renders Table 4.
pub fn render_table4(t: &Table4) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: Average dynamic power / IR-drop of pattern #{} (STW = {:.2} ns, cycle = {:.0} ns)",
        t.pattern_index,
        t.stw_ps / 1000.0,
        t.period_ps / 1000.0
    );
    let _ = writeln!(
        out,
        "          Power[mW] VDD/VSS      Worst Avg IR-drop [V] VDD/VSS"
    );
    let _ = writeln!(
        out,
        "  CAP   {:>9.2} / {:<9.2} {:>10.4} / {:<10.4}",
        t.cap.0, t.cap.1, t.cap.2, t.cap.3
    );
    let _ = writeln!(
        out,
        "  SCAP  {:>9.2} / {:<9.2} {:>10.4} / {:<10.4}",
        t.scap.0, t.scap.1, t.scap.2, t.scap.3
    );
    out
}

// ---------------------------------------------------------------------
// Figures 2 & 6: per-pattern SCAP in block B5
// ---------------------------------------------------------------------

/// A per-pattern SCAP series for one block (Figures 2 and 6).
#[derive(Debug)]
pub struct ScapSeries {
    /// Block the series measures (B5 in the paper).
    pub block: BlockId,
    /// Per-pattern SCAP on the VDD network, mW.
    pub scap_mw: Vec<f64>,
    /// The screening threshold, mW.
    pub threshold_mw: f64,
    /// Pattern indices above the threshold.
    pub above: Vec<usize>,
}

impl ScapSeries {
    /// Fraction of patterns above the threshold.
    pub fn fraction_above(&self) -> f64 {
        if self.scap_mw.is_empty() {
            return 0.0;
        }
        self.above.len() as f64 / self.scap_mw.len() as f64
    }
}

/// Measures the SCAP of every pattern of a flow inside one block.
pub fn scap_series(
    study: &CaseStudy,
    flow: &FlowResult,
    block: BlockId,
    threshold_mw: f64,
) -> ScapSeries {
    let analyzer = PatternAnalyzer::new(study);
    let profile = analyzer.power_profile(&flow.patterns);
    let scap_mw: Vec<f64> = profile.iter().map(|p| p.scap_vdd_mw(block)).collect();
    let above: Vec<usize> = scap_mw
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > threshold_mw)
        .map(|(i, _)| i)
        .collect();
    scap_obs::counter!("screen.patterns_measured").add(scap_mw.len() as u64);
    scap_obs::counter!("screen.patterns_above").add(above.len() as u64);
    ScapSeries {
        block,
        scap_mw,
        threshold_mw,
        above,
    }
}

/// Figure 2: SCAP of the conventional (random-fill) set in B5.
pub fn fig2(study: &CaseStudy, conventional: &FlowResult) -> ScapSeries {
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let threshold = scap_thresholds(study)[b5.index()];
    scap_series(study, conventional, b5, threshold)
}

/// Figure 6: SCAP of the noise-aware set in B5.
pub fn fig6(study: &CaseStudy, noise_aware: &FlowResult) -> ScapSeries {
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let threshold = scap_thresholds(study)[b5.index()];
    scap_series(study, noise_aware, b5, threshold)
}

/// Renders a SCAP series as a down-sampled text sparkline plus summary.
pub fn render_scap_series(label: &str, s: &ScapSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{label}: {} patterns, threshold {:.2} mW, {} above ({:.1} %)",
        s.scap_mw.len(),
        s.threshold_mw,
        s.above.len(),
        100.0 * s.fraction_above()
    );
    if s.scap_mw.is_empty() {
        return out;
    }
    let max = s.scap_mw.iter().cloned().fold(1e-12, f64::max);
    let buckets = 64.min(s.scap_mw.len());
    let per = s.scap_mw.len().div_ceil(buckets);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let mut line = String::new();
    for chunk in s.scap_mw.chunks(per) {
        let m = chunk.iter().cloned().fold(0.0, f64::max);
        let g = ((m / max) * (glyphs.len() - 1) as f64).round() as usize;
        line.push(glyphs[g]);
    }
    let _ = writeln!(out, "  SCAP/pattern (max {max:.1} mW): [{line}]");
    out
}

// ---------------------------------------------------------------------
// Figure 3: dynamic IR-drop maps of two patterns
// ---------------------------------------------------------------------

/// Figure 3 data: the IR-drop maps of a high-SCAP pattern (P1) and a
/// near-threshold pattern (P2).
#[derive(Debug)]
pub struct Fig3 {
    /// Index of P1 (worst SCAP in B5).
    pub p1_index: usize,
    /// Index of P2 (closest to the threshold from below).
    pub p2_index: usize,
    /// P1's solved map.
    pub p1_map: IrDropMap,
    /// P2's solved map.
    pub p2_map: IrDropMap,
    /// SCAP of P1 and P2 in B5, mW.
    pub scap_mw: (f64, f64),
}

/// Runs Figure 3 on the conventional pattern set.
pub fn fig3(study: &CaseStudy, conventional: &FlowResult) -> Fig3 {
    let series = fig2(study, conventional);
    let analyzer = PatternAnalyzer::new(study);
    let p1 = argmax(series.scap_mw.iter().copied());
    // P2: the pattern closest to the threshold (at or below it when one
    // exists).
    let p2 = series
        .scap_mw
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != p1)
        .min_by(|(_, a), (_, b)| {
            let da = (*a - series.threshold_mw).abs();
            let db = (*b - series.threshold_mw).abs();
            da.partial_cmp(&db).expect("finite SCAP values")
        })
        .map(|(i, _)| i)
        .unwrap_or(p1);
    // One grid assembly, both patterns solved in parallel.
    let maps = analyzer.ir_drop_profile(&[
        conventional.patterns.filled[p1].clone(),
        conventional.patterns.filled[p2].clone(),
    ]);
    let mut maps = maps.into_iter();
    Fig3 {
        p1_index: p1,
        p2_index: p2,
        p1_map: maps.next().expect("two maps requested"),
        p2_map: maps.next().expect("two maps requested"),
        scap_mw: (series.scap_mw[p1], series.scap_mw[p2]),
    }
}

/// Renders Figure 3 (two ASCII IR-drop maps + worst drops).
pub fn render_fig3(study: &CaseStudy, f: &Fig3) -> String {
    let vdd = study.design.netlist.library.vdd;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: VDD IR-drop maps ('#' = >10 % VDD). P1 = pattern #{} (SCAP {:.1} mW), \
         P2 = pattern #{} (SCAP {:.1} mW)",
        f.p1_index, f.scap_mw.0, f.p2_index, f.scap_mw.1
    );
    let _ = writeln!(
        out,
        "  P1 worst avg IR-drop: {:.3} V | P2 worst avg IR-drop: {:.3} V",
        f.p1_map.worst_drop_vdd(),
        f.p2_map.worst_drop_vdd()
    );
    let a = f.p1_map.render_vdd_map(vdd);
    let b = f.p2_map.render_vdd_map(vdd);
    for (la, lb) in a.lines().zip(b.lines()) {
        let _ = writeln!(out, "  {la}   {lb}");
    }
    out
}

// ---------------------------------------------------------------------
// Figure 4: coverage curves
// ---------------------------------------------------------------------

/// Renders the two coverage curves of Figure 4, down-sampled.
pub fn render_fig4(conventional: &FlowResult, noise_aware: &FlowResult) -> String {
    let mut out = String::from("Figure 4: Test coverage vs pattern count\n");
    let total = conventional.grade.total_faults.max(1);
    let _ = writeln!(
        out,
        "  conventional: {} patterns -> {:.2} % | noise-aware: {} patterns -> {:.2} % ({:+.1} % patterns)",
        conventional.patterns.len(),
        100.0 * conventional.fault_coverage(),
        noise_aware.patterns.len(),
        100.0 * noise_aware.fault_coverage(),
        100.0
            * (noise_aware.patterns.len() as f64 - conventional.patterns.len() as f64)
            / conventional.patterns.len().max(1) as f64,
    );
    let _ = writeln!(out, "  patterns  conventional  noise-aware");
    let max_len = conventional
        .grade
        .curve
        .len()
        .max(noise_aware.grade.curve.len());
    let samples = 12usize.min(max_len.max(1));
    for k in 1..=samples {
        let p = k * max_len / samples;
        let at = |c: &[(usize, usize)]| {
            c.iter()
                .take_while(|&&(pp, _)| pp <= p)
                .last()
                .map(|&(_, d)| d)
                .unwrap_or(0)
        };
        let _ = writeln!(
            out,
            "  {p:>8}  {:>11.2}%  {:>10.2}%",
            100.0 * at(&conventional.grade.curve) as f64 / total as f64,
            100.0 * at(&noise_aware.grade.curve) as f64 / total as f64
        );
    }
    out
}

// ---------------------------------------------------------------------
// Figure 7: endpoint delays with and without IR-drop scaling
// ---------------------------------------------------------------------

/// Figure 7 data: per-endpoint delays under nominal and IR-drop-scaled
/// timing for one pattern.
#[derive(Debug)]
pub struct Fig7 {
    /// The analyzed pattern's index in the noise-aware set.
    pub pattern_index: usize,
    /// `(endpoint, nominal delay ps, scaled delay ps)` per active-domain
    /// flop.
    pub endpoints: Vec<(scap_netlist::FlopId, f64, f64)>,
}

impl Fig7 {
    /// Endpoints whose delay grew by more than `pct` percent ("Region 1").
    pub fn region1(&self, pct: f64) -> usize {
        self.endpoints
            .iter()
            .filter(|(_, n, s)| *n > 0.0 && (s - n) / n * 100.0 > pct)
            .count()
    }

    /// Endpoints whose delay *shrank* (clock-path slow-down, "Region 2").
    pub fn region2(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|(_, n, s)| *n > 0.0 && s < n)
            .count()
    }

    /// Largest relative increase, %.
    pub fn max_increase_pct(&self) -> f64 {
        self.endpoints
            .iter()
            .filter(|(_, n, _)| *n > 0.0)
            .map(|(_, n, s)| (s - n) / n * 100.0)
            .fold(0.0, f64::max)
    }
}

/// Runs Figure 7 on a step-3 (B5-heavy) pattern with SCAP below the
/// threshold — the pattern class the paper picks.
pub fn fig7(study: &CaseStudy, noise_aware: &FlowResult) -> Fig7 {
    let series = fig6(study, noise_aware);
    let step3 = noise_aware.steps.last().map(|&(_, i)| i).unwrap_or(0);
    // Highest-SCAP pattern of step 3 that stays below the threshold;
    // fall back to the overall below-threshold max.
    let candidates = |lo: usize| {
        series.scap_mw[lo..]
            .iter()
            .enumerate()
            .filter(|(_, &s)| s <= series.threshold_mw)
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(i, _)| i + lo)
    };
    let idx = candidates(step3).or_else(|| candidates(0)).unwrap_or(0);
    let analyzer = PatternAnalyzer::new(study);
    let (nominal, scaled) = analyzer.endpoint_delays_scaled(&noise_aware.patterns.filled[idx]);
    let endpoints = nominal
        .delay_ps
        .iter()
        .zip(&scaled.delay_ps)
        .map(|(&(f, n), &(f2, s))| {
            debug_assert_eq!(f, f2);
            (f, n, s)
        })
        .collect();
    Fig7 {
        pattern_index: idx,
        endpoints,
    }
}

/// Renders Figure 7 as a summary plus a histogram of relative deltas.
pub fn render_fig7(f: &Fig7) -> String {
    let mut out = String::new();
    let active = f.endpoints.iter().filter(|(_, n, _)| *n > 0.0).count();
    let _ = writeln!(
        out,
        "Figure 7: endpoint delays, nominal vs IR-drop-scaled (pattern #{})",
        f.pattern_index
    );
    let _ = writeln!(
        out,
        "  {} endpoints, {} active | Region 1 (slower by >5 %): {} | Region 2 (faster): {} | max increase {:.1} %",
        f.endpoints.len(),
        active,
        f.region1(5.0),
        f.region2(),
        f.max_increase_pct()
    );
    // Histogram of deltas.
    let mut bins = [0usize; 9];
    let labels = [
        "<-5%", "-5..0", "0", "0..5", "5..10", "10..15", "15..20", "20..30", ">30%",
    ];
    for (_, n, s) in &f.endpoints {
        if *n <= 0.0 {
            continue;
        }
        let d = (s - n) / n * 100.0;
        let b = if d < -5.0 {
            0
        } else if d < 0.0 {
            1
        } else if d == 0.0 {
            2
        } else if d < 5.0 {
            3
        } else if d < 10.0 {
            4
        } else if d < 15.0 {
            5
        } else if d < 20.0 {
            6
        } else if d <= 30.0 {
            7
        } else {
            8
        };
        bins[b] += 1;
    }
    for (label, count) in labels.iter().zip(bins) {
        let _ = writeln!(out, "  {label:>7}: {count}");
    }
    out
}

// ---------------------------------------------------------------------
// Corner signoff vs IR-drop-aware timing (paper §3.2's criticism)
// ---------------------------------------------------------------------

/// Per-endpoint comparison of three timing views of the same pattern.
#[derive(Debug)]
pub struct CornerComparison {
    /// `(endpoint, nominal, worst-corner, IR-drop-scaled)` delays, ps.
    pub endpoints: Vec<(scap_netlist::FlopId, f64, f64, f64)>,
}

impl CornerComparison {
    /// Active endpoints where the uniform worst corner *over*-estimates
    /// the IR-aware delay (pessimistic signoff).
    pub fn pessimistic(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|(_, n, c, ir)| *n > 0.0 && c > ir)
            .count()
    }

    /// Active endpoints where the worst corner *under*-estimates the
    /// IR-aware delay (optimistic signoff — the dangerous case).
    pub fn optimistic(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|(_, n, c, ir)| *n > 0.0 && ir > c)
            .count()
    }
}

/// Compares worst-corner signoff against IR-drop-aware re-simulation on a
/// hot pattern — the paper's §3.2 point that corner signoff "is either
/// over optimistic or pessimistic as we apply the corner conditions to
/// all the portions of the design".
pub fn corner_comparison(study: &CaseStudy, flow: &FlowResult) -> CornerComparison {
    use scap_timing::scaling::{at_corner, Corner};
    let analyzer = PatternAnalyzer::new(study);
    // Hot pattern: the one Table 4 would pick.
    let profile = analyzer.power_profile(&flow.patterns);
    let idx = argmax(profile.iter().map(|p| p.chip_scap_vdd_mw()));
    let filled = &flow.patterns.filled[idx];
    let nominal = analyzer.endpoint_delays(filled);
    let corner_ann = at_corner(&study.annotation, Corner::Worst);
    let f = Corner::Worst.delay_factor() - 1.0;
    let corner_arrivals = study.clock_tree.arrivals_with_drop(|_| f, 1.0);
    let corner = analyzer.endpoint_delays_with(filled, &corner_ann, &corner_arrivals);
    let (_, ir) = analyzer.endpoint_delays_scaled(filled);
    let endpoints = nominal
        .delay_ps
        .iter()
        .zip(&corner.delay_ps)
        .zip(&ir.delay_ps)
        .map(|((&(fl, n), &(_, c)), &(_, i))| (fl, n, c, i))
        .collect();
    CornerComparison { endpoints }
}

fn argmax(values: impl Iterator<Item = f64>) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::MIN;
    for (i, v) in values.enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows;

    #[test]
    fn tables_1_2_render() {
        let s = CaseStudy::small();
        let r = table1(&s);
        let t1 = render_table1(&r);
        assert!(t1.contains("Clock Domains"));
        let t2 = render_table2(&r);
        assert!(t2.contains("clka"));
    }

    #[test]
    fn table3_halving_window_doubles_power() {
        let s = CaseStudy::small();
        let t = table3(&s);
        for (c1, c2) in t.case1.blocks.iter().zip(&t.case2.blocks) {
            if c1.avg_power_mw > 0.0 {
                let r = c2.avg_power_mw / c1.avg_power_mw;
                assert!((r - 2.0).abs() < 1e-6, "{r}");
            }
        }
        let rendered = render_table3(&s, &t);
        assert!(rendered.contains("Chip"));
        // B5 consumes the most power among blocks in Case 2.
        let b5 = s.design.block_named("B5").unwrap().index();
        for (i, b) in t.case2.blocks.iter().enumerate() {
            if i != b5 {
                assert!(
                    t.case2.blocks[b5].avg_power_mw >= b.avg_power_mw,
                    "B5 must dominate block power"
                );
            }
        }
    }

    #[test]
    fn thresholds_are_positive() {
        let s = CaseStudy::small();
        for t in scap_thresholds(&s) {
            assert!(t > 0.0);
        }
    }

    #[test]
    fn fig2_fig4_table4_pipeline() {
        let (s, conv, na) = flows::tests::fixture();
        let f2 = fig2(s, conv);
        let f6 = fig6(s, na);
        // The headline result: the noise-aware set has a (much) smaller
        // fraction of patterns above the B5 SCAP threshold.
        assert!(
            f6.fraction_above() <= f2.fraction_above(),
            "noise-aware {:.3} vs conventional {:.3}",
            f6.fraction_above(),
            f2.fraction_above()
        );
        let t4 = table4(s, conv);
        assert!(t4.scap.0 >= t4.cap.0, "SCAP power >= CAP power");
        assert!(t4.scap.2 >= t4.cap.2, "SCAP drop >= CAP drop");
        assert!(!render_table4(&t4).is_empty());
        assert!(!render_fig4(conv, na).is_empty());
        assert!(!render_scap_series("fig2", &f2).is_empty());
    }

    #[test]
    fn fig3_p1_drops_more_than_p2() {
        let (s, conv, _) = flows::tests::fixture();
        let f3 = fig3(s, conv);
        assert!(f3.p1_map.worst_drop_vdd() >= f3.p2_map.worst_drop_vdd());
        assert!(!render_fig3(s, &f3).is_empty());
    }

    #[test]
    fn corner_signoff_is_mostly_pessimistic_sometimes_optimistic() {
        let (s, conv, _) = flows::tests::fixture();
        let cmp = corner_comparison(s, conv);
        let active = cmp.endpoints.iter().filter(|(_, n, _, _)| *n > 0.0).count();
        assert!(active > 0);
        // The uniform +25 % corner exceeds the IR-aware delay on most
        // endpoints (only the hot cones see comparable droop slow-down).
        assert!(
            cmp.pessimistic() > cmp.optimistic(),
            "pessimistic {} vs optimistic {}",
            cmp.pessimistic(),
            cmp.optimistic()
        );
    }

    #[test]
    fn fig7_has_active_endpoints() {
        let (s, _, na) = flows::tests::fixture();
        let f7 = fig7(s, na);
        let active = f7.endpoints.iter().filter(|(_, n, _)| *n > 0.0).count();
        assert!(active > 0, "the chosen pattern must exercise endpoints");
        assert!(!render_fig7(&f7).is_empty());
    }
}
