//! Small-delay defects and faster-than-at-speed capture.
//!
//! The paper's STW observation comes from the authors' companion work on
//! faster-than-at-speed testing under IR-drop (its reference [20]): gross
//! transition faults are caught at the functional period, but a *small*
//! delay defect of size δ on a path with slack > δ escapes — unless the
//! capture edge is moved in. This module computes, per fault, the largest
//! detection arrival any pattern achieves (the longest sensitized path
//! through the fault that actually reaches a capture flop), from which
//! small-delay-defect coverage at any capture period follows; and the
//! *safe* faster-than-at-speed period of each pattern, with and without
//! IR-drop-aware timing — over-clocking past the IR-aware bound would
//! fail good silicon, which is precisely the paper's warning.

use crate::{CaseStudy, PatternAnalyzer};
use scap_dft::{PatternBatch, PatternSet};
use scap_sim::{FaultList, PropagationScratch, TransitionFaultSim};

/// Per-fault detection-arrival summary over a pattern set.
#[derive(Clone, Debug)]
pub struct SddProfile {
    /// For each fault: the latest arrival (ps) at an observing capture
    /// point over all detecting patterns, or `None` if undetected.
    pub detection_arrival_ps: Vec<Option<f64>>,
    /// Flop setup time used for slack math, ps.
    pub setup_ps: f64,
}

impl SddProfile {
    /// Fraction of *detected* faults whose small-delay defect of size
    /// `defect_ps` would be caught with a capture period of `period_ps`:
    /// the defect is exposed iff `arrival + δ` crosses the capture edge.
    pub fn sdd_coverage(&self, defect_ps: f64, period_ps: f64) -> f64 {
        let detected: Vec<f64> = self
            .detection_arrival_ps
            .iter()
            .flatten()
            .copied()
            .collect();
        if detected.is_empty() {
            return 0.0;
        }
        let catch = detected
            .iter()
            .filter(|&&t| t + defect_ps > period_ps - self.setup_ps)
            .count();
        catch as f64 / detected.len() as f64
    }

    /// The smallest defect (ps) detectable on at least `fraction` of the
    /// detected faults at `period_ps`.
    pub fn detectable_defect_ps(&self, fraction: f64, period_ps: f64) -> f64 {
        let mut slacks: Vec<f64> = self
            .detection_arrival_ps
            .iter()
            .flatten()
            .map(|&t| (period_ps - self.setup_ps - t).max(0.0))
            .collect();
        if slacks.is_empty() {
            return f64::INFINITY;
        }
        slacks.sort_by(|a, b| a.partial_cmp(b).expect("slacks are finite"));
        let k = ((slacks.len() as f64 * fraction).ceil() as usize).clamp(1, slacks.len());
        slacks[k - 1]
    }
}

/// Small-delay-defect analysis bound to a case study.
#[derive(Debug)]
pub struct SddAnalysis<'a> {
    study: &'a CaseStudy,
    analyzer: PatternAnalyzer<'a>,
    sim: TransitionFaultSim<'a>,
}

impl<'a> SddAnalysis<'a> {
    /// Builds the analysis for the dominant clock domain.
    pub fn new(study: &'a CaseStudy) -> Self {
        SddAnalysis {
            study,
            analyzer: PatternAnalyzer::new(study),
            sim: TransitionFaultSim::new(&study.design.netlist, study.clka()),
        }
    }

    /// Profiles detection arrivals of `faults` over `patterns`.
    ///
    /// Cost is one fault-signature pass per pattern; restrict the pattern
    /// set (e.g. the compacted set) for large designs.
    pub fn profile(&self, faults: &FaultList, patterns: &PatternSet) -> SddProfile {
        let n = &self.study.design.netlist;
        let mut arrival: Vec<Option<f64>> = vec![None; faults.faults().len()];
        let mut scratch = PropagationScratch::new(n.num_nets());
        for (p, filled) in patterns.filled.iter().enumerate() {
            let _ = p;
            let batch = PatternBatch::pack(std::slice::from_ref(filled));
            let frames = self.sim.frames(&batch.load_words, &batch.pi_words);
            let trace = self.analyzer.trace(filled);
            for (fi, &fault) in faults.faults().iter().enumerate() {
                let signature = self.sim.signature_one(&frames, 1, fault, &mut scratch);
                let mut t_best: Option<f64> = None;
                for (net, mask) in signature {
                    if mask & 1 == 1 {
                        if let Some(t) = trace.last_change_ps(net) {
                            t_best = Some(t_best.map_or(t, |b: f64| b.max(t)));
                        }
                    }
                }
                if let Some(t) = t_best {
                    arrival[fi] = Some(arrival[fi].map_or(t, |b: f64| b.max(t)));
                }
            }
        }
        SddProfile {
            detection_arrival_ps: arrival,
            setup_ps: n.library.flop().setup_ps,
        }
    }

    /// The fastest safe capture period of one pattern: the latest endpoint
    /// arrival plus setup. With `ir_aware`, delays and the clock tree are
    /// first scaled by the pattern's own IR-drop — the paper's point is
    /// that this bound is *longer* than the nominal one, so over-clocking
    /// schedules must use it.
    pub fn safe_capture_period_ps(&self, filled: &scap_dft::FilledPattern, ir_aware: bool) -> f64 {
        let report = if ir_aware {
            self.analyzer.endpoint_delays_scaled(filled).1
        } else {
            self.analyzer.endpoint_delays(filled)
        };
        report.max_delay_ps() + self.study.design.netlist.library.flop().setup_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scap_dft::{FillPolicy, TestPattern};

    fn fixture() -> (CaseStudy, FaultList, PatternSet) {
        let study = CaseStudy::new(0.004);
        let n = &study.design.netlist;
        let faults = FaultList::full(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut set = PatternSet::new();
        for _ in 0..24 {
            let p = TestPattern::unspecified(n);
            let f = p.fill(n, FillPolicy::Random, &mut rng);
            set.push(p, f);
        }
        (study, faults, set)
    }

    #[test]
    fn coverage_grows_with_defect_size_and_shrinking_period() {
        let (study, faults, set) = fixture();
        let sdd = SddAnalysis::new(&study);
        let profile = sdd.profile(&faults, &set);
        let period = study.period_ps();
        let c_small = profile.sdd_coverage(500.0, period);
        let c_large = profile.sdd_coverage(8_000.0, period);
        assert!(c_large >= c_small, "{c_large} vs {c_small}");
        // Faster capture exposes the same defect on more paths.
        let c_fast = profile.sdd_coverage(500.0, period * 0.6);
        assert!(c_fast >= c_small, "{c_fast} vs {c_small}");
        // Gross defects at the functional period are fully caught.
        let c_gross = profile.sdd_coverage(period, period);
        assert!(c_gross > 0.99, "{c_gross}");
    }

    #[test]
    fn detectable_defect_shrinks_with_faster_capture() {
        let (study, faults, set) = fixture();
        let sdd = SddAnalysis::new(&study);
        let profile = sdd.profile(&faults, &set);
        let at_speed = profile.detectable_defect_ps(0.9, study.period_ps());
        let faster = profile.detectable_defect_ps(0.9, study.period_ps() * 0.7);
        assert!(faster < at_speed, "{faster} vs {at_speed}");
        assert!(at_speed.is_finite());
    }

    #[test]
    fn ir_aware_safe_period_is_longer() {
        let (study, _, set) = fixture();
        let sdd = SddAnalysis::new(&study);
        // Use the highest-activity pattern to see a meaningful droop.
        let analyzer = PatternAnalyzer::new(&study);
        let profile = analyzer.power_profile(&set);
        let hot = profile
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.chip_scap_vdd_mw()
                    .partial_cmp(&b.chip_scap_vdd_mw())
                    .expect("finite")
            })
            .map(|(i, _)| i)
            .expect("nonempty");
        let nominal = sdd.safe_capture_period_ps(&set.filled[hot], false);
        let ir = sdd.safe_capture_period_ps(&set.filled[hot], true);
        assert!(
            ir > nominal,
            "IR-aware bound {ir} must exceed nominal {nominal}"
        );
        // Both are meaningful fractions of the functional period.
        assert!(nominal > 0.2 * study.period_ps());
        assert!(ir < 1.5 * study.period_ps());
    }
}
