//! The bundled case study: design + timing + clock tree + power grid.

use scap_netlist::ClockId;
use scap_power::GridConfig;
use scap_soc::{SocConfig, SocDesign};
use scap_timing::{ClockArrivals, ClockTree, DelayAnnotation};

/// A generated SOC together with everything the experiments need:
/// extracted delay annotation, the dominant domain's clock tree and a
/// power-grid configuration calibrated so that IR-drop magnitudes land in
/// the paper's range at any design scale.
#[derive(Debug)]
pub struct CaseStudy {
    /// The generated design.
    pub design: SocDesign,
    /// Extracted per-instance delays and net capacitances.
    pub annotation: DelayAnnotation,
    /// Clock tree of the dominant (`clka`) domain.
    pub clock_tree: ClockTree,
    /// Nominal clock arrivals of the dominant domain.
    pub arrivals: ClockArrivals,
    /// Power-grid configuration shared by all analyses.
    pub grid: GridConfig,
}

impl CaseStudy {
    /// Builds a case study at the given design scale (1.0 = paper size).
    pub fn new(scale: f64) -> Self {
        Self::with_config(SocConfig::turbo_eagle(scale))
    }

    /// Builds a case study at `scale` with an explicit generator seed
    /// (the Turbo-Eagle preset otherwise). Different seeds yield
    /// structurally different — but individually deterministic —
    /// designs; the serving layer keys its design cache on
    /// `(scale, seed)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1.0` (validate first when the inputs
    /// come from a request).
    pub fn with_seed(scale: f64, seed: u64) -> Self {
        let mut config = SocConfig::turbo_eagle(scale);
        config.seed = seed;
        Self::with_config(config)
    }

    /// The generator seed of the Turbo-Eagle preset (what
    /// [`CaseStudy::new`] uses).
    pub fn default_seed() -> u64 {
        SocConfig::turbo_eagle(1.0).seed
    }

    /// Builds a case study from an explicit SOC configuration.
    pub fn with_config(config: SocConfig) -> Self {
        let design = SocDesign::generate(&config);
        let annotation = DelayAnnotation::extract(&design.netlist, &design.floorplan);
        let clka = design.dominant_clock();
        let clock_tree = ClockTree::synthesize(&design.netlist, &design.floorplan, clka);
        let arrivals = clock_tree.arrivals();
        let grid = Self::calibrated_grid(config.scale);
        CaseStudy {
            design,
            annotation,
            clock_tree,
            arrivals,
            grid,
        }
    }

    /// A small instance suitable for tests and doc examples (seconds to
    /// run full flows on, ~120 flops).
    pub fn small() -> Self {
        Self::new(0.005)
    }

    /// The default experiment size (a couple of thousand flops; the full
    /// evaluation completes in minutes).
    pub fn default_experiment() -> Self {
        Self::new(0.02)
    }

    /// The dominant clock domain (`clka`).
    pub fn clka(&self) -> ClockId {
        self.design.dominant_clock()
    }

    /// Tester cycle of the dominant domain, ps (20 ns in the paper).
    pub fn period_ps(&self) -> f64 {
        self.design.netlist.clock(self.clka()).period_ps()
    }

    /// Grid calibration: the mesh branch resistance scales inversely with
    /// design scale so that the *voltage* magnitudes stay in the paper's
    /// range (tenths of a volt for hot patterns on a 1.8 V rail) — a
    /// smaller synthetic chip draws proportionally less current, and a
    /// real smaller chip would also have a proportionally thinner grid.
    fn calibrated_grid(scale: f64) -> GridConfig {
        GridConfig {
            nodes_per_side: 24,
            // ~6 Ω per mesh branch at full scale; scaled designs draw
            // proportionally less current, so the branch resistance rises
            // to keep hot-pattern drops in the paper's 0.2-0.3 V range.
            branch_resistance_ohm: 6.0 / scale,
            num_pads: 37,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_study_is_consistent() {
        let s = CaseStudy::small();
        assert_eq!(s.annotation.num_gates(), s.design.netlist.num_gates());
        assert_eq!(s.annotation.num_flops(), s.design.netlist.num_flops());
        assert_eq!(s.design.netlist.clock(s.clka()).name, "clka");
        assert!((s.period_ps() - 20_000.0).abs() < 1e-6);
        // Every clka flop has a clock arrival.
        let covered = s.arrivals.iter().count();
        assert_eq!(covered, s.design.netlist.flops_in_clock(s.clka()).count());
    }

    #[test]
    fn grid_resistance_scales_inversely() {
        let a = CaseStudy::calibrated_grid(0.01);
        let b = CaseStudy::calibrated_grid(0.1);
        assert!(a.branch_resistance_ohm > b.branch_resistance_ohm);
        assert_eq!(a.num_pads, 37);
    }
}
