//! Noise-aware static timing analysis over a [`CaseStudy`]: nominal and
//! IR-drop-derated slack, fault risk tiers for ATPG targeting, and the
//! per-pattern timing screen that flags the paper's false failures.
//!
//! The derated pass is pattern-*independent*: it takes each block's
//! worst-case supply droop from the vector-less statistical grid solve
//! (paper Table 3, Case 2 — 30 % toggles over a half-cycle window) and
//! maps it through `scale_factor(ΔV, k)` into per-gate delay scaling, so
//! the slack distribution answers "which paths could noise break" before
//! a single pattern exists. The per-pattern screen
//! ([`TimingScreen::run`]) then replays generated patterns under their
//! *own* dynamic IR-drop and marks any whose derated launch-to-capture
//! delay exceeds the domain period as `timing_invalidated` — the paper's
//! §3.2 false-failure mechanism, complementing the SCAP power screen.

use crate::{CaseStudy, PatternAnalyzer};
use scap_dft::PatternSet;
use scap_exec::Executor;
use scap_netlist::Netlist;
use scap_power::{StatisticalAnalysis, StatisticalReport};
use scap_sim::FaultList;
use scap_timing::{scaling, RiskTier, SlackSta};

/// The paper's pessimistic statistical toggle probability (Table 3).
const TOGGLE_PROBABILITY: f64 = 0.30;

/// Nominal + worst-case-derated STA of one case study.
///
/// # Example
///
/// ```
/// use scap::{sta::NoiseAwareSta, CaseStudy};
///
/// let study = CaseStudy::small();
/// let sta = NoiseAwareSta::worst_case(&study);
/// // Derating can only shrink slack.
/// assert!(sta.derated.worst_slack_ps() <= sta.nominal.worst_slack_ps());
/// ```
#[derive(Debug)]
pub struct NoiseAwareSta {
    /// Slack analysis under nominal (extracted) delays.
    pub nominal: SlackSta,
    /// Slack analysis under worst-case-droop-derated delays.
    pub derated: SlackSta,
    /// The statistical droop solve the derating came from.
    pub statistical: StatisticalReport,
    /// The delay-scaling coefficient used, V⁻¹ (library `k_volt` times
    /// the caller's derating factor).
    pub k_volt: f64,
}

impl NoiseAwareSta {
    /// Runs nominal + derated STA with the library's calibrated `k_volt`
    /// (0.9: a 0.1 V droop slows a cell 9 %).
    pub fn worst_case(study: &CaseStudy) -> Self {
        Self::with_derate(study, 1.0)
    }

    /// Runs nominal + derated STA with the library `k_volt` scaled by
    /// `k_factor` — `k_factor > 1` models a supply margined worse than
    /// the calibration (the "aggressive derating" sensitivity knob).
    pub fn with_derate(study: &CaseStudy, k_factor: f64) -> Self {
        let n = &study.design.netlist;
        scap_obs::counter!("sta.runs").incr();
        let nominal = SlackSta::run(n, &study.annotation, &study.arrivals);
        scap_obs::counter!("sta.endpoints").add(nominal.endpoints().len() as u64);
        scap_obs::counter!("sta.negative_slack_endpoints").add(
            nominal
                .endpoints()
                .iter()
                .filter(|e| e.slack_ps() < 0.0)
                .count() as u64,
        );
        // Worst-case regional droop: the statistical solve's per-block
        // worst VDD drop, applied to every cell of the block (the paper's
        // region-level view of the grid).
        let stat = StatisticalAnalysis::new(n, &study.design.floorplan, study.grid);
        let statistical = stat.run(
            &study.annotation,
            TOGGLE_PROBABILITY,
            study.period_ps() / 2.0,
        );
        let gate_drop: Vec<f64> = n
            .gates()
            .iter()
            .map(|g| statistical.blocks[g.block.index()].worst_drop_vdd_v)
            .collect();
        let flop_drop: Vec<f64> = n
            .flops()
            .iter()
            .map(|f| statistical.blocks[f.block.index()].worst_drop_vdd_v)
            .collect();
        let k_volt = k_factor * n.library.k_volt_per_volt;
        let scaled = scaling::scale_annotation(&study.annotation, &gate_drop, &flop_drop, k_volt);
        // The clock tree spans the die; derate it by the chip-worst droop
        // (conservative, and launch/capture shift together).
        let chip_drop = statistical.chip.worst_drop_vdd_v;
        let derated_arrivals = study.clock_tree.arrivals_with_drop(|_| chip_drop, k_volt);
        let derated = SlackSta::run(n, &scaled, &derated_arrivals);
        scap_obs::counter!("sta.derated_runs").incr();
        NoiseAwareSta {
            nominal,
            derated,
            statistical,
            k_volt,
        }
    }

    /// Risk tier per fault: the tier of the worst *derated* path through
    /// the fault-site net.
    pub fn fault_risk_tiers(&self, netlist: &Netlist, faults: &FaultList) -> Vec<RiskTier> {
        faults
            .faults()
            .iter()
            .map(|f| self.derated.risk_tier(f.site.net(netlist)))
            .collect()
    }

    /// Fault-targeting order for
    /// [`Generator::run_with_status_in_order`](scap_tgen::Generator::run_with_status_in_order):
    /// most-at-risk tier first, original index within a tier (a stable
    /// sort, so the order is deterministic and degenerates to the
    /// identity when every fault shares a tier).
    pub fn fault_priority_order(&self, netlist: &Netlist, faults: &FaultList) -> Vec<usize> {
        let tiers = self.fault_risk_tiers(netlist, faults);
        let mut order: Vec<usize> = (0..tiers.len()).collect();
        order.sort_by_key(|&i| tiers[i]);
        // Dynamic name per tier, so the per-callsite `counter!` interning
        // macro would pin all four tiers to one counter — intern directly.
        for tier in RiskTier::ALL {
            let n = tiers.iter().filter(|&&t| t == tier).count() as u64;
            scap_obs::counter(match tier {
                RiskTier::Critical => "sta.risk.critical",
                RiskTier::High => "sta.risk.high",
                RiskTier::Moderate => "sta.risk.moderate",
                RiskTier::Low => "sta.risk.low",
            })
            .add(n);
        }
        order
    }

    /// `(tier, fault count)` histogram of the fault universe.
    pub fn tier_histogram(&self, netlist: &Netlist, faults: &FaultList) -> Vec<(RiskTier, usize)> {
        let tiers = self.fault_risk_tiers(netlist, faults);
        RiskTier::ALL
            .iter()
            .map(|&t| (t, tiers.iter().filter(|&&x| x == t).count()))
            .collect()
    }

    /// Per-endpoint `(flop, nominal slack, derated slack)` rows, in
    /// endpoint order — the data behind the CLI table and the
    /// evaluation's slack histogram.
    pub fn endpoint_slacks(&self) -> Vec<(scap_netlist::FlopId, f64, f64)> {
        self.nominal
            .endpoints()
            .iter()
            .zip(self.derated.endpoints())
            .map(|(n, d)| {
                debug_assert_eq!(n.flop, d.flop);
                (n.flop, n.slack_ps(), d.slack_ps())
            })
            .collect()
    }
}

/// Per-pattern timing screen: which generated patterns become false
/// failures once their own dynamic IR-drop derates the cell delays.
#[derive(Clone, Debug)]
pub struct TimingScreen {
    /// Worst derated endpoint delay per pattern, ps (relative to the
    /// capture clock arrival).
    pub max_derated_delay_ps: Vec<f64>,
    /// `true` where the derated delay exceeds the capture budget.
    pub invalidated: Vec<bool>,
    /// The budget: domain period minus flop setup, ps.
    pub budget_ps: f64,
    /// The delay-scaling coefficient used, V⁻¹.
    pub k_volt: f64,
}

impl TimingScreen {
    /// Screens every pattern of a set: re-simulates each under its own
    /// IR-drop-scaled delays (`k_factor` times the library `k_volt`) and
    /// flags patterns whose derated launch-to-capture delay exceeds
    /// `period − setup`. Patterns are screened in parallel; results are
    /// order-stable and bit-identical at every thread count.
    pub fn run(study: &CaseStudy, patterns: &PatternSet, k_factor: f64) -> Self {
        let analyzer = PatternAnalyzer::new(study);
        let n = &study.design.netlist;
        let k_volt = k_factor * n.library.k_volt_per_volt;
        let budget_ps = study.period_ps() - n.library.flop().setup_ps;
        let max_derated_delay_ps: Vec<f64> =
            Executor::new().parallel_map(&patterns.filled, |filled| {
                let (_, scaled) = analyzer.endpoint_delays_scaled_k(filled, k_volt);
                scaled.max_delay_ps()
            });
        let invalidated: Vec<bool> = max_derated_delay_ps
            .iter()
            .map(|&d| d > budget_ps)
            .collect();
        scap_obs::counter!("sta.screen.patterns").add(invalidated.len() as u64);
        scap_obs::counter!("sta.screen.invalidated")
            .add(invalidated.iter().filter(|&&b| b).count() as u64);
        TimingScreen {
            max_derated_delay_ps,
            invalidated,
            budget_ps,
            k_volt,
        }
    }

    /// Number of timing-invalidated patterns.
    pub fn invalidated_count(&self) -> usize {
        self.invalidated.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows;
    use scap_tgen::FaultStatus;
    use std::sync::OnceLock;

    fn study() -> &'static CaseStudy {
        static S: OnceLock<CaseStudy> = OnceLock::new();
        S.get_or_init(CaseStudy::small)
    }

    #[test]
    fn derating_slows_arrivals_and_shrinks_worst_slack() {
        let sta = NoiseAwareSta::worst_case(study());
        assert!(sta.statistical.chip.worst_drop_vdd_v > 0.0);
        let rows = sta.endpoint_slacks();
        assert!(!rows.is_empty());
        // Data arrivals only grow under derating (delays scale up, the
        // launch clock shifts later). Slack at a *short* endpoint can
        // grow — the capture clock shifts later too — but the worst
        // slack over the domain must shrink.
        for (n, d) in sta.nominal.endpoints().iter().zip(sta.derated.endpoints()) {
            assert!(
                d.data_arrival_ps >= n.data_arrival_ps - 1e-9,
                "{:?}",
                n.flop
            );
        }
        assert!(sta.derated.critical_path_ps() > sta.nominal.critical_path_ps());
        assert!(sta.derated.worst_slack_ps() < sta.nominal.worst_slack_ps());
    }

    #[test]
    fn aggressive_derate_is_monotone() {
        let mild = NoiseAwareSta::with_derate(study(), 1.0);
        let hot = NoiseAwareSta::with_derate(study(), 8.0);
        assert!(hot.derated.critical_path_ps() > mild.derated.critical_path_ps());
        assert!(hot.derated.worst_slack_ps() < mild.derated.worst_slack_ps());
    }

    #[test]
    fn priority_order_is_a_permutation_front_loading_risk() {
        let s = study();
        let sta = NoiseAwareSta::worst_case(s);
        let faults = FaultList::full(&s.design.netlist);
        let order = sta.fault_priority_order(&s.design.netlist, &faults);
        assert_eq!(order.len(), faults.faults().len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &v)| i == v));
        // Tiers along the order are non-decreasing in risk rank.
        let tiers = sta.fault_risk_tiers(&s.design.netlist, &faults);
        for w in order.windows(2) {
            assert!(tiers[w[0]] <= tiers[w[1]]);
        }
        let hist = sta.tier_histogram(&s.design.netlist, &faults);
        assert_eq!(
            hist.iter().map(|&(_, c)| c).sum::<usize>(),
            faults.faults().len()
        );
    }

    #[test]
    fn prioritized_run_detects_comparable_coverage() {
        let s = study();
        let sta = NoiseAwareSta::worst_case(s);
        let n = &s.design.netlist;
        let faults = FaultList::full(n);
        let config = flows::flow_atpg_config(scap_dft::FillPolicy::Zero);
        let generator = scap_tgen::Generator::new(n, s.clka(), config);
        let order = sta.fault_priority_order(n, &faults);
        let base = generator.run(&faults);
        let prio = generator.run_with_status_in_order(
            &faults,
            vec![FaultStatus::Undetected; faults.faults().len()],
            &order,
        );
        // Same engine, same budget: coverage must not collapse just
        // because targeting order changed.
        assert!(prio.fault_coverage() >= base.fault_coverage() - 1.0);
    }

    #[test]
    fn identity_order_is_bit_identical_to_run() {
        let s = study();
        let n = &s.design.netlist;
        let faults = FaultList::full(n);
        let config = flows::flow_atpg_config(scap_dft::FillPolicy::Zero);
        let generator = scap_tgen::Generator::new(n, s.clka(), config);
        let base = generator.run(&faults);
        let order: Vec<usize> = (0..faults.faults().len()).collect();
        let same = generator.run_with_status_in_order(
            &faults,
            vec![FaultStatus::Undetected; faults.faults().len()],
            &order,
        );
        assert_eq!(base.patterns.filled, same.patterns.filled);
        assert_eq!(base.status, same.status);
    }

    #[test]
    fn aggressive_screen_invalidates_more() {
        let s = study();
        let flow = flows::conventional(s);
        let mild = TimingScreen::run(s, &flow.patterns, 1.0);
        let hot = TimingScreen::run(s, &flow.patterns, 40.0);
        assert_eq!(mild.invalidated.len(), flow.patterns.len());
        assert!(hot.invalidated_count() >= mild.invalidated_count());
        assert!(mild.budget_ps > 0.0);
    }
}
