//! Post-hoc pattern grading: exact coverage curves by fault simulation.
//!
//! Both flows are graded against the *same* full fault universe so their
//! coverage curves (the paper's Figure 4) are directly comparable, and
//! fortuitous detection across staged steps is credited correctly.

use scap_dft::PatternSet;
use scap_exec::{shard_ranges, Executor};
use scap_netlist::{ClockId, Netlist};
use scap_sim::{CollapseMap, FaultList, PatternBlock, PropagationScratch, TransitionFaultSim};

/// Result of grading a pattern set.
#[derive(Clone, Debug)]
pub struct GradeResult {
    /// First detecting pattern index per fault (`None` = undetected).
    pub first_detection: Vec<Option<usize>>,
    /// `(patterns applied, cumulative faults detected)` — one point per
    /// pattern.
    pub curve: Vec<(usize, usize)>,
    /// Total faults in the graded universe.
    pub total_faults: usize,
}

impl GradeResult {
    /// Detected fault count.
    pub fn num_detected(&self) -> usize {
        self.first_detection.iter().flatten().count()
    }

    /// Final fault coverage (detected / total).
    pub fn fault_coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 0.0;
        }
        self.num_detected() as f64 / self.total_faults as f64
    }
}

/// Word planes of one batch, transposed once per round.
struct RoundBatch {
    start: usize,
    block: PatternBlock,
}

/// Builds the round's pattern blocks, one batch per worker.
fn round_blocks(
    exec: &Executor,
    sim: &TransitionFaultSim<'_>,
    round: &[(usize, scap_dft::PatternBatch)],
) -> Vec<RoundBatch> {
    scap_obs::counter!("sim.fault_sim_batches").add(round.len() as u64);
    exec.parallel_map(round, |(start, batch)| RoundBatch {
        start: *start,
        block: sim.block_from_words(&batch.load_words, &batch.pi_words, batch.valid_mask),
    })
}

/// Fault-simulates `patterns` in order against `faults` with dropping,
/// recording each fault's first detecting pattern.
///
/// The universe is first collapsed to observable equivalence-class
/// representatives ([`CollapseMap`]); unobservable faults can never
/// detect and a representative's detect mask answers for every class
/// member, so expanding the credit afterwards reproduces the
/// uncollapsed result exactly. Batches are simulated in *rounds* of up
/// to [`Executor::threads`] batches each, with the launch frames of
/// each batch computed once per round. Within a round the
/// remaining-fault list is sharded across workers — each worker
/// propagates its fault shard through every batch of the round — and a
/// fault is credited to its earliest detecting pattern (min-merge).
/// Because a fault's earliest detection is a global property of the
/// pattern set — dropping only skips faults that are already credited —
/// the result is bit-identical for every thread count and shard
/// boundary, and a one-thread executor degenerates to the serial loop.
pub fn grade_patterns(
    netlist: &Netlist,
    active_clock: ClockId,
    faults: &FaultList,
    patterns: &PatternSet,
) -> GradeResult {
    let sim = TransitionFaultSim::new(netlist, active_clock);
    let exec = Executor::new();
    let list = faults.faults();
    let collapse = CollapseMap::build(netlist, faults);
    let members = collapse.members();
    let mut first_detection: Vec<Option<usize>> = vec![None; list.len()];
    let mut detections_at: Vec<usize> = vec![0; patterns.len() + 1];
    // Compacting index list of not-yet-detected representatives; shrunk
    // in place between rounds instead of being rebuilt by an O(faults)
    // scan per round.
    let mut remaining: Vec<u32> = (0..list.len() as u32)
        .filter(|&i| collapse.is_rep(i as usize) && sim.is_observable(list[i as usize]))
        .collect();
    let num_reps = list.len() - collapse.num_collapsed();
    scap_obs::counter!("sim.faults_skipped_unobservable").add((num_reps - remaining.len()) as u64);
    let batches: Vec<_> = patterns.batches().collect();
    let threads = exec.threads().max(1);
    for round in batches.chunks(threads) {
        if remaining.is_empty() {
            break;
        }
        scap_obs::counter!("grade.rounds").incr();
        scap_obs::counter!("grade.fault_sim_targets").add(remaining.len() as u64);
        let blocks = round_blocks(&exec, &sim, round);
        let shards = shard_ranges(remaining.len(), threads);
        scap_obs::counter!("grade.fault_shards").add(shards.len() as u64);
        let credited: Vec<Vec<(u32, u32)>> = exec.parallel_map_with(
            || PropagationScratch::new(netlist.num_nets()),
            &shards,
            |scratch, range| {
                let mut hits = Vec::new();
                let mut checks = 0u64;
                for &fi in &remaining[range.clone()] {
                    let fault = list[fi as usize];
                    let mut best = u32::MAX;
                    for rb in &blocks {
                        checks += 1;
                        let mask = sim.detect_block(&rb.block, fault, scratch);
                        if mask != 0 {
                            best = best.min(rb.start as u32 + mask.trailing_zeros());
                        }
                    }
                    if best != u32::MAX {
                        hits.push((fi, best));
                    }
                }
                scap_obs::counter!("sim.fault_sim_checks").add(checks);
                scap_obs::counter!("sim.fault_detections").add(hits.len() as u64);
                hits
            },
        );
        for hits in &credited {
            for &(fi, p) in hits {
                for &m in &members[fi as usize] {
                    first_detection[m as usize] = Some(p as usize);
                    detections_at[p as usize + 1] += 1;
                }
                scap_obs::counter!("grade.faults_dropped").add(members[fi as usize].len() as u64);
            }
        }
        remaining.retain(|&fi| first_detection[fi as usize].is_none());
    }
    let mut curve = Vec::with_capacity(patterns.len());
    let mut cum = 0usize;
    for p in 0..patterns.len() {
        cum += detections_at[p + 1];
        curve.push((p + 1, cum));
    }
    GradeResult {
        first_detection,
        curve,
        total_faults: list.len(),
    }
}

/// Reverse-order static compaction: fault-simulates the set in reverse
/// and keeps only patterns that detect at least one not-yet-covered
/// fault. A standard ATPG post-pass; typically removes the early patterns
/// whose faults were re-detected fortuitously by later ones.
///
/// Returns the retained pattern indices (ascending) and the compacted
/// set.
pub fn compact_patterns(
    netlist: &Netlist,
    active_clock: ClockId,
    faults: &FaultList,
    patterns: &PatternSet,
) -> (Vec<usize>, PatternSet) {
    let sim = TransitionFaultSim::new(netlist, active_clock);
    let exec = Executor::new();
    let list = faults.faults();
    let collapse = CollapseMap::build(netlist, faults);
    let mut covered = vec![false; list.len()];
    let mut keep = vec![false; patterns.len()];
    // Walk batches from the END of the set in rounds of up to
    // `exec.threads()` batches each, sharding the remaining
    // representatives across workers; a fault is credited to its
    // highest-index detecting pattern (max-merge). A representative's
    // mask answers for the whole equivalence class, and a fault's latest
    // detection is a global property of the set, so the kept-pattern set
    // is bit-identical to the serial uncollapsed reverse walk for every
    // thread count and shard boundary.
    let mut remaining: Vec<u32> = (0..list.len() as u32)
        .filter(|&i| collapse.is_rep(i as usize) && sim.is_observable(list[i as usize]))
        .collect();
    let mut batches: Vec<_> = patterns.batches().collect();
    batches.reverse();
    let threads = exec.threads().max(1);
    for round in batches.chunks(threads) {
        if remaining.is_empty() {
            break;
        }
        scap_obs::counter!("compact.rounds").incr();
        let blocks = round_blocks(&exec, &sim, round);
        let shards = shard_ranges(remaining.len(), threads);
        scap_obs::counter!("grade.fault_shards").add(shards.len() as u64);
        let credited: Vec<Vec<(u32, u32)>> = exec.parallel_map_with(
            || PropagationScratch::new(netlist.num_nets()),
            &shards,
            |scratch, range| {
                let mut hits = Vec::new();
                let mut checks = 0u64;
                for &fi in &remaining[range.clone()] {
                    let fault = list[fi as usize];
                    let mut best: Option<u32> = None;
                    for rb in &blocks {
                        checks += 1;
                        let mask = sim.detect_block(&rb.block, fault, scratch);
                        if mask != 0 {
                            let p = rb.start as u32 + (63 - mask.leading_zeros());
                            best = Some(best.map_or(p, |b| b.max(p)));
                        }
                    }
                    if let Some(p) = best {
                        hits.push((fi, p));
                    }
                }
                scap_obs::counter!("sim.fault_sim_checks").add(checks);
                scap_obs::counter!("sim.fault_detections").add(hits.len() as u64);
                hits
            },
        );
        for hits in &credited {
            for &(fi, p) in hits {
                covered[fi as usize] = true;
                keep[p as usize] = true;
            }
        }
        remaining.retain(|&fi| !covered[fi as usize]);
    }
    let kept: Vec<usize> = keep
        .iter()
        .enumerate()
        .filter(|(_, &k)| k)
        .map(|(i, _)| i)
        .collect();
    scap_obs::counter!("compact.patterns_kept").add(kept.len() as u64);
    scap_obs::counter!("compact.patterns_dropped").add((patterns.len() - kept.len()) as u64);
    let mut compacted = PatternSet {
        fill: patterns.fill,
        ..PatternSet::new()
    };
    for &i in &kept {
        compacted.push(patterns.source[i].clone(), patterns.filled[i].clone());
    }
    (kept, compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_dft::{FillPolicy, PatternSet, TestPattern};
    use scap_soc::{SocConfig, SocDesign};
    use scap_tgen::{AtpgConfig, Generator};

    #[test]
    fn grade_agrees_with_generator_count() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let clka = design.dominant_clock();
        let faults = FaultList::full(n);
        let gen = Generator::new(n, clka, AtpgConfig::default());
        let run = gen.run(&faults);
        let grade = grade_patterns(n, clka, &faults, &run.patterns);
        // Grading the same patterns against the same universe must find at
        // least as many detections as the generator recorded (order of
        // dropping can only help).
        assert!(grade.num_detected() >= run.num_detected());
        // The curve is monotone and ends at the detected count.
        let mut prev = 0;
        for &(_, d) in &grade.curve {
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(prev, grade.num_detected());
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let faults = FaultList::full(n);
        let grade = grade_patterns(n, design.dominant_clock(), &faults, &PatternSet::new());
        assert_eq!(grade.num_detected(), 0);
        assert!(grade.curve.is_empty());
        assert_eq!(grade.fault_coverage(), 0.0);
    }

    #[test]
    fn compaction_preserves_coverage_and_shrinks_the_set() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let clka = design.dominant_clock();
        let faults = FaultList::full(n);
        let gen = Generator::new(n, clka, AtpgConfig::default());
        let run = gen.run(&faults);
        let before = grade_patterns(n, clka, &faults, &run.patterns);
        let (kept, compacted) = compact_patterns(n, clka, &faults, &run.patterns);
        assert!(compacted.len() <= run.patterns.len());
        assert_eq!(kept.len(), compacted.len());
        // Indices ascending and unique.
        for w in kept.windows(2) {
            assert!(w[0] < w[1]);
        }
        let after = grade_patterns(n, clka, &faults, &compacted);
        assert_eq!(
            after.num_detected(),
            before.num_detected(),
            "compaction must not lose coverage"
        );
    }

    #[test]
    fn first_detection_indices_are_in_range() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let clka = design.dominant_clock();
        let faults = FaultList::full(n);
        // A handful of random-fill patterns.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::SeedableRng;
        let mut set = PatternSet::new();
        for _ in 0..10 {
            let p = TestPattern::unspecified(n);
            let f = p.fill(n, FillPolicy::Random, &mut rng);
            set.push(p, f);
        }
        let grade = grade_patterns(n, clka, &faults, &set);
        for d in grade.first_detection.iter().flatten() {
            assert!(*d < set.len());
        }
        assert!(
            grade.num_detected() > 0,
            "random fill should detect something"
        );
    }
}
