//! Post-hoc pattern grading: exact coverage curves by fault simulation.
//!
//! Both flows are graded against the *same* full fault universe so their
//! coverage curves (the paper's Figure 4) are directly comparable, and
//! fortuitous detection across staged steps is credited correctly.

use scap_dft::PatternSet;
use scap_exec::Executor;
use scap_netlist::{ClockId, Netlist};
use scap_sim::{FaultList, PropagationScratch, TransitionFaultSim};

/// Result of grading a pattern set.
#[derive(Clone, Debug)]
pub struct GradeResult {
    /// First detecting pattern index per fault (`None` = undetected).
    pub first_detection: Vec<Option<usize>>,
    /// `(patterns applied, cumulative faults detected)` — one point per
    /// pattern.
    pub curve: Vec<(usize, usize)>,
    /// Total faults in the graded universe.
    pub total_faults: usize,
}

impl GradeResult {
    /// Detected fault count.
    pub fn num_detected(&self) -> usize {
        self.first_detection.iter().flatten().count()
    }

    /// Final fault coverage (detected / total).
    pub fn fault_coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 0.0;
        }
        self.num_detected() as f64 / self.total_faults as f64
    }
}

/// Fault-simulates `patterns` in order against `faults` with dropping,
/// recording each fault's first detecting pattern.
///
/// Batches are simulated in *rounds* of up to [`Executor::threads`]
/// batches each; fault dropping happens between rounds, and within a
/// round each fault is credited to its earliest detecting pattern
/// (min-merge). Because the serial algorithm also credits the earliest
/// detection — dropping only skips simulation of already-credited
/// faults — the result is bit-identical for every thread count, and a
/// one-thread executor degenerates to the exact serial loop.
pub fn grade_patterns(
    netlist: &Netlist,
    active_clock: ClockId,
    faults: &FaultList,
    patterns: &PatternSet,
) -> GradeResult {
    let sim = TransitionFaultSim::new(netlist, active_clock);
    let exec = Executor::new();
    let list = faults.faults();
    let mut first_detection: Vec<Option<usize>> = vec![None; list.len()];
    let mut detections_at: Vec<usize> = vec![0; patterns.len() + 1];
    let batches: Vec<_> = patterns.batches().collect();
    for round in batches.chunks(exec.threads().max(1)) {
        let remaining: Vec<usize> = first_detection
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(i, _)| i)
            .collect();
        if remaining.is_empty() {
            break;
        }
        scap_obs::counter!("grade.rounds").incr();
        scap_obs::counter!("grade.fault_sim_targets").add(remaining.len() as u64);
        let targets: Vec<_> = remaining.iter().map(|&i| list[i]).collect();
        let summaries = exec.parallel_map_with(
            || PropagationScratch::new(netlist.num_nets()),
            round,
            |scratch, (start, batch)| {
                (
                    *start,
                    sim.detect_batch_with_scratch(
                        &batch.load_words,
                        &batch.pi_words,
                        batch.valid_mask,
                        &targets,
                        scratch,
                    ),
                )
            },
        );
        for (k, &fi) in remaining.iter().enumerate() {
            let mut best: Option<usize> = None;
            for (start, summary) in &summaries {
                let mask = summary.detect_mask[k];
                if mask != 0 {
                    let p = start + mask.trailing_zeros() as usize;
                    best = Some(best.map_or(p, |b| b.min(p)));
                }
            }
            if let Some(p) = best {
                first_detection[fi] = Some(p);
                detections_at[p + 1] += 1;
                scap_obs::counter!("grade.faults_dropped").incr();
            }
        }
    }
    let mut curve = Vec::with_capacity(patterns.len());
    let mut cum = 0usize;
    for p in 0..patterns.len() {
        cum += detections_at[p + 1];
        curve.push((p + 1, cum));
    }
    GradeResult {
        first_detection,
        curve,
        total_faults: list.len(),
    }
}

/// Reverse-order static compaction: fault-simulates the set in reverse
/// and keeps only patterns that detect at least one not-yet-covered
/// fault. A standard ATPG post-pass; typically removes the early patterns
/// whose faults were re-detected fortuitously by later ones.
///
/// Returns the retained pattern indices (ascending) and the compacted
/// set.
pub fn compact_patterns(
    netlist: &Netlist,
    active_clock: ClockId,
    faults: &FaultList,
    patterns: &PatternSet,
) -> (Vec<usize>, PatternSet) {
    let sim = TransitionFaultSim::new(netlist, active_clock);
    let exec = Executor::new();
    let list = faults.faults();
    let mut covered = vec![false; list.len()];
    let mut keep = vec![false; patterns.len()];
    // Walk batches from the END of the set in rounds of up to
    // `exec.threads()` batches; within a round, credit each fault to its
    // highest-index detecting pattern (max-merge). Batch starts differ by
    // at least 64, so the max over a round always lands in the
    // highest-start detecting batch — exactly the batch the serial
    // reverse walk would have credited — and the result is bit-identical
    // for every thread count.
    let mut batches: Vec<_> = patterns.batches().collect();
    batches.reverse();
    for round in batches.chunks(exec.threads().max(1)) {
        let remaining: Vec<usize> = covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| i)
            .collect();
        if remaining.is_empty() {
            break;
        }
        scap_obs::counter!("compact.rounds").incr();
        let targets: Vec<_> = remaining.iter().map(|&i| list[i]).collect();
        let summaries = exec.parallel_map_with(
            || PropagationScratch::new(netlist.num_nets()),
            round,
            |scratch, (start, batch)| {
                (
                    *start,
                    sim.detect_batch_with_scratch(
                        &batch.load_words,
                        &batch.pi_words,
                        batch.valid_mask,
                        &targets,
                        scratch,
                    ),
                )
            },
        );
        for (k, &fi) in remaining.iter().enumerate() {
            let mut best: Option<usize> = None;
            for (start, summary) in &summaries {
                let mask = summary.detect_mask[k];
                if mask != 0 {
                    let p = start + (63 - mask.leading_zeros() as usize);
                    best = Some(best.map_or(p, |b| b.max(p)));
                }
            }
            if let Some(p) = best {
                covered[fi] = true;
                keep[p] = true;
            }
        }
    }
    let kept: Vec<usize> = keep
        .iter()
        .enumerate()
        .filter(|(_, &k)| k)
        .map(|(i, _)| i)
        .collect();
    scap_obs::counter!("compact.patterns_kept").add(kept.len() as u64);
    scap_obs::counter!("compact.patterns_dropped").add((patterns.len() - kept.len()) as u64);
    let mut compacted = PatternSet {
        fill: patterns.fill,
        ..PatternSet::new()
    };
    for &i in &kept {
        compacted.push(patterns.source[i].clone(), patterns.filled[i].clone());
    }
    (kept, compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_dft::{FillPolicy, PatternSet, TestPattern};
    use scap_soc::{SocConfig, SocDesign};
    use scap_tgen::{AtpgConfig, Generator};

    #[test]
    fn grade_agrees_with_generator_count() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let clka = design.dominant_clock();
        let faults = FaultList::full(n);
        let gen = Generator::new(n, clka, AtpgConfig::default());
        let run = gen.run(&faults);
        let grade = grade_patterns(n, clka, &faults, &run.patterns);
        // Grading the same patterns against the same universe must find at
        // least as many detections as the generator recorded (order of
        // dropping can only help).
        assert!(grade.num_detected() >= run.num_detected());
        // The curve is monotone and ends at the detected count.
        let mut prev = 0;
        for &(_, d) in &grade.curve {
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(prev, grade.num_detected());
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let faults = FaultList::full(n);
        let grade = grade_patterns(n, design.dominant_clock(), &faults, &PatternSet::new());
        assert_eq!(grade.num_detected(), 0);
        assert!(grade.curve.is_empty());
        assert_eq!(grade.fault_coverage(), 0.0);
    }

    #[test]
    fn compaction_preserves_coverage_and_shrinks_the_set() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let clka = design.dominant_clock();
        let faults = FaultList::full(n);
        let gen = Generator::new(n, clka, AtpgConfig::default());
        let run = gen.run(&faults);
        let before = grade_patterns(n, clka, &faults, &run.patterns);
        let (kept, compacted) = compact_patterns(n, clka, &faults, &run.patterns);
        assert!(compacted.len() <= run.patterns.len());
        assert_eq!(kept.len(), compacted.len());
        // Indices ascending and unique.
        for w in kept.windows(2) {
            assert!(w[0] < w[1]);
        }
        let after = grade_patterns(n, clka, &faults, &compacted);
        assert_eq!(
            after.num_detected(),
            before.num_detected(),
            "compaction must not lose coverage"
        );
    }

    #[test]
    fn first_detection_indices_are_in_range() {
        let design = SocDesign::generate(&SocConfig::turbo_eagle(0.005));
        let n = &design.netlist;
        let clka = design.dominant_clock();
        let faults = FaultList::full(n);
        // A handful of random-fill patterns.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::SeedableRng;
        let mut set = PatternSet::new();
        for _ in 0..10 {
            let p = TestPattern::unspecified(n);
            let f = p.fill(n, FillPolicy::Random, &mut rng);
            set.push(p, f);
        }
        let grade = grade_patterns(n, clka, &faults, &set);
        for d in grade.first_detection.iter().flatten() {
            assert!(*d < set.len());
        }
        assert!(
            grade.num_detected() > 0,
            "random fill should detect something"
        );
    }
}
