//! The two pattern-generation flows the paper compares.
//!
//! * [`conventional`] — what commercial ATPG does by default: one run over
//!   the full fault list of the dominant clock domain with **random
//!   fill**, maximizing fortuitous detection (and, as the paper shows,
//!   switching activity and IR-drop).
//! * [`noise_aware`] — the paper's procedure (§3.1): split the dominant
//!   domain's ATPG into three steps — first the low-drop periphery blocks
//!   B1–B4, then B6, then the hot center block B5 — with **fill-0** on
//!   every don't-care, so whichever blocks are not being targeted stay
//!   quiet. Costs a few percent more patterns, slashes per-pattern SCAP.

use crate::{grade_patterns, CaseStudy, GradeResult};
use scap_dft::{FillPolicy, PatternSet};
use scap_netlist::BlockId;
use scap_sim::FaultList;
use scap_tgen::{AtpgConfig, EngineKind, FaultStatus, Generator};

/// Result of one flow.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// All generated patterns, in application order.
    pub patterns: PatternSet,
    /// `(step label, first pattern index of the step)`.
    pub steps: Vec<(String, usize)>,
    /// Exact grading of the pattern set against the full fault universe.
    pub grade: GradeResult,
    /// The fault universe used for grading.
    pub faults: FaultList,
}

impl FlowResult {
    /// Final fault coverage.
    pub fn fault_coverage(&self) -> f64 {
        self.grade.fault_coverage()
    }
}

/// Default ATPG configuration for a flow with the given fill.
pub fn flow_atpg_config(fill: FillPolicy) -> AtpgConfig {
    AtpgConfig {
        fill,
        ..AtpgConfig::default()
    }
}

/// Flow configuration with an explicit primary-targeting engine
/// (`--engine podem|sat|hybrid` on the CLI and `engine=` on the wire).
pub fn flow_atpg_config_with_engine(fill: FillPolicy, engine: EngineKind) -> AtpgConfig {
    AtpgConfig {
        fill,
        engine,
        ..AtpgConfig::default()
    }
}

/// The conventional flow: full fault list, random fill.
pub fn conventional(study: &CaseStudy) -> FlowResult {
    conventional_with(study, flow_atpg_config(FillPolicy::Random))
}

/// The conventional flow with an explicit ATPG configuration (used by the
/// fill-policy ablation).
pub fn conventional_with(study: &CaseStudy, config: AtpgConfig) -> FlowResult {
    let n = &study.design.netlist;
    let clka = study.clka();
    let faults = FaultList::full(n);
    let generator = Generator::new(n, clka, config);
    let run = generator.run(&faults);
    scap_obs::counter!("flow.stages").incr();
    scap_obs::counter!("flow.patterns_generated").add(run.patterns.len() as u64);
    let grade = grade_patterns(n, clka, &faults, &run.patterns);
    FlowResult {
        steps: vec![("all blocks".to_owned(), 0)],
        patterns: run.patterns,
        grade,
        faults,
    }
}

/// The paper's staged steps for the Turbo-Eagle floorplan.
pub fn paper_stages(study: &CaseStudy) -> Vec<(String, Vec<BlockId>)> {
    let blk = |name: &str| study.design.block_named(name).expect("block exists");
    vec![
        (
            "step1: B1-B4".to_owned(),
            vec![blk("B1"), blk("B2"), blk("B3"), blk("B4")],
        ),
        ("step2: B6".to_owned(), vec![blk("B6")]),
        ("step3: B5".to_owned(), vec![blk("B5")]),
    ]
}

/// The noise-aware flow: staged per-block targeting with fill-0.
pub fn noise_aware(study: &CaseStudy) -> FlowResult {
    noise_aware_with(
        study,
        flow_atpg_config(FillPolicy::Zero),
        &paper_stages(study),
    )
}

/// The noise-aware flow with explicit configuration and stages.
pub fn noise_aware_with(
    study: &CaseStudy,
    config: AtpgConfig,
    stages: &[(String, Vec<BlockId>)],
) -> FlowResult {
    let n = &study.design.netlist;
    let clka = study.clka();
    let full = FaultList::full(n);
    let generator = Generator::new(n, clka, config);
    let mut patterns = PatternSet {
        fill: Some(config.fill),
        ..PatternSet::new()
    };
    let mut steps = Vec::new();
    // Global knowledge of what the patterns so far already detect, so a
    // later step never re-targets a fortuitously covered fault.
    let mut detected = vec![false; full.faults().len()];
    for (label, blocks) in stages {
        steps.push((label.clone(), patterns.len()));
        let members: Vec<usize> = full
            .faults()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.block(n).is_some_and(|b| blocks.contains(&b)))
            .map(|(i, _)| i)
            .collect();
        let sub = FaultList::from_faults(
            members.iter().map(|&i| full.faults()[i]).collect(),
            members.len() * full.uncollapsed_count() / full.faults().len().max(1),
        );
        let initial: Vec<FaultStatus> = members
            .iter()
            .map(|&i| {
                if detected[i] {
                    FaultStatus::Detected
                } else {
                    FaultStatus::Undetected
                }
            })
            .collect();
        let run = generator.run_with_status(&sub, initial);
        scap_obs::counter!("flow.stages").incr();
        scap_obs::counter!("flow.patterns_generated").add(run.patterns.len() as u64);
        // Grade the new patterns against the whole universe to credit
        // fortuitous detections in *other* blocks too.
        let grade = grade_patterns(n, clka, &full, &run.patterns);
        for (i, d) in grade.first_detection.iter().enumerate() {
            if d.is_some() {
                detected[i] = true;
            }
        }
        patterns.extend(run.patterns);
    }
    let grade = grade_patterns(n, clka, &full, &patterns);
    FlowResult {
        patterns,
        steps,
        grade,
        faults: full,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Flows are the most expensive fixtures in the crate; build them once
    /// and share across every test that needs them.
    pub(crate) fn fixture() -> &'static (CaseStudy, FlowResult, FlowResult) {
        static FIXTURE: OnceLock<(CaseStudy, FlowResult, FlowResult)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let s = CaseStudy::small();
            let conv = conventional(&s);
            let na = noise_aware(&s);
            (s, conv, na)
        })
    }

    #[test]
    fn both_flows_reach_similar_coverage() {
        let (_, conv, na) = fixture();
        assert!(
            conv.fault_coverage() > 0.5,
            "conv {:.3}",
            conv.fault_coverage()
        );
        let delta = (conv.fault_coverage() - na.fault_coverage()).abs();
        assert!(
            delta < 0.12,
            "flows should converge to similar coverage: conv {:.3}, na {:.3}",
            conv.fault_coverage(),
            na.fault_coverage()
        );
    }

    #[test]
    fn noise_aware_generates_more_patterns() {
        let (_, conv, na) = fixture();
        assert!(
            na.patterns.len() >= conv.patterns.len(),
            "paper reports a pattern-count increase: conv {}, na {}",
            conv.patterns.len(),
            na.patterns.len()
        );
        assert_eq!(na.steps.len(), 3);
        // Step boundaries are ordered.
        assert!(na.steps[0].1 <= na.steps[1].1 && na.steps[1].1 <= na.steps[2].1);
    }

    #[test]
    fn noise_aware_steps_target_their_blocks() {
        let (s, _, na) = fixture();
        // During step 1+2 patterns, B5 loads should be almost all zero
        // (fill-0 keeps the untargeted block quiet).
        let b5 = s.design.block_named("B5").unwrap();
        let b5_flops: Vec<usize> = s
            .design
            .netlist
            .flops()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.block == b5)
            .map(|(i, _)| i)
            .collect();
        let step3_start = na.steps[2].1;
        let mut ones = 0usize;
        let mut total = 0usize;
        for p in &na.patterns.filled[..step3_start] {
            for &i in &b5_flops {
                ones += p.load[i] as usize;
                total += 1;
            }
        }
        if total > 0 {
            let frac = ones as f64 / total as f64;
            assert!(
                frac < 0.10,
                "B5 load should be quiet before step 3: {frac:.3}"
            );
        }
    }
}
