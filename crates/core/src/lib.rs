//! # scap — supply-voltage-noise-aware transition delay fault ATPG
//!
//! A from-scratch reproduction of *"Transition Delay Fault Test Pattern
//! Generation Considering Supply Voltage Noise in a SOC Design"*
//! (Ahmed, Tehranipoor, Jayaram — DAC 2007), including every substrate the
//! paper's commercial flow provided: netlist + library, scan insertion,
//! two-frame PODEM ATPG with fill options, gate-level timing simulation,
//! parasitic-aware delay annotation, a clock tree, a resistive power grid
//! with statistical and dynamic IR-drop analysis, and the paper's CAP /
//! SCAP pattern power models.
//!
//! The crate is a facade: the subsystems live in the re-exported
//! sub-crates ([`netlist`], [`sim`], [`dft`], [`tgen`], [`power`],
//! [`timing`], [`soc`]) and this crate adds the paper's methodology:
//!
//! * [`CaseStudy`] — a generated Turbo-Eagle-like SOC bundled with its
//!   extracted timing, clock tree and calibrated power grid,
//! * [`PatternAnalyzer`] — per-pattern toggle traces, STW, SCAP/CAP and
//!   endpoint delays (with and without IR-drop-scaled cell delays),
//! * [`flows`] — the conventional random-fill flow and the paper's staged
//!   noise-aware flow (per-block targeting + fill-0 + SCAP screening),
//! * [`experiments`] — one driver per table/figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use scap::{CaseStudy, flows};
//!
//! // A small (seeded, deterministic) instance of the case-study SOC.
//! let study = CaseStudy::small();
//! let conventional = flows::conventional(&study);
//! let noise_aware = flows::noise_aware(&study);
//! assert!(noise_aware.patterns.len() >= conventional.patterns.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
mod analyzer;
mod case_study;
pub mod diagnose;
pub mod experiments;
pub mod flows;
mod grade;
pub mod schedule;
pub mod sdd;
pub mod sta;

pub use analyzer::{EndpointDelayReport, PatternAnalyzer};
pub use case_study::CaseStudy;
pub use grade::{compact_patterns, grade_patterns, GradeResult};

/// Re-export: scan insertion and pattern types.
pub use scap_dft as dft;
/// Re-export: netlist, library and floorplan types.
pub use scap_netlist as netlist;
/// Re-export: power grid, IR-drop and SCAP models.
pub use scap_power as power;
/// Re-export: logic/fault/event simulation.
pub use scap_sim as sim;
/// Re-export: the synthetic SOC generator.
pub use scap_soc as soc;
/// Re-export: the ATPG engine.
pub use scap_tgen as tgen;
/// Re-export: delay annotation, clock tree, STA, delay scaling.
pub use scap_timing as timing;
