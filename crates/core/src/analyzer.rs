//! Per-pattern analysis: toggle traces, SCAP power and endpoint delays.

use crate::CaseStudy;
use scap_dft::{FilledPattern, PatternBatch, PatternSet};
use scap_exec::Executor;
use scap_netlist::{ClockId, FlopId, Netlist};
use scap_power::{DynamicAnalysis, IrDropMap, PatternPower, ScapCalculator};
use scap_sim::{loc, BatchSim, EventSim, ToggleTrace};
use scap_timing::{scaling, ClockArrivals, DelayAnnotation};

/// Per-endpoint delay report (the paper's Figure 7 data).
#[derive(Clone, Debug)]
pub struct EndpointDelayReport {
    /// For each flop of the active domain: the path delay observed at the
    /// endpoint, measured relative to the clock arrival at that endpoint,
    /// ps. `0.0` marks a non-active endpoint (no transition captured).
    pub delay_ps: Vec<(FlopId, f64)>,
}

impl EndpointDelayReport {
    /// Endpoints whose delay is non-zero (active endpoints).
    pub fn active(&self) -> impl Iterator<Item = (FlopId, f64)> + '_ {
        self.delay_ps.iter().copied().filter(|&(_, d)| d != 0.0)
    }

    /// The largest endpoint delay, ps.
    pub fn max_delay_ps(&self) -> f64 {
        self.delay_ps.iter().map(|&(_, d)| d).fold(0.0, f64::max)
    }
}

/// Computes traces, power and timing for individual patterns of one
/// case-study design.
///
/// # Example
///
/// ```
/// use scap::{CaseStudy, PatternAnalyzer};
/// use scap_dft::FilledPattern;
///
/// let study = CaseStudy::small();
/// let analyzer = PatternAnalyzer::new(&study);
/// let quiet = FilledPattern {
///     load: vec![false; study.design.netlist.num_flops()],
///     pi: vec![false; study.design.netlist.primary_inputs().len()],
/// };
/// let trace = analyzer.trace(&quiet);
/// let power = analyzer.power(&quiet);
/// assert_eq!(power.stw_ps, trace.stw_ps());
/// ```
#[derive(Debug)]
pub struct PatternAnalyzer<'a> {
    study: &'a CaseStudy,
    batch: BatchSim<'a>,
    active_clock: ClockId,
}

impl<'a> PatternAnalyzer<'a> {
    /// Builds an analyzer bound to a case study.
    pub fn new(study: &'a CaseStudy) -> Self {
        PatternAnalyzer {
            study,
            batch: BatchSim::new(&study.design.netlist),
            active_clock: study.clka(),
        }
    }

    fn netlist(&self) -> &'a Netlist {
        &self.study.design.netlist
    }

    /// Launch events of a pattern under given clock arrivals and delays:
    /// `(flop, new value, Q transition time)` for every active-domain flop
    /// whose state changes at the launch edge.
    fn launches(
        &self,
        filled: &FilledPattern,
        annotation: &DelayAnnotation,
        arrivals: &ClockArrivals,
    ) -> (Vec<bool>, Vec<(FlopId, bool, f64)>) {
        let n = self.netlist();
        let b = PatternBatch::pack(std::slice::from_ref(filled));
        let frames =
            loc::loc_frames_batch(&self.batch, &b.load_words, &b.pi_words, self.active_clock);
        let frame1: Vec<bool> = frames.frame1.iter().map(|w| w & 1 == 1).collect();
        let mut launches = Vec::new();
        for (i, f) in n.flops().iter().enumerate() {
            if f.clock != self.active_clock {
                continue;
            }
            let id = FlopId::new(i as u32);
            let old = b.load_words[i] & 1 == 1;
            let new = frames.state2[i] & 1 == 1;
            if old != new {
                let t = arrivals.arrival_ps(id).unwrap_or(0.0) + annotation.flop_clk_to_q_ps(id);
                launches.push((id, new, t));
            }
        }
        (frame1, launches)
    }

    /// The launch-to-capture toggle trace of a pattern (nominal delays).
    pub fn trace(&self, filled: &FilledPattern) -> ToggleTrace {
        self.trace_with(filled, &self.study.annotation, &self.study.arrivals)
    }

    /// Toggle trace under explicit (e.g. IR-drop-scaled) delays and clock
    /// arrivals.
    pub fn trace_with(
        &self,
        filled: &FilledPattern,
        annotation: &DelayAnnotation,
        arrivals: &ClockArrivals,
    ) -> ToggleTrace {
        let (frame1, launches) = self.launches(filled, annotation, arrivals);
        EventSim::new(self.netlist(), annotation).run(&frame1, &launches)
    }

    /// CAP/SCAP power of one pattern.
    pub fn power(&self, filled: &FilledPattern) -> PatternPower {
        let trace = self.trace(filled);
        self.power_of_trace(&trace)
    }

    /// CAP/SCAP power of an existing trace.
    pub fn power_of_trace(&self, trace: &ToggleTrace) -> PatternPower {
        let calc = ScapCalculator::new(
            self.netlist(),
            &self.study.annotation,
            self.study.period_ps(),
        );
        calc.measure(trace)
    }

    /// SCAP profile of a whole pattern set — the data behind the paper's
    /// Figures 2 and 6. Patterns are analyzed in parallel (order-stable,
    /// bit-identical to the serial loop for every thread count).
    pub fn power_profile(&self, set: &PatternSet) -> Vec<PatternPower> {
        Executor::new().parallel_map(&set.filled, |f| self.power(f))
    }

    /// Dynamic IR-drop of one pattern.
    pub fn ir_drop(&self, filled: &FilledPattern) -> IrDropMap {
        let trace = self.trace(filled);
        let dynir = DynamicAnalysis::new(
            self.netlist(),
            &self.study.design.floorplan,
            self.study.grid,
        );
        dynir.analyze(&self.study.annotation, &trace)
    }

    /// Dynamic IR-drop of many patterns. The grid system is assembled
    /// once, patterns are solved in parallel, and each worker keeps one
    /// [`scap_power::DynSession`] (reused CG buffers) across its share of
    /// the patterns. Results are bit-identical to calling
    /// [`PatternAnalyzer::ir_drop`] per pattern, in order.
    pub fn ir_drop_profile(&self, patterns: &[FilledPattern]) -> Vec<IrDropMap> {
        let dynir = DynamicAnalysis::new(
            self.netlist(),
            &self.study.design.floorplan,
            self.study.grid,
        );
        Executor::new().parallel_map_with(
            || dynir.session(),
            patterns,
            |session, filled| {
                let trace = self.trace(filled);
                session.analyze(&self.study.annotation, &trace)
            },
        )
    }

    /// Endpoint delays of a pattern under nominal timing.
    pub fn endpoint_delays(&self, filled: &FilledPattern) -> EndpointDelayReport {
        self.endpoint_delays_with(filled, &self.study.annotation, &self.study.arrivals)
    }

    /// Endpoint delays under explicit delays/arrivals.
    pub fn endpoint_delays_with(
        &self,
        filled: &FilledPattern,
        annotation: &DelayAnnotation,
        arrivals: &ClockArrivals,
    ) -> EndpointDelayReport {
        let trace = self.trace_with(filled, annotation, arrivals);
        self.endpoints_from_trace(&trace, arrivals)
    }

    /// Endpoint delays of an already-computed trace.
    fn endpoints_from_trace(
        &self,
        trace: &ToggleTrace,
        arrivals: &ClockArrivals,
    ) -> EndpointDelayReport {
        let n = self.netlist();
        let delay_ps = arrivals
            .iter()
            .map(|(f, t_clk)| {
                let d = n.flop(f).d;
                let delay = trace
                    .last_change_ps(d)
                    .map(|t| (t - t_clk).max(0.0))
                    .unwrap_or(0.0);
                (f, delay)
            })
            .collect();
        EndpointDelayReport { delay_ps }
    }

    /// The paper's §3.2 IR-drop-aware re-simulation: solves the pattern's
    /// dynamic IR-drop, scales every cell *and clock-tree buffer* delay by
    /// `1 + k_volt·ΔV`, and re-runs the endpoint timing. Returns
    /// `(nominal, scaled)` endpoint reports.
    pub fn endpoint_delays_scaled(
        &self,
        filled: &FilledPattern,
    ) -> (EndpointDelayReport, EndpointDelayReport) {
        self.endpoint_delays_scaled_k(filled, self.netlist().library.k_volt_per_volt)
    }

    /// [`PatternAnalyzer::endpoint_delays_scaled`] with an explicit
    /// delay-scaling coefficient (V⁻¹) instead of the library's
    /// calibrated `k_volt` — the timing screen's aggressive-derating
    /// sensitivity knob.
    pub fn endpoint_delays_scaled_k(
        &self,
        filled: &FilledPattern,
        k: f64,
    ) -> (EndpointDelayReport, EndpointDelayReport) {
        let trace = self.trace(filled);
        let nominal = self.endpoints_from_trace(&trace, &self.study.arrivals);
        let n = self.netlist();
        let dynir = DynamicAnalysis::new(n, &self.study.design.floorplan, self.study.grid);
        let map = dynir.analyze(&self.study.annotation, &trace);
        let scaled_ann = scaling::scale_annotation(
            &self.study.annotation,
            &map.gate_drops_total(),
            &map.flop_drops_total(),
            k,
        );
        let scaled_arrivals = self
            .study
            .clock_tree
            .arrivals_with_drop(|p| dynir.drop_at(&map, p), k);
        let scaled = self.endpoint_delays_with(filled, &scaled_ann, &scaled_arrivals);
        (nominal, scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_pattern(study: &CaseStudy, seed: u64) -> FilledPattern {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        FilledPattern {
            load: (0..study.design.netlist.num_flops())
                .map(|_| rng.gen())
                .collect(),
            pi: (0..study.design.netlist.primary_inputs().len())
                .map(|_| rng.gen())
                .collect(),
        }
    }

    #[test]
    fn random_pattern_produces_activity() {
        let study = CaseStudy::small();
        let an = PatternAnalyzer::new(&study);
        let p = random_pattern(&study, 1);
        let trace = an.trace(&p);
        assert!(trace.num_toggles() > 10);
        assert!(trace.stw_ps() > 0.0);
        let power = an.power_of_trace(&trace);
        assert!(power.chip_scap_vdd_mw() > 0.0);
        assert!(power.chip_scap_vdd_mw() >= power.chip_cap_vdd_mw());
    }

    /// The mechanism behind the paper's fill-0 procedure: loading 0s into
    /// a block's scan cells keeps that block's switching (and thus its
    /// SCAP contribution) down, on average over patterns.
    #[test]
    fn zeroing_b5_loads_reduces_b5_energy_on_average() {
        let study = CaseStudy::small();
        let an = PatternAnalyzer::new(&study);
        let b5 = study.design.block_named("B5").unwrap();
        let b5_flops: Vec<usize> = study
            .design
            .netlist
            .flops()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.block == b5)
            .map(|(i, _)| i)
            .collect();
        let mut with = 0.0;
        let mut without = 0.0;
        for seed in 0..6 {
            let p = random_pattern(&study, seed);
            with += an.power(&p).blocks[b5.index()].energy_vdd_fj;
            let mut zeroed = p.clone();
            for &i in &b5_flops {
                zeroed.load[i] = false;
            }
            without += an.power(&zeroed).blocks[b5.index()].energy_vdd_fj;
        }
        assert!(
            without < with,
            "zeroed-B5 energy {without} should be below random-B5 energy {with}"
        );
    }

    #[test]
    fn scaled_timing_slows_most_active_endpoints() {
        let study = CaseStudy::small();
        let an = PatternAnalyzer::new(&study);
        let p = random_pattern(&study, 3);
        let (nominal, scaled) = an.endpoint_delays_scaled(&p);
        assert_eq!(nominal.delay_ps.len(), scaled.delay_ps.len());
        let nom_max = nominal.max_delay_ps();
        let sc_max = scaled.max_delay_ps();
        assert!(nom_max > 0.0);
        assert!(
            sc_max >= nom_max * 0.99,
            "worst path should not speed up materially: {nom_max} -> {sc_max}"
        );
    }

    #[test]
    fn ir_drop_map_has_positive_drop_for_random_pattern() {
        let study = CaseStudy::small();
        let an = PatternAnalyzer::new(&study);
        let m = an.ir_drop(&random_pattern(&study, 4));
        assert!(m.worst_drop_vdd() > 0.0);
    }
}
