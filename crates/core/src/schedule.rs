//! Power-constrained SOC test scheduling.
//!
//! The paper's introduction motivates supply-noise-aware ATPG with SOC
//! test scheduling: blocks are tested *in parallel* to cut test time, but
//! the combined test power must stay below the functional power threshold
//! (refs 5 and 6 of the paper). This module implements the classic
//! greedy first-fit-decreasing scheduler over per-block test descriptors
//! so the trade-off can be explored with the SCAP numbers this crate
//! already produces.

use crate::{CaseStudy, PatternAnalyzer};
use scap_netlist::BlockId;
use serde::{Deserialize, Serialize};

/// One block's test requirements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockTest {
    /// The block under test.
    pub block: BlockId,
    /// Patterns to apply.
    pub patterns: usize,
    /// Average test power while the block's patterns run, mW.
    pub power_mw: f64,
}

/// A set of blocks tested concurrently.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Blocks running in this session.
    pub members: Vec<BlockTest>,
}

impl Session {
    /// Combined power of the session, mW.
    pub fn power_mw(&self) -> f64 {
        self.members.iter().map(|m| m.power_mw).sum()
    }

    /// Session length: the longest member's pattern count (blocks run in
    /// lock-step on the shared tester).
    pub fn length(&self) -> usize {
        self.members.iter().map(|m| m.patterns).max().unwrap_or(0)
    }
}

/// A full schedule.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Sessions, applied one after another.
    pub sessions: Vec<Session>,
}

impl Schedule {
    /// Total test length (patterns, summed over sessions).
    pub fn total_length(&self) -> usize {
        self.sessions.iter().map(|s| s.length()).sum()
    }

    /// Worst session power, mW.
    pub fn peak_power_mw(&self) -> f64 {
        self.sessions
            .iter()
            .map(|s| s.power_mw())
            .fold(0.0, f64::max)
    }
}

/// Greedy first-fit-decreasing scheduling under a session power budget.
///
/// Blocks whose standalone power already exceeds the budget get a
/// dedicated session (they cannot be split here; the paper's answer to
/// such blocks is exactly the noise-aware pattern generation that lowers
/// their per-pattern power).
pub fn schedule(tests: &[BlockTest], budget_mw: f64) -> Schedule {
    let mut order: Vec<BlockTest> = tests.to_vec();
    order.sort_by(|a, b| {
        b.power_mw
            .partial_cmp(&a.power_mw)
            .expect("powers are finite")
    });
    let mut sessions: Vec<Session> = Vec::new();
    for t in order {
        let slot = sessions
            .iter_mut()
            .find(|s| s.power_mw() + t.power_mw <= budget_mw);
        match slot {
            Some(s) => s.members.push(t),
            None => sessions.push(Session { members: vec![t] }),
        }
    }
    Schedule { sessions }
}

/// Serial baseline: one block at a time.
pub fn serial_length(tests: &[BlockTest]) -> usize {
    tests.iter().map(|t| t.patterns).sum()
}

/// Derives per-block test descriptors from a flow: pattern counts from
/// the staged steps (or uniform for a flat flow) and power from the mean
/// block SCAP over the flow's patterns.
pub fn block_tests_from_flow(study: &CaseStudy, flow: &crate::flows::FlowResult) -> Vec<BlockTest> {
    let analyzer = PatternAnalyzer::new(study);
    let profile = analyzer.power_profile(&flow.patterns);
    let n_blocks = study.design.netlist.blocks().len();
    (0..n_blocks)
        .map(|b| {
            let block = BlockId::new(b as u32);
            let mean = profile.iter().map(|p| p.scap_vdd_mw(block)).sum::<f64>()
                / profile.len().max(1) as f64;
            BlockTest {
                block,
                // Per-block pattern demand approximated by fault share.
                patterns: flow.patterns.len()
                    * study.design.netlist.flops_in_block(block).count().max(1)
                    / study.design.netlist.num_flops().max(1),
                power_mw: mean,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tests_fixture() -> Vec<BlockTest> {
        (0..6u32)
            .map(|i| BlockTest {
                block: BlockId::new(i),
                patterns: 100 + 40 * i as usize,
                power_mw: [5.0, 1.0, 2.0, 1.5, 8.0, 2.5][i as usize],
            })
            .collect()
    }

    #[test]
    fn schedule_respects_the_budget() {
        let tests = tests_fixture();
        let s = schedule(&tests, 9.0);
        for session in &s.sessions {
            assert!(
                session.power_mw() <= 9.0 || session.members.len() == 1,
                "over-budget multi-block session: {session:?}"
            );
        }
        // Every block appears exactly once.
        let mut seen: Vec<u32> = s
            .sessions
            .iter()
            .flat_map(|s| s.members.iter().map(|m| m.block.raw()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn parallel_schedule_beats_serial() {
        let tests = tests_fixture();
        let s = schedule(&tests, 12.0);
        assert!(
            s.total_length() < serial_length(&tests),
            "{} vs serial {}",
            s.total_length(),
            serial_length(&tests)
        );
        assert!(s.peak_power_mw() <= 12.0);
    }

    #[test]
    fn tight_budget_degenerates_to_serial() {
        let tests = tests_fixture();
        let s = schedule(&tests, 0.5);
        assert_eq!(s.sessions.len(), tests.len());
        assert_eq!(s.total_length(), serial_length(&tests));
    }

    #[test]
    fn flow_derived_tests_are_consistent() {
        let (study, conv, _) = crate::flows::tests::fixture();
        let tests = block_tests_from_flow(study, conv);
        assert_eq!(tests.len(), 6);
        let b5 = study.design.block_named("B5").unwrap();
        let b5_test = tests.iter().find(|t| t.block == b5).unwrap();
        // B5 is the hungriest block.
        for t in &tests {
            assert!(b5_test.power_mw >= t.power_mw * 0.99, "{t:?}");
        }
        // Scheduling under 1.5x B5 power must still fit everything.
        let s = schedule(&tests, 1.5 * b5_test.power_mw);
        assert!(s.peak_power_mw() <= 1.5 * b5_test.power_mw + 1e-9);
        assert!(s.total_length() <= serial_length(&tests));
    }
}
