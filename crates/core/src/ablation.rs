//! Ablation studies on the paper's design choices.
//!
//! The paper's procedure combines two mechanisms: *staged per-block fault
//! targeting* and *fill-0 don't-care filling*. [`staged_fill_matrix`]
//! separates their contributions; [`threshold_sensitivity`] sweeps the
//! SCAP screening threshold, exposing the threshold ↔ pattern-count
//! trade-off the paper discusses in §2.2 ("the lower the threshold … the
//! greater number of delay test patterns").

use crate::flows::{self, FlowResult};
use crate::{experiments, CaseStudy};
use scap_dft::FillPolicy;

/// One row of the staged/fill ablation.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Patterns generated.
    pub patterns: usize,
    /// Final fault coverage.
    pub fault_coverage: f64,
    /// Fraction of patterns whose B5 SCAP exceeds the screening threshold.
    pub fraction_above: f64,
    /// Mean B5 SCAP, mW.
    pub mean_scap_mw: f64,
}

fn measure(study: &CaseStudy, label: &str, flow: &FlowResult) -> AblationRow {
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let threshold = experiments::scap_thresholds(study)[b5.index()];
    let series = experiments::scap_series(study, flow, b5, threshold);
    AblationRow {
        label: label.to_owned(),
        patterns: flow.patterns.len(),
        fault_coverage: flow.fault_coverage(),
        fraction_above: series.fraction_above(),
        mean_scap_mw: series.scap_mw.iter().sum::<f64>() / series.scap_mw.len().max(1) as f64,
    }
}

/// Runs the 2×2 matrix {flat, staged} × {random-fill, fill-0}.
///
/// The paper's procedure is the staged/fill-0 corner; the conventional
/// baseline is flat/random. The off-diagonal corners show that *both*
/// mechanisms are needed: staging without fill-0 still randomizes the
/// quiet blocks; fill-0 without staging still targets (and wakes) every
/// block at once.
pub fn staged_fill_matrix(study: &CaseStudy) -> Vec<AblationRow> {
    let stages = flows::paper_stages(study);
    let mut rows = Vec::new();
    for (staged, stage_label) in [(false, "flat"), (true, "staged")] {
        for fill in [FillPolicy::Random, FillPolicy::Zero] {
            let config = flows::flow_atpg_config(fill);
            let flow = if staged {
                flows::noise_aware_with(study, config, &stages)
            } else {
                flows::conventional_with(study, config)
            };
            scap_obs::counter!("ablation.flows_run").incr();
            rows.push(measure(study, &format!("{stage_label}/{fill}"), &flow));
        }
    }
    rows
}

/// Sweeps the screening threshold by multiplying the statistical Case-2
/// value by each factor, returning `(factor, patterns above)` for an
/// existing flow.
pub fn threshold_sensitivity(
    study: &CaseStudy,
    flow: &FlowResult,
    factors: &[f64],
) -> Vec<(f64, usize)> {
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let base = experiments::scap_thresholds(study)[b5.index()];
    let series = experiments::scap_series(study, flow, b5, base);
    scap_obs::counter!("ablation.threshold_factors").add(factors.len() as u64);
    factors
        .iter()
        .map(|&f| {
            let t = base * f;
            let above = series.scap_mw.iter().filter(|&&s| s > t).count();
            (f, above)
        })
        .collect()
}

/// Renders the ablation matrix.
pub fn render_matrix(rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out =
        String::from("Ablation: staging x fill\n  config              patterns  coverage  B5>thr  mean B5 SCAP\n");
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<18} {:>9} {:>8.1}% {:>6.1}% {:>9.2} mW",
            r.label,
            r.patterns,
            100.0 * r.fault_coverage,
            100.0 * r.fraction_above,
            r.mean_scap_mw
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shows_fill0_reduces_scap() {
        let (study, _, _) = crate::flows::tests::fixture();
        let rows = staged_fill_matrix(study);
        assert_eq!(rows.len(), 4);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .expect("row exists")
        };
        let flat_random = get("flat/random");
        let staged_zero = get("staged/fill-0");
        // The paper's corner beats the conventional corner on noise.
        assert!(
            staged_zero.mean_scap_mw < flat_random.mean_scap_mw,
            "staged/fill-0 {:.2} must be quieter than flat/random {:.2}",
            staged_zero.mean_scap_mw,
            flat_random.mean_scap_mw
        );
        // Coverage stays comparable across the matrix.
        for r in &rows {
            assert!(
                (r.fault_coverage - flat_random.fault_coverage).abs() < 0.15,
                "{}: coverage {:.3}",
                r.label,
                r.fault_coverage
            );
        }
        assert!(render_matrix(&rows).contains("staged"));
    }

    #[test]
    fn threshold_sweep_is_monotone() {
        let (study, conv, _) = crate::flows::tests::fixture();
        let sweep = threshold_sensitivity(study, conv, &[0.25, 0.5, 1.0, 2.0, 4.0]);
        for w in sweep.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "raising the threshold cannot increase violations: {sweep:?}"
            );
        }
    }
}
