//! Failure diagnosis: from tester fail logs back to candidate faults.
//!
//! The paper (§3.2) uses IR-drop-aware re-simulation "to debug any pattern
//! which is identified to fail due to IR-drop effects". This module
//! implements the other half of that debug loop: given the flops that
//! captured wrong values on a set of patterns, rank the transition faults
//! whose simulated failure signatures best explain the observations
//! (classic effect-cause diagnosis with Jaccard scoring).

use scap_dft::PatternSet;
use scap_netlist::{ClockId, FlopId, Netlist};
use scap_sim::{FaultList, TransitionFault, TransitionFaultSim};
use std::collections::HashSet;

/// One pattern's observed failure: which capture flops mismatched.
#[derive(Clone, Debug)]
pub struct FailureLog {
    /// Index of the failing pattern in the applied set.
    pub pattern: usize,
    /// Flops that captured a wrong value.
    pub failing_flops: Vec<FlopId>,
}

/// A diagnosis candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The suspected fault.
    pub fault: TransitionFault,
    /// Mean Jaccard similarity between predicted and observed failing
    /// flops over the logged patterns (1.0 = perfect explanation).
    pub score: f64,
}

/// Ranks fault candidates against tester fail logs.
///
/// For every fault, the predicted failure signature (set of mismatching
/// capture flops) is simulated for each logged pattern and compared with
/// the observation; candidates are returned sorted by descending score,
/// pruned at `max_candidates`. Faults predicting a failure on a passing
/// pattern are penalized through the Jaccard denominator of the union.
pub fn diagnose(
    netlist: &Netlist,
    active_clock: ClockId,
    faults: &FaultList,
    patterns: &PatternSet,
    logs: &[FailureLog],
    max_candidates: usize,
) -> Vec<Candidate> {
    let sim = TransitionFaultSim::new(netlist, active_clock);
    // Map observed flops to their D nets once.
    let observations: Vec<(usize, HashSet<u32>)> = logs
        .iter()
        .map(|log| {
            let nets: HashSet<u32> = log
                .failing_flops
                .iter()
                .map(|&f| netlist.flop(f).d.raw())
                .collect();
            (log.pattern, nets)
        })
        .collect();
    let mut scratch = scap_sim::PropagationScratch::new(netlist.num_nets());
    let mut candidates: Vec<Candidate> = Vec::new();
    let batches: Vec<_> = patterns.batches().collect();
    // Frames depend only on the batch; compute each referenced batch once.
    let mut frame_cache: std::collections::HashMap<usize, scap_sim::loc::BatchFrames> =
        std::collections::HashMap::new();
    for (pattern, _) in &observations {
        let batch_idx = pattern / 64;
        if let Some((_, batch)) = batches.get(batch_idx) {
            frame_cache
                .entry(batch_idx)
                .or_insert_with(|| sim.frames(&batch.load_words, &batch.pi_words));
        }
    }
    for &fault in faults.faults() {
        let mut total = 0.0;
        let mut samples = 0usize;
        for (pattern, observed) in &observations {
            let batch_idx = pattern / 64;
            let bit = pattern % 64;
            let Some(frames) = frame_cache.get(&batch_idx) else {
                continue;
            };
            let signature = sim.signature_one(frames, 1u64 << bit, fault, &mut scratch);
            let predicted: HashSet<u32> = signature
                .iter()
                .filter(|(_, mask)| mask >> bit & 1 == 1)
                .map(|(net, _)| net.raw())
                .collect();
            let inter = predicted.intersection(observed).count();
            let union = predicted.union(observed).count();
            total += if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            samples += 1;
        }
        if samples > 0 && total > 0.0 {
            candidates.push(Candidate {
                fault,
                score: total / samples as f64,
            });
        }
    }
    candidates.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
    candidates.truncate(max_candidates);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CaseStudy;
    use scap_sim::PropagationScratch;

    /// Inject a known fault, simulate its failures on real patterns, then
    /// diagnose from the produced logs: the injected fault must rank at
    /// (or tie for) the top.
    #[test]
    fn diagnosis_recovers_an_injected_fault() {
        let study = CaseStudy::new(0.004);
        let n = &study.design.netlist;
        let clka = study.clka();
        let faults = FaultList::full(n);
        let (_, conv, _) = {
            // Build a small conventional set directly (avoid the heavier
            // fixture): 96 random patterns.
            use rand::SeedableRng;
            use scap_dft::{FillPolicy, TestPattern};
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            let mut set = PatternSet::new();
            for _ in 0..96 {
                let p = TestPattern::unspecified(n);
                let f = p.fill(n, FillPolicy::Random, &mut rng);
                set.push(p, f);
            }
            ((), set, ())
        };
        let sim = TransitionFaultSim::new(n, clka);
        let mut scratch = PropagationScratch::new(n.num_nets());
        // Pick an actually-detectable fault and produce its fail logs.
        let mut injected = None;
        let mut logs = Vec::new();
        'outer: for &fault in faults.faults().iter().skip(40) {
            logs.clear();
            for (start, batch) in conv.batches() {
                let frames = sim.frames(&batch.load_words, &batch.pi_words);
                let signature = sim.signature_one(&frames, batch.valid_mask, fault, &mut scratch);
                for bit in 0..batch.count {
                    let failing: Vec<FlopId> = signature
                        .iter()
                        .filter(|(_, mask)| mask >> bit & 1 == 1)
                        .flat_map(|(net, _)| n.fanout_flops(*net).to_vec())
                        .collect();
                    if !failing.is_empty() {
                        logs.push(FailureLog {
                            pattern: start + bit,
                            failing_flops: failing,
                        });
                    }
                }
            }
            if logs.len() >= 3 {
                injected = Some(fault);
                break 'outer;
            }
        }
        let injected = injected.expect("some fault fails on random patterns");
        logs.truncate(5);
        let ranked = diagnose(n, clka, &faults, &conv, &logs, 10);
        assert!(!ranked.is_empty());
        let top_score = ranked[0].score;
        let injected_entry = ranked
            .iter()
            .find(|c| c.fault == injected)
            .expect("injected fault is among the top candidates");
        assert!(
            injected_entry.score >= top_score - 1e-9,
            "injected fault must tie for the best score: {} vs {}",
            injected_entry.score,
            top_score
        );
    }

    #[test]
    fn empty_logs_produce_no_candidates() {
        let study = CaseStudy::new(0.004);
        let n = &study.design.netlist;
        let faults = FaultList::full(n);
        let ranked = diagnose(n, study.clka(), &faults, &PatternSet::new(), &[], 5);
        assert!(ranked.is_empty());
    }
}
