//! Text export of pattern sets, in a STIL-flavoured format.
//!
//! One `Pattern` block per test: per-chain scan-load strings (position 0
//! first, i.e. the order the bits sit in the chain after loading) plus the
//! held primary-input vector. Enough structure for diffing pattern sets
//! and hand-inspecting loads; not a full IEEE 1450 implementation.

use crate::{FilledPattern, PatternSet};
use scap_netlist::Netlist;
use std::fmt::Write;

/// Renders a pattern set as STIL-flavoured text.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::Netlist;
/// # use scap_dft::PatternSet;
/// # fn demo(netlist: &Netlist, patterns: &PatternSet) {
/// let text = scap_dft::export::to_stil(netlist, patterns);
/// std::fs::write("patterns.stil", text).expect("write pattern file");
/// # }
/// ```
pub fn to_stil(netlist: &Netlist, patterns: &PatternSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "STIL 1.0;");
    let _ = writeln!(out, "// design {}", netlist.name);
    let _ = writeln!(
        out,
        "// {} patterns, fill {}",
        patterns.len(),
        patterns
            .fill
            .map(|f| f.to_string())
            .unwrap_or_else(|| "none".to_owned())
    );
    let chains = chain_order(netlist);
    let _ = writeln!(out, "PatternBurst burst {{ {} chains }}", chains.len());
    for (p, filled) in patterns.filled.iter().enumerate() {
        let _ = writeln!(out, "Pattern p{p} {{");
        for (c, members) in chains.iter().enumerate() {
            let bits: String = members
                .iter()
                .map(|&i| if filled.load[i] { '1' } else { '0' })
                .collect();
            let _ = writeln!(out, "  Load chain{c} = {bits};");
        }
        let pi: String = filled
            .pi
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        let _ = writeln!(out, "  PI = {pi};");
        let _ = writeln!(out, "}}");
    }
    out
}

/// Parses a single pattern's chains back out of the exported text — used
/// for round-trip testing and quick external tooling.
///
/// Returns `None` when the pattern index is missing or malformed.
pub fn parse_pattern(netlist: &Netlist, text: &str, index: usize) -> Option<FilledPattern> {
    let header = format!("Pattern p{index} {{");
    let start = text.find(&header)? + header.len();
    let body = &text[start..text[start..].find('}')? + start];
    let chains = chain_order(netlist);
    let mut load = vec![false; netlist.num_flops()];
    for (c, members) in chains.iter().enumerate() {
        let tag = format!("Load chain{c} = ");
        let s = body.find(&tag)? + tag.len();
        let bits = &body[s..body[s..].find(';')? + s];
        if bits.len() != members.len() {
            return None;
        }
        for (bit, &i) in bits.chars().zip(members) {
            load[i] = bit == '1';
        }
    }
    let tag = "PI = ";
    let s = body.find(tag)? + tag.len();
    let bits = &body[s..body[s..].find(';')? + s];
    let pi = bits.chars().map(|c| c == '1').collect();
    Some(FilledPattern { load, pi })
}

/// Flop indices per chain, in scan position order.
fn chain_order(netlist: &Netlist) -> Vec<Vec<usize>> {
    let mut chains: Vec<Vec<(u32, usize)>> = Vec::new();
    for (i, f) in netlist.flops().iter().enumerate() {
        if let Some(role) = f.scan {
            let c = role.chain as usize;
            if chains.len() <= c {
                chains.resize(c + 1, Vec::new());
            }
            chains[c].push((role.position, i));
        }
    }
    chains
        .into_iter()
        .map(|mut c| {
            c.sort_unstable();
            c.into_iter().map(|(_, i)| i).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{insert_scan, ScanConfig, TestPattern};
    use scap_netlist::{ClockEdge, NetlistBuilder};

    fn scan_design(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("e");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        for i in 0..n {
            let d = b.add_primary_input(format!("d{i}"));
            let q = b.add_net(format!("q{i}"));
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        let mut netlist = b.finish().unwrap();
        insert_scan(&mut netlist, &ScanConfig::new(3), None);
        netlist
    }

    #[test]
    fn export_round_trips() {
        let n = scan_design(11);
        let mut set = PatternSet::new();
        for k in 0..4usize {
            let filled = FilledPattern {
                load: (0..11).map(|i| (i + k) % 3 == 0).collect(),
                pi: (0..n.primary_inputs().len()).map(|i| i % 2 == 0).collect(),
            };
            set.push(TestPattern::unspecified(&n), filled);
        }
        let text = to_stil(&n, &set);
        assert!(text.contains("STIL 1.0;"));
        for k in 0..4 {
            let parsed = parse_pattern(&n, &text, k).expect("pattern parses");
            assert_eq!(parsed, set.filled[k], "pattern {k}");
        }
        assert!(parse_pattern(&n, &text, 99).is_none());
    }

    #[test]
    fn chains_export_in_position_order() {
        let n = scan_design(6);
        let chains = chain_order(&n);
        assert_eq!(chains.len(), 3);
        for members in &chains {
            // Positions are dense and increasing by construction.
            for (expect, &i) in members.iter().enumerate() {
                assert_eq!(n.flops()[i].scan.unwrap().position as usize, expect);
            }
        }
    }
}
