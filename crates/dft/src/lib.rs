//! Design-for-test infrastructure: scan insertion and test patterns.
//!
//! Replaces the DFT half of the paper's flow (Synopsys DFT Compiler):
//!
//! * [`insert_scan`] — full-scan stitching into a configurable number of
//!   chains, ordered by placement to minimize wirelength, with
//!   falling-edge flops isolated on a dedicated chain (the paper's design
//!   has 22 of them on their own chain),
//! * [`TestPattern`] / [`FilledPattern`] — scan loads with don't-cares and
//!   their fully-specified forms,
//! * [`FillPolicy`] — the TetraMAX fill options the paper compares:
//!   `random` (conventional), `fill0`, `fill1` and `fill-adjacent`,
//! * [`PatternSet`] — an ordered pattern collection with batch conversion
//!   for the 64-way simulators.
//!
//! # Example
//!
//! ```no_run
//! # use scap_netlist::Netlist;
//! # fn demo(netlist: &mut Netlist) {
//! use scap_dft::{insert_scan, ScanConfig};
//! let chains = insert_scan(netlist, &ScanConfig::new(16), None);
//! println!("{} chains, longest {}", chains.num_chains(), chains.max_length());
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
mod fill;
mod pattern;
mod scan;

pub use fill::FillPolicy;
pub use pattern::{FilledPattern, PatternBatch, PatternSet, TestPattern};
pub use scan::{insert_scan, ChainReport, ScanConfig};
