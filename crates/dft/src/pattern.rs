//! Test-pattern representation and batch conversion.

use crate::FillPolicy;
use rand::Rng;
use scap_netlist::{Logic, Netlist};
use serde::{Deserialize, Serialize};

/// A launch-off-capture test pattern before fill: a scan load (one value
/// per flop, X = don't-care) plus held primary-input values.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestPattern {
    /// Scan-load value per flop (by [`FlopId`](scap_netlist::FlopId) index).
    pub load: Vec<Logic>,
    /// Primary-input values, held across both frames.
    pub pi: Vec<Logic>,
}

impl TestPattern {
    /// An all-X pattern for a netlist.
    pub fn unspecified(netlist: &Netlist) -> Self {
        TestPattern {
            load: vec![Logic::X; netlist.num_flops()],
            pi: vec![Logic::X; netlist.primary_inputs().len()],
        }
    }

    /// Number of specified (care) bits across load and PIs.
    pub fn specified_bits(&self) -> usize {
        self.load
            .iter()
            .chain(self.pi.iter())
            .filter(|v| v.is_known())
            .count()
    }

    /// Number of don't-care bits.
    pub fn x_bits(&self) -> usize {
        self.load.len() + self.pi.len() - self.specified_bits()
    }

    /// Fills don't-cares according to `policy`, producing a fully-specified
    /// pattern. `Adjacent` fill follows scan-chain order using the
    /// netlist's scan roles (cells without a role fall back to 0).
    /// PIs are filled with the policy's scalar value (random for `Random`,
    /// 0 otherwise — held PIs are kept quiet in low-power modes).
    pub fn fill(&self, netlist: &Netlist, policy: FillPolicy, rng: &mut impl Rng) -> FilledPattern {
        let mut load: Vec<bool> = Vec::with_capacity(self.load.len());
        match policy {
            FillPolicy::Random => {
                for v in &self.load {
                    load.push(v.to_bool().unwrap_or_else(|| rng.gen()));
                }
            }
            FillPolicy::Zero => {
                for v in &self.load {
                    load.push(v.to_bool().unwrap_or(false));
                }
            }
            FillPolicy::One => {
                for v in &self.load {
                    load.push(v.to_bool().unwrap_or(true));
                }
            }
            FillPolicy::Adjacent => {
                load = self.fill_adjacent(netlist);
            }
        }
        let pi: Vec<bool> = self
            .pi
            .iter()
            .map(|v| {
                v.to_bool().unwrap_or_else(|| match policy {
                    FillPolicy::Random => rng.gen(),
                    FillPolicy::One => true,
                    _ => false,
                })
            })
            .collect();
        FilledPattern { load, pi }
    }

    fn fill_adjacent(&self, netlist: &Netlist) -> Vec<bool> {
        // Group flops by chain, ordered by position; each X copies the
        // nearest preceding care value (or the nearest following one when
        // the chain starts with Xs), default 0.
        let mut out = vec![false; self.load.len()];
        let mut chains: Vec<Vec<(u32, usize)>> = Vec::new();
        let mut chainless: Vec<usize> = Vec::new();
        for (i, f) in netlist.flops().iter().enumerate() {
            match f.scan {
                Some(role) => {
                    let c = role.chain as usize;
                    if chains.len() <= c {
                        chains.resize(c + 1, Vec::new());
                    }
                    chains[c].push((role.position, i));
                }
                None => chainless.push(i),
            }
        }
        for chain in &mut chains {
            chain.sort_unstable();
            let mut last: Option<bool> = None;
            // Forward pass: propagate the previous care value.
            let mut pending: Vec<usize> = Vec::new();
            for &(_, i) in chain.iter() {
                match self.load[i].to_bool() {
                    Some(v) => {
                        for &p in &pending {
                            out[p] = v; // leading Xs take the first care value
                        }
                        pending.clear();
                        out[i] = v;
                        last = Some(v);
                    }
                    None => match last {
                        Some(v) => out[i] = v,
                        None => pending.push(i),
                    },
                }
            }
            // A chain of all-X stays 0.
        }
        for &i in &chainless {
            out[i] = self.load[i].to_bool().unwrap_or(false);
        }
        out
    }
}

/// A fully-specified pattern (after fill).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilledPattern {
    /// Scan-load bit per flop.
    pub load: Vec<bool>,
    /// Primary-input bit per PI.
    pub pi: Vec<bool>,
}

/// Up to 64 filled patterns packed for the bit-parallel simulators.
#[derive(Clone, Debug, Default)]
pub struct PatternBatch {
    /// One word per flop; bit *p* = pattern *p*'s load.
    pub load_words: Vec<u64>,
    /// One word per primary input.
    pub pi_words: Vec<u64>,
    /// Valid-pattern mask (bit *p* set when pattern *p* exists).
    pub valid_mask: u64,
    /// Number of patterns in the batch.
    pub count: usize,
}

impl PatternBatch {
    /// Packs a slice of up to 64 patterns.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len() > 64` or the patterns have inconsistent
    /// widths.
    pub fn pack(patterns: &[FilledPattern]) -> Self {
        assert!(patterns.len() <= 64, "a batch holds at most 64 patterns");
        if patterns.is_empty() {
            return PatternBatch::default();
        }
        let flops = patterns[0].load.len();
        let pis = patterns[0].pi.len();
        let mut load_words = vec![0u64; flops];
        let mut pi_words = vec![0u64; pis];
        for (p, pat) in patterns.iter().enumerate() {
            assert_eq!(pat.load.len(), flops, "inconsistent load width");
            assert_eq!(pat.pi.len(), pis, "inconsistent PI width");
            for (i, &b) in pat.load.iter().enumerate() {
                load_words[i] |= (b as u64) << p;
            }
            for (i, &b) in pat.pi.iter().enumerate() {
                pi_words[i] |= (b as u64) << p;
            }
        }
        let valid_mask = if patterns.len() == 64 {
            !0
        } else {
            (1u64 << patterns.len()) - 1
        };
        PatternBatch {
            load_words,
            pi_words,
            valid_mask,
            count: patterns.len(),
        }
    }
}

/// An ordered collection of filled patterns with their pre-fill sources.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PatternSet {
    /// The patterns as generated (with X bits), parallel to `filled`.
    pub source: Vec<TestPattern>,
    /// The fully-specified forms actually applied.
    pub filled: Vec<FilledPattern>,
    /// Fill policy used.
    pub fill: Option<FillPolicy>,
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.filled.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.filled.is_empty()
    }

    /// Appends a pattern pair.
    pub fn push(&mut self, source: TestPattern, filled: FilledPattern) {
        self.source.push(source);
        self.filled.push(filled);
    }

    /// Appends all patterns of another set.
    pub fn extend(&mut self, other: PatternSet) {
        self.source.extend(other.source);
        self.filled.extend(other.filled);
    }

    /// Iterates 64-pattern batches for the bit-parallel simulators,
    /// yielding `(first_pattern_index, batch)`.
    pub fn batches(&self) -> impl Iterator<Item = (usize, PatternBatch)> + '_ {
        self.filled
            .chunks(64)
            .enumerate()
            .map(|(i, chunk)| (i * 64, PatternBatch::pack(chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scap_netlist::{ClockEdge, NetlistBuilder, ScanRole};

    fn netlist_with_chain(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("p");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        for i in 0..n {
            let d = b.add_primary_input(format!("d{i}"));
            let q = b.add_net(format!("q{i}"));
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        let mut nl = b.finish().unwrap();
        for i in 0..n {
            nl.set_scan_role(
                scap_netlist::FlopId::new(i as u32),
                ScanRole {
                    chain: 0,
                    position: i as u32,
                },
            );
        }
        nl
    }

    #[test]
    fn zero_and_one_fill() {
        let nl = netlist_with_chain(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut p = TestPattern::unspecified(&nl);
        p.load[1] = Logic::One;
        let f0 = p.fill(&nl, FillPolicy::Zero, &mut rng);
        assert_eq!(f0.load, vec![false, true, false, false]);
        let f1 = p.fill(&nl, FillPolicy::One, &mut rng);
        assert_eq!(f1.load, vec![true, true, true, true]);
    }

    #[test]
    fn random_fill_preserves_care_bits() {
        let nl = netlist_with_chain(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut p = TestPattern::unspecified(&nl);
        p.load[5] = Logic::Zero;
        p.load[9] = Logic::One;
        for _ in 0..10 {
            let f = p.fill(&nl, FillPolicy::Random, &mut rng);
            assert!(!f.load[5]);
            assert!(f.load[9]);
        }
    }

    #[test]
    fn adjacent_fill_repeats_last_care_value() {
        let nl = netlist_with_chain(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut p = TestPattern::unspecified(&nl);
        // chain order = flop order here.
        p.load[1] = Logic::One;
        p.load[4] = Logic::Zero;
        let f = p.fill(&nl, FillPolicy::Adjacent, &mut rng);
        // leading X takes the first care value (1); 2,3 repeat 1; 5 repeats 0.
        assert_eq!(f.load, vec![true, true, true, true, false, false]);
    }

    #[test]
    fn adjacent_fill_all_x_chain_is_zero() {
        let nl = netlist_with_chain(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = TestPattern::unspecified(&nl);
        let f = p.fill(&nl, FillPolicy::Adjacent, &mut rng);
        assert_eq!(f.load, vec![false; 3]);
    }

    #[test]
    fn specified_bit_accounting() {
        let nl = netlist_with_chain(4);
        let mut p = TestPattern::unspecified(&nl);
        assert_eq!(p.specified_bits(), 0);
        assert_eq!(p.x_bits(), 4 + nl.primary_inputs().len());
        p.load[0] = Logic::One;
        p.pi[0] = Logic::Zero;
        assert_eq!(p.specified_bits(), 2);
    }

    #[test]
    fn batch_packing_round_trips() {
        let pats = vec![
            FilledPattern {
                load: vec![true, false],
                pi: vec![false],
            },
            FilledPattern {
                load: vec![false, true],
                pi: vec![true],
            },
        ];
        let batch = PatternBatch::pack(&pats);
        assert_eq!(batch.count, 2);
        assert_eq!(batch.valid_mask, 0b11);
        assert_eq!(batch.load_words, vec![0b01, 0b10]);
        assert_eq!(batch.pi_words, vec![0b10]);
    }

    #[test]
    fn pattern_set_batches_cover_all() {
        let mut set = PatternSet::new();
        let nl = netlist_with_chain(2);
        for i in 0..130usize {
            set.push(
                TestPattern::unspecified(&nl),
                FilledPattern {
                    load: vec![i % 2 == 0, false],
                    pi: vec![],
                },
            );
        }
        let batches: Vec<_> = set.batches().collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0, 0);
        assert_eq!(batches[2].0, 128);
        assert_eq!(batches[2].1.count, 2);
        assert_eq!(batches[2].1.valid_mask, 0b11);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_batch_rejected() {
        let pats = vec![
            FilledPattern {
                load: vec![],
                pi: vec![]
            };
            65
        ];
        let _ = PatternBatch::pack(&pats);
    }
}
