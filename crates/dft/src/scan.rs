//! Full-scan chain construction.

use scap_netlist::{ClockEdge, Floorplan, FlopId, Netlist, ScanRole};

/// Scan-insertion configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanConfig {
    /// Total number of scan chains (the paper's design uses 16). One chain
    /// is reserved for falling-edge flops when any exist.
    pub num_chains: u16,
}

impl ScanConfig {
    /// Creates a configuration with `num_chains` chains.
    ///
    /// # Panics
    ///
    /// Panics if `num_chains == 0`.
    pub fn new(num_chains: u16) -> Self {
        assert!(num_chains > 0, "at least one scan chain is required");
        ScanConfig { num_chains }
    }
}

/// Summary of the stitched chains.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainReport {
    /// Flop count per chain, indexed by chain number.
    pub lengths: Vec<u32>,
    /// The chain reserved for falling-edge flops, if any.
    pub negative_edge_chain: Option<u16>,
}

impl ChainReport {
    /// Number of chains actually used.
    pub fn num_chains(&self) -> usize {
        self.lengths.len()
    }

    /// Longest chain (shift cycles per load).
    pub fn max_length(&self) -> u32 {
        self.lengths.iter().copied().max().unwrap_or(0)
    }

    /// Total scan cells.
    pub fn total_cells(&self) -> u32 {
        self.lengths.iter().sum()
    }
}

/// Performs full-scan insertion: every flop gets a [`ScanRole`].
///
/// Chains are **per clock domain and per edge**: every chain holds flops of
/// exactly one `(clock, edge)` group, so a single shift clock waveform
/// drives each chain (the structural precondition the `SCAN003` lint rule
/// checks). Rising-edge groups share the data chains, allocated
/// proportionally to group size (every group gets at least one chain);
/// falling-edge groups — 22 flops in the paper's design — each get one
/// dedicated chain at the end so the shift clocking stays clean. When a
/// floorplan is provided, flops are first sorted in a row-major snake order
/// so consecutive chain positions are physically adjacent (the paper's
/// "scan cell ordering to minimize scan chain wirelength").
///
/// `config.num_chains` is a target: if the design has more `(clock, edge)`
/// groups than chains, extra chains are appended so no group is split
/// across clock domains.
pub fn insert_scan(
    netlist: &mut Netlist,
    config: &ScanConfig,
    floorplan: Option<&Floorplan>,
) -> ChainReport {
    // Group flops by (clock, edge), rising groups first (by clock id),
    // then falling groups (by clock id) so negative-edge chains sit last.
    let mut groups: Vec<((u8, u32), Vec<FlopId>)> = Vec::new();
    for (i, f) in netlist.flops().iter().enumerate() {
        let edge_rank = match f.edge {
            ClockEdge::Rising => 0u8,
            ClockEdge::Falling => 1u8,
        };
        let key = (edge_rank, f.clock.raw());
        let id = FlopId::new(i as u32);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(id),
            None => groups.push((key, vec![id])),
        }
    }
    groups.sort_by_key(|(k, _)| *k);
    if let Some(fp) = floorplan {
        let key = |f: &FlopId| {
            let p = fp.placement.flop(*f);
            // Snake order: 100 µm rows, alternate direction per row.
            let row = (p.y / 100.0).floor() as i64;
            let x_key = if row % 2 == 0 { p.x } else { -p.x };
            (row, (x_key * 1000.0) as i64)
        };
        for (_, members) in &mut groups {
            members.sort_by_key(key);
        }
    }

    let num_rising = groups.iter().filter(|((e, _), _)| *e == 0).count();
    let num_falling = groups.len() - num_rising;
    // Every group needs one chain; falling groups get exactly one each.
    let total = (config.num_chains as usize).max(groups.len());
    let mut alloc: Vec<usize> = groups.iter().map(|_| 1).collect();
    let mut spare = total - num_falling - num_rising;
    // Hand spare chains to rising groups greedily by current per-chain
    // load (deterministic D'Hondt-style rounding), never giving a group
    // more chains than it has flops.
    while spare > 0 {
        let best = (0..num_rising)
            .filter(|&g| alloc[g] < groups[g].1.len())
            .max_by(|&a, &b| {
                let la = groups[a].1.len() as f64 / alloc[a] as f64;
                let lb = groups[b].1.len() as f64 / alloc[b] as f64;
                la.partial_cmp(&lb).unwrap().then(b.cmp(&a))
            });
        let Some(g) = best else {
            break; // every rising group saturated; leave the rest unused
        };
        alloc[g] += 1;
        spare -= 1;
    }

    let mut lengths = vec![0u32; total];
    let mut negative_edge_chain = None;
    let mut base: u16 = 0;
    for (g, ((edge_rank, _), members)) in groups.iter().enumerate() {
        let chains = alloc[g];
        if *edge_rank == 1 && negative_edge_chain.is_none() {
            negative_edge_chain = Some(base);
        }
        // Contiguous split keeps placement order within each chain.
        let per_chain = members.len().div_ceil(chains).max(1);
        for (i, &f) in members.iter().enumerate() {
            let chain = base + (i / per_chain).min(chains - 1) as u16;
            let position = lengths[chain as usize];
            netlist.set_scan_role(f, ScanRole { chain, position });
            lengths[chain as usize] += 1;
        }
        base += chains as u16;
    }
    lengths.truncate(base as usize);
    while lengths.last() == Some(&0) {
        lengths.pop();
    }
    ChainReport {
        lengths,
        negative_edge_chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, NetlistBuilder};

    fn flops(n_pos: usize, n_neg: usize) -> Netlist {
        let mut b = NetlistBuilder::new("s");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        for i in 0..(n_pos + n_neg) {
            let d = b.add_primary_input(format!("d{i}"));
            let q = b.add_net(format!("q{i}"));
            let edge = if i < n_pos {
                ClockEdge::Rising
            } else {
                ClockEdge::Falling
            };
            b.add_flop(format!("ff{i}"), d, q, clk, edge, blk).unwrap();
        }
        // Keep at least one gate so the design is non-degenerate.
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_primary_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn every_flop_gets_a_role() {
        let mut n = flops(100, 0);
        let report = insert_scan(&mut n, &ScanConfig::new(4), None);
        assert_eq!(report.total_cells(), 100);
        for f in n.flops() {
            assert!(f.scan.is_some());
        }
    }

    #[test]
    fn chains_are_balanced() {
        let mut n = flops(100, 0);
        let report = insert_scan(&mut n, &ScanConfig::new(4), None);
        assert_eq!(report.num_chains(), 4);
        assert!(report.max_length() <= 26, "{:?}", report.lengths);
    }

    #[test]
    fn negative_edge_flops_isolated() {
        let mut n = flops(50, 5);
        let report = insert_scan(&mut n, &ScanConfig::new(4), None);
        let neg_chain = report.negative_edge_chain.unwrap();
        assert_eq!(neg_chain, 3);
        assert_eq!(report.lengths[neg_chain as usize], 5);
        for f in n.flops() {
            let role = f.scan.unwrap();
            match f.edge {
                ClockEdge::Falling => assert_eq!(role.chain, neg_chain),
                ClockEdge::Rising => assert_ne!(role.chain, neg_chain),
            }
        }
    }

    #[test]
    fn positions_are_dense_per_chain() {
        let mut n = flops(37, 3);
        let report = insert_scan(&mut n, &ScanConfig::new(5), None);
        for chain in 0..report.num_chains() {
            let mut positions: Vec<u32> = n
                .flops()
                .iter()
                .filter_map(|f| f.scan)
                .filter(|r| r.chain as usize == chain)
                .map(|r| r.position)
                .collect();
            positions.sort_unstable();
            for (expect, &got) in positions.iter().enumerate() {
                assert_eq!(expect as u32, got);
            }
        }
    }

    #[test]
    fn single_chain_design() {
        let mut n = flops(10, 0);
        let report = insert_scan(&mut n, &ScanConfig::new(1), None);
        assert_eq!(report.num_chains(), 1);
        assert_eq!(report.max_length(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one scan chain")]
    fn zero_chains_rejected() {
        let _ = ScanConfig::new(0);
    }

    fn two_domains(n_a: usize, n_b: usize) -> Netlist {
        let mut b = NetlistBuilder::new("s");
        let blk = b.add_block("B1");
        let clka = b.add_clock_domain("clka", 100e6);
        let clkb = b.add_clock_domain("clkb", 50e6);
        for i in 0..(n_a + n_b) {
            let d = b.add_primary_input(format!("d{i}"));
            let q = b.add_net(format!("q{i}"));
            let clk = if i < n_a { clka } else { clkb };
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_primary_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn chains_never_mix_clock_domains() {
        let mut n = two_domains(60, 20);
        let report = insert_scan(&mut n, &ScanConfig::new(8), None);
        assert_eq!(report.num_chains(), 8);
        for chain in 0..report.num_chains() as u16 {
            let clocks: std::collections::HashSet<_> = n
                .flops()
                .iter()
                .filter(|f| f.scan.unwrap().chain == chain)
                .map(|f| f.clock)
                .collect();
            assert!(clocks.len() <= 1, "chain {chain} mixes domains");
        }
        // Allocation tracks group size: the 60-flop domain gets more
        // chains than the 20-flop one.
        let chains_of = |clk: u32| {
            let clk = scap_netlist::ClockId::new(clk);
            n.flops()
                .iter()
                .filter(|f| f.clock == clk)
                .map(|f| f.scan.unwrap().chain)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(chains_of(0) > chains_of(1));
    }

    #[test]
    fn more_domains_than_chains_extends_chain_count() {
        let mut b = NetlistBuilder::new("s");
        let blk = b.add_block("B1");
        for i in 0..3 {
            let clk = b.add_clock_domain(format!("clk{i}"), 100e6);
            let d = b.add_primary_input(format!("d{i}"));
            let q = b.add_net(format!("q{i}"));
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_primary_output(y);
        let mut n = b.finish().unwrap();
        let report = insert_scan(&mut n, &ScanConfig::new(1), None);
        assert_eq!(report.num_chains(), 3, "{:?}", report.lengths);
        assert_eq!(report.total_cells(), 3);
    }
}
