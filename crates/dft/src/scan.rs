//! Full-scan chain construction.

use scap_netlist::{ClockEdge, Floorplan, FlopId, Netlist, ScanRole};

/// Scan-insertion configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanConfig {
    /// Total number of scan chains (the paper's design uses 16). One chain
    /// is reserved for falling-edge flops when any exist.
    pub num_chains: u16,
}

impl ScanConfig {
    /// Creates a configuration with `num_chains` chains.
    ///
    /// # Panics
    ///
    /// Panics if `num_chains == 0`.
    pub fn new(num_chains: u16) -> Self {
        assert!(num_chains > 0, "at least one scan chain is required");
        ScanConfig { num_chains }
    }
}

/// Summary of the stitched chains.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainReport {
    /// Flop count per chain, indexed by chain number.
    pub lengths: Vec<u32>,
    /// The chain reserved for falling-edge flops, if any.
    pub negative_edge_chain: Option<u16>,
}

impl ChainReport {
    /// Number of chains actually used.
    pub fn num_chains(&self) -> usize {
        self.lengths.len()
    }

    /// Longest chain (shift cycles per load).
    pub fn max_length(&self) -> u32 {
        self.lengths.iter().copied().max().unwrap_or(0)
    }

    /// Total scan cells.
    pub fn total_cells(&self) -> u32 {
        self.lengths.iter().sum()
    }
}

/// Performs full-scan insertion: every flop gets a [`ScanRole`].
///
/// Rising-edge flops are distributed over the available chains balanced by
/// count; when a floorplan is provided, flops are first sorted in a
/// row-major snake order so that consecutive chain positions are physically
/// adjacent (the paper's "scan cell ordering to minimize scan chain
/// wirelength"). Falling-edge flops — 22 in the paper's design — go to a
/// dedicated final chain so the shift clocking stays clean.
pub fn insert_scan(
    netlist: &mut Netlist,
    config: &ScanConfig,
    floorplan: Option<&Floorplan>,
) -> ChainReport {
    let mut rising: Vec<FlopId> = Vec::new();
    let mut falling: Vec<FlopId> = Vec::new();
    for (i, f) in netlist.flops().iter().enumerate() {
        let id = FlopId::new(i as u32);
        match f.edge {
            ClockEdge::Rising => rising.push(id),
            ClockEdge::Falling => falling.push(id),
        }
    }
    if let Some(fp) = floorplan {
        let key = |f: &FlopId| {
            let p = fp.placement.flop(*f);
            // Snake order: 100 µm rows, alternate direction per row.
            let row = (p.y / 100.0).floor() as i64;
            let x_key = if row % 2 == 0 { p.x } else { -p.x };
            (row, (x_key * 1000.0) as i64)
        };
        rising.sort_by_key(key);
        falling.sort_by_key(key);
    }
    let has_neg = !falling.is_empty();
    let data_chains = if has_neg && config.num_chains > 1 {
        config.num_chains - 1
    } else {
        config.num_chains
    };
    let mut lengths = vec![0u32; config.num_chains as usize];
    // Contiguous split keeps placement order within each chain.
    let per_chain = rising.len().div_ceil(data_chains as usize).max(1);
    for (i, &f) in rising.iter().enumerate() {
        let chain = (i / per_chain).min(data_chains as usize - 1) as u16;
        let position = lengths[chain as usize];
        netlist.set_scan_role(f, ScanRole { chain, position });
        lengths[chain as usize] += 1;
    }
    let mut negative_edge_chain = None;
    if has_neg {
        let chain = config.num_chains - 1;
        negative_edge_chain = Some(chain);
        for &f in &falling {
            let position = lengths[chain as usize];
            netlist.set_scan_role(f, ScanRole { chain, position });
            lengths[chain as usize] += 1;
        }
    }
    while lengths.last() == Some(&0) {
        lengths.pop();
    }
    ChainReport {
        lengths,
        negative_edge_chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, NetlistBuilder};

    fn flops(n_pos: usize, n_neg: usize) -> Netlist {
        let mut b = NetlistBuilder::new("s");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        for i in 0..(n_pos + n_neg) {
            let d = b.add_primary_input(format!("d{i}"));
            let q = b.add_net(format!("q{i}"));
            let edge = if i < n_pos {
                ClockEdge::Rising
            } else {
                ClockEdge::Falling
            };
            b.add_flop(format!("ff{i}"), d, q, clk, edge, blk).unwrap();
        }
        // Keep at least one gate so the design is non-degenerate.
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_primary_output(y);
        b.finish().unwrap()
    }

    #[test]
    fn every_flop_gets_a_role() {
        let mut n = flops(100, 0);
        let report = insert_scan(&mut n, &ScanConfig::new(4), None);
        assert_eq!(report.total_cells(), 100);
        for f in n.flops() {
            assert!(f.scan.is_some());
        }
    }

    #[test]
    fn chains_are_balanced() {
        let mut n = flops(100, 0);
        let report = insert_scan(&mut n, &ScanConfig::new(4), None);
        assert_eq!(report.num_chains(), 4);
        assert!(report.max_length() <= 26, "{:?}", report.lengths);
    }

    #[test]
    fn negative_edge_flops_isolated() {
        let mut n = flops(50, 5);
        let report = insert_scan(&mut n, &ScanConfig::new(4), None);
        let neg_chain = report.negative_edge_chain.unwrap();
        assert_eq!(neg_chain, 3);
        assert_eq!(report.lengths[neg_chain as usize], 5);
        for f in n.flops() {
            let role = f.scan.unwrap();
            match f.edge {
                ClockEdge::Falling => assert_eq!(role.chain, neg_chain),
                ClockEdge::Rising => assert_ne!(role.chain, neg_chain),
            }
        }
    }

    #[test]
    fn positions_are_dense_per_chain() {
        let mut n = flops(37, 3);
        let report = insert_scan(&mut n, &ScanConfig::new(5), None);
        for chain in 0..report.num_chains() {
            let mut positions: Vec<u32> = n
                .flops()
                .iter()
                .filter_map(|f| f.scan)
                .filter(|r| r.chain as usize == chain)
                .map(|r| r.position)
                .collect();
            positions.sort_unstable();
            for (expect, &got) in positions.iter().enumerate() {
                assert_eq!(expect as u32, got);
            }
        }
    }

    #[test]
    fn single_chain_design() {
        let mut n = flops(10, 0);
        let report = insert_scan(&mut n, &ScanConfig::new(1), None);
        assert_eq!(report.num_chains(), 1);
        assert_eq!(report.max_length(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one scan chain")]
    fn zero_chains_rejected() {
        let _ = ScanConfig::new(0);
    }
}
