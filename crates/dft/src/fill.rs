//! Don't-care fill policies (the TetraMAX `-fill` options, paper §3.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How unspecified scan-load bits are filled before pattern application.
///
/// The paper's experiment matrix:
///
/// * [`FillPolicy::Random`] — the conventional default; maximizes
///   fortuitous detection but also switching activity (high SCAP),
/// * [`FillPolicy::Zero`] — the option that "provided the best results"
///   for launch-to-capture power in the paper,
/// * [`FillPolicy::One`] — symmetric alternative,
/// * [`FillPolicy::Adjacent`] — each X takes the value of the nearest
///   preceding care bit in its scan chain; minimizes *shift* switching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FillPolicy {
    /// Pseudorandom fill (conventional ATPG).
    Random,
    /// Fill all don't-cares with 0 (the paper's chosen low-power option).
    Zero,
    /// Fill all don't-cares with 1.
    One,
    /// Repeat the most recent care value along each scan chain.
    Adjacent,
}

impl FillPolicy {
    /// All policies, for sweep experiments.
    pub const ALL: [FillPolicy; 4] = [
        FillPolicy::Random,
        FillPolicy::Zero,
        FillPolicy::One,
        FillPolicy::Adjacent,
    ];
}

impl fmt::Display for FillPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FillPolicy::Random => "random-fill",
            FillPolicy::Zero => "fill-0",
            FillPolicy::One => "fill-1",
            FillPolicy::Adjacent => "fill-adjacent",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(FillPolicy::Zero.to_string(), "fill-0");
        assert_eq!(FillPolicy::Random.to_string(), "random-fill");
        assert_eq!(FillPolicy::Adjacent.to_string(), "fill-adjacent");
        assert_eq!(FillPolicy::One.to_string(), "fill-1");
    }

    #[test]
    fn all_lists_every_policy_once() {
        let mut seen = std::collections::HashSet::new();
        for p in FillPolicy::ALL {
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len(), 4);
    }
}
