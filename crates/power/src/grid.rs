//! The on-chip power-distribution mesh.

use crate::solve::{CgScratch, ReducedSystem};
use scap_netlist::{Floorplan, FlopId, GateId, Netlist, Point};
use serde::{Deserialize, Serialize};

/// Configuration of one power mesh (used for both the VDD and VSS
/// networks, which the paper's chip routes symmetrically).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Mesh nodes per side (the grid is `nodes_per_side²`).
    pub nodes_per_side: usize,
    /// Resistance of one mesh branch, Ω.
    pub branch_resistance_ohm: f64,
    /// Number of supply pads distributed around the die periphery
    /// (the paper's design has 37 VDD and 37 VSS pads).
    pub num_pads: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            nodes_per_side: 24,
            branch_resistance_ohm: 1.0,
            num_pads: 37,
        }
    }
}

/// A resistive power mesh bound to a die outline.
///
/// The same structure serves the VDD and VSS networks: `solve` maps cell
/// currents to the voltage *drop* at every node (for VSS, the drop is the
/// ground bounce).
///
/// # Example
///
/// ```
/// use scap_power::{GridConfig, PowerGrid};
/// use scap_netlist::{Die, Point};
///
/// let grid = PowerGrid::new(Die::square(1000.0), GridConfig::default());
/// let mut currents = vec![0.0; grid.num_nodes()];
/// currents[grid.node_of(Point::new(500.0, 500.0))] = 0.05; // 50 mA at center
/// let drops = grid.solve(&currents);
/// assert!(drops.iter().cloned().fold(0.0, f64::max) > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct PowerGrid {
    config: GridConfig,
    die: scap_netlist::Die,
    pinned: Vec<bool>,
    /// The reduced Laplacian, assembled once here and shared by every
    /// solve (assembly used to dominate small-grid solve time).
    system: ReducedSystem,
}

impl PowerGrid {
    /// Builds a mesh over the die with pads spread along the periphery.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_side < 2` or `num_pads == 0`.
    pub fn new(die: scap_netlist::Die, config: GridConfig) -> Self {
        let n = config.nodes_per_side;
        assert!(n >= 2, "mesh needs at least 2 nodes per side");
        assert!(config.num_pads > 0, "at least one pad required");
        let branches = mesh_branches(&config);
        // Periphery nodes in ring order, pads evenly spaced along the ring.
        let mut ring: Vec<usize> = Vec::new();
        for x in 0..n {
            ring.push(x); // bottom
        }
        for y in 1..n {
            ring.push(y * n + (n - 1)); // right
        }
        for x in (0..n - 1).rev() {
            ring.push((n - 1) * n + x); // top
        }
        for y in (1..n - 1).rev() {
            ring.push(y * n); // left
        }
        let mut pinned = vec![false; n * n];
        let pads = config.num_pads.min(ring.len());
        for k in 0..pads {
            let idx = ring[(k * ring.len()) / pads];
            pinned[idx] = true;
        }
        let system = ReducedSystem::build(n * n, &branches, &pinned);
        PowerGrid {
            config,
            die,
            pinned,
            system,
        }
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        let n = self.config.nodes_per_side;
        n * n
    }

    /// Nodes per side.
    pub fn nodes_per_side(&self) -> usize {
        self.config.nodes_per_side
    }

    /// The configuration used to build the grid.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Maps a die location to its nearest mesh node.
    pub fn node_of(&self, p: Point) -> usize {
        let n = self.config.nodes_per_side;
        let o = self.die.outline;
        let fx = ((p.x - o.min.x) / o.width().max(1e-9)) * (n as f64 - 1.0);
        let fy = ((p.y - o.min.y) / o.height().max(1e-9)) * (n as f64 - 1.0);
        let x = fx.round().clamp(0.0, n as f64 - 1.0) as usize;
        let y = fy.round().clamp(0.0, n as f64 - 1.0) as usize;
        y * n + x
    }

    /// The die location of a mesh node (for plotting).
    pub fn location_of(&self, node: usize) -> Point {
        let n = self.config.nodes_per_side;
        let o = self.die.outline;
        let x = node % n;
        let y = node / n;
        Point::new(
            o.min.x + o.width() * x as f64 / (n as f64 - 1.0),
            o.min.y + o.height() * y as f64 / (n as f64 - 1.0),
        )
    }

    /// Whether a node is a pad (ideal supply).
    pub fn is_pad(&self, node: usize) -> bool {
        self.pinned[node]
    }

    /// Pad flags for every node, indexable by node id.
    pub fn pads(&self) -> &[bool] {
        &self.pinned
    }

    /// The assembled reduced Laplacian as `(row, col, value)` triplets and
    /// its dimension — the exact matrix every CG solve runs against. Lets
    /// the `GRID003` lint rule verify symmetry and diagonal dominance of
    /// the solver input without reaching into the solver.
    pub fn system_triplets(&self) -> (usize, Vec<(u32, u32, f64)>) {
        self.system.triplets()
    }

    /// The mesh branch list as `(node_a, node_b, conductance_S)` triples —
    /// the input the reduced Laplacian was assembled from. Regenerated
    /// from the configuration (the grid itself only retains the assembled
    /// CSR system); used by the `GRID00x` lint rules, which re-derive
    /// connectivity and the stamped matrix independently of the solver.
    pub fn branches(&self) -> Vec<(u32, u32, f64)> {
        mesh_branches(&self.config)
    }

    /// Solves the mesh for the given per-node current draw (A), returning
    /// the voltage drop (V) at every node.
    pub fn solve(&self, node_currents: &[f64]) -> Vec<f64> {
        self.system.solve(node_currents)
    }

    /// A reusable solver context over this mesh: keeps the CG work
    /// vectors (and optionally the previous solution) alive across
    /// solves, eliminating the per-solve allocations of
    /// [`PowerGrid::solve`]. Create one per thread in hot loops.
    pub fn solver(&self) -> GridSolver<'_> {
        GridSolver {
            system: &self.system,
            x: Vec::new(),
            scratch: CgScratch::new(),
            last_iterations: 0,
        }
    }

    /// Stamps per-instance currents onto mesh nodes.
    ///
    /// # Panics
    ///
    /// Panics if the slices don't match the netlist.
    pub fn stamp(
        &self,
        netlist: &Netlist,
        floorplan: &Floorplan,
        gate_current_a: &[f64],
        flop_current_a: &[f64],
    ) -> Vec<f64> {
        assert_eq!(gate_current_a.len(), netlist.num_gates());
        assert_eq!(flop_current_a.len(), netlist.num_flops());
        let mut node = vec![0.0; self.num_nodes()];
        for (i, &c) in gate_current_a.iter().enumerate() {
            if c != 0.0 {
                node[self.node_of(floorplan.placement.gate(GateId::new(i as u32)))] += c;
            }
        }
        for (i, &c) in flop_current_a.iter().enumerate() {
            if c != 0.0 {
                node[self.node_of(floorplan.placement.flop(FlopId::new(i as u32)))] += c;
            }
        }
        node
    }
}

/// Branch list of a regular mesh: horizontal and vertical neighbor links,
/// each with the configured branch conductance.
fn mesh_branches(config: &GridConfig) -> Vec<(u32, u32, f64)> {
    let n = config.nodes_per_side;
    let g = 1.0 / config.branch_resistance_ohm;
    let mut branches = Vec::with_capacity(2 * n * n);
    for y in 0..n {
        for x in 0..n {
            let i = (y * n + x) as u32;
            if x + 1 < n {
                branches.push((i, i + 1, g));
            }
            if y + 1 < n {
                branches.push((i, i + n as u32, g));
            }
        }
    }
    branches
}

/// A solver context bound to one [`PowerGrid`], holding reusable CG work
/// vectors and the previous solution for warm starts.
///
/// [`GridSolver::solve`] is bit-identical to [`PowerGrid::solve`] — only
/// the allocations are reused, not any numeric state — so it is safe in
/// deterministic parallel loops (one solver per worker).
/// [`GridSolver::solve_warm`] additionally seeds CG from the previous
/// solution: it converges to the same tolerance but through different
/// iterates, so results match cold start only within the solve tolerance
/// (1e-8 relative residual), and depend on solve order. Use it only in
/// explicitly serial contexts (e.g. stepping time windows of one
/// pattern).
#[derive(Clone, Debug)]
pub struct GridSolver<'g> {
    system: &'g ReducedSystem,
    x: Vec<f64>,
    scratch: CgScratch,
    last_iterations: usize,
}

impl GridSolver<'_> {
    /// Cold-start solve with reused buffers; bit-identical to
    /// [`PowerGrid::solve`].
    pub fn solve(&mut self, node_currents: &[f64]) -> Vec<f64> {
        self.last_iterations =
            self.system
                .solve_into(node_currents, &mut self.x, false, &mut self.scratch);
        self.system.scatter(&self.x)
    }

    /// Warm-start solve from the previous solution (the first call is a
    /// cold start). See the type docs for the determinism caveat.
    pub fn solve_warm(&mut self, node_currents: &[f64]) -> Vec<f64> {
        self.last_iterations =
            self.system
                .solve_into(node_currents, &mut self.x, true, &mut self.scratch);
        self.system.scatter(&self.x)
    }

    /// CG iterations spent by the most recent solve.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::Die;

    fn grid() -> PowerGrid {
        PowerGrid::new(Die::square(1000.0), GridConfig::default())
    }

    #[test]
    fn center_drop_exceeds_periphery_drop() {
        let g = grid();
        // Uniform current everywhere.
        let currents = vec![1e-4; g.num_nodes()];
        let drops = g.solve(&currents);
        let center = drops[g.node_of(Point::new(500.0, 500.0))];
        let corner_area = drops[g.node_of(Point::new(40.0, 40.0))];
        assert!(
            center > corner_area,
            "center {center} vs periphery {corner_area}"
        );
    }

    #[test]
    fn pads_have_zero_drop() {
        let g = grid();
        let currents = vec![1e-4; g.num_nodes()];
        let drops = g.solve(&currents);
        let mut pad_count = 0;
        for (i, d) in drops.iter().enumerate() {
            if g.is_pad(i) {
                pad_count += 1;
                assert_eq!(*d, 0.0);
            }
        }
        assert_eq!(pad_count, 37);
    }

    #[test]
    fn node_mapping_round_trips() {
        let g = grid();
        for &node in &[0usize, 5, 100, g.num_nodes() - 1] {
            let p = g.location_of(node);
            assert_eq!(g.node_of(p), node);
        }
    }

    #[test]
    fn out_of_die_points_clamp() {
        let g = grid();
        assert_eq!(g.node_of(Point::new(-50.0, -50.0)), 0);
        assert_eq!(g.node_of(Point::new(2000.0, 2000.0)), g.num_nodes() - 1);
    }

    /// The reusable solver's cold-start path returns exactly what
    /// `PowerGrid::solve` returns, across repeated solves with different
    /// right-hand sides.
    #[test]
    fn grid_solver_cold_start_is_bit_identical() {
        let g = grid();
        let mut solver = g.solver();
        for case in 0..3 {
            let currents: Vec<f64> = (0..g.num_nodes())
                .map(|i| 1e-5 * ((i + case) % 11) as f64)
                .collect();
            let reference = g.solve(&currents);
            let reused = solver.solve(&currents);
            for (a, b) in reused.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case}");
            }
        }
    }

    /// Warm-starting across similar right-hand sides stays within the
    /// solve tolerance of cold start and spends fewer (or equal) CG
    /// iterations.
    #[test]
    fn grid_solver_warm_start_tracks_cold_start() {
        let g = grid();
        let base: Vec<f64> = (0..g.num_nodes()).map(|i| 1e-5 * (i % 7) as f64).collect();
        let mut warm_solver = g.solver();
        warm_solver.solve(&base);
        let cold_reference = g.solver().solve(&base);
        let scale = cold_reference.iter().cloned().fold(0.0, f64::max);

        let perturbed: Vec<f64> = base.iter().map(|v| v * 1.02).collect();
        let warm = warm_solver.solve_warm(&perturbed);
        let warm_iters = warm_solver.last_iterations();
        let mut cold_solver = g.solver();
        let cold = cold_solver.solve(&perturbed);
        let cold_iters = cold_solver.last_iterations();
        for (w, c) in warm.iter().zip(&cold) {
            assert!(
                (w - c).abs() <= 1e-6 * scale.max(1e-12),
                "warm {w} cold {c}"
            );
        }
        assert!(warm_iters <= cold_iters, "{warm_iters} vs {cold_iters}");
    }

    #[test]
    fn halving_resistance_halves_drops() {
        let die = Die::square(1000.0);
        let g1 = PowerGrid::new(die, GridConfig::default());
        let g2 = PowerGrid::new(
            die,
            GridConfig {
                branch_resistance_ohm: 0.5,
                ..GridConfig::default()
            },
        );
        let currents = vec![1e-4; g1.num_nodes()];
        let d1 = g1.solve(&currents);
        let d2 = g2.solve(&currents);
        let m1: f64 = d1.iter().cloned().fold(0.0, f64::max);
        let m2: f64 = d2.iter().cloned().fold(0.0, f64::max);
        assert!((m1 - 2.0 * m2).abs() < 0.05 * m1, "{m1} vs {m2}");
    }
}
