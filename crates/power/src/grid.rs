//! The on-chip power-distribution mesh.

use crate::solve::solve_cg;
use scap_netlist::{Floorplan, FlopId, GateId, Netlist, Point};
use serde::{Deserialize, Serialize};

/// Configuration of one power mesh (used for both the VDD and VSS
/// networks, which the paper's chip routes symmetrically).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Mesh nodes per side (the grid is `nodes_per_side²`).
    pub nodes_per_side: usize,
    /// Resistance of one mesh branch, Ω.
    pub branch_resistance_ohm: f64,
    /// Number of supply pads distributed around the die periphery
    /// (the paper's design has 37 VDD and 37 VSS pads).
    pub num_pads: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            nodes_per_side: 24,
            branch_resistance_ohm: 1.0,
            num_pads: 37,
        }
    }
}

/// A resistive power mesh bound to a die outline.
///
/// The same structure serves the VDD and VSS networks: `solve` maps cell
/// currents to the voltage *drop* at every node (for VSS, the drop is the
/// ground bounce).
///
/// # Example
///
/// ```
/// use scap_power::{GridConfig, PowerGrid};
/// use scap_netlist::{Die, Point};
///
/// let grid = PowerGrid::new(Die::square(1000.0), GridConfig::default());
/// let mut currents = vec![0.0; grid.num_nodes()];
/// currents[grid.node_of(Point::new(500.0, 500.0))] = 0.05; // 50 mA at center
/// let drops = grid.solve(&currents);
/// assert!(drops.iter().cloned().fold(0.0, f64::max) > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct PowerGrid {
    config: GridConfig,
    die: scap_netlist::Die,
    branches: Vec<(u32, u32, f64)>,
    pinned: Vec<bool>,
}

impl PowerGrid {
    /// Builds a mesh over the die with pads spread along the periphery.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_side < 2` or `num_pads == 0`.
    pub fn new(die: scap_netlist::Die, config: GridConfig) -> Self {
        let n = config.nodes_per_side;
        assert!(n >= 2, "mesh needs at least 2 nodes per side");
        assert!(config.num_pads > 0, "at least one pad required");
        let g = 1.0 / config.branch_resistance_ohm;
        let mut branches = Vec::with_capacity(2 * n * n);
        for y in 0..n {
            for x in 0..n {
                let i = (y * n + x) as u32;
                if x + 1 < n {
                    branches.push((i, i + 1, g));
                }
                if y + 1 < n {
                    branches.push((i, i + n as u32, g));
                }
            }
        }
        // Periphery nodes in ring order, pads evenly spaced along the ring.
        let mut ring: Vec<usize> = Vec::new();
        for x in 0..n {
            ring.push(x); // bottom
        }
        for y in 1..n {
            ring.push(y * n + (n - 1)); // right
        }
        for x in (0..n - 1).rev() {
            ring.push((n - 1) * n + x); // top
        }
        for y in (1..n - 1).rev() {
            ring.push(y * n); // left
        }
        let mut pinned = vec![false; n * n];
        let pads = config.num_pads.min(ring.len());
        for k in 0..pads {
            let idx = ring[(k * ring.len()) / pads];
            pinned[idx] = true;
        }
        PowerGrid {
            config,
            die,
            branches,
            pinned,
        }
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        let n = self.config.nodes_per_side;
        n * n
    }

    /// Nodes per side.
    pub fn nodes_per_side(&self) -> usize {
        self.config.nodes_per_side
    }

    /// The configuration used to build the grid.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Maps a die location to its nearest mesh node.
    pub fn node_of(&self, p: Point) -> usize {
        let n = self.config.nodes_per_side;
        let o = self.die.outline;
        let fx = ((p.x - o.min.x) / o.width().max(1e-9)) * (n as f64 - 1.0);
        let fy = ((p.y - o.min.y) / o.height().max(1e-9)) * (n as f64 - 1.0);
        let x = fx.round().clamp(0.0, n as f64 - 1.0) as usize;
        let y = fy.round().clamp(0.0, n as f64 - 1.0) as usize;
        y * n + x
    }

    /// The die location of a mesh node (for plotting).
    pub fn location_of(&self, node: usize) -> Point {
        let n = self.config.nodes_per_side;
        let o = self.die.outline;
        let x = node % n;
        let y = node / n;
        Point::new(
            o.min.x + o.width() * x as f64 / (n as f64 - 1.0),
            o.min.y + o.height() * y as f64 / (n as f64 - 1.0),
        )
    }

    /// Whether a node is a pad (ideal supply).
    pub fn is_pad(&self, node: usize) -> bool {
        self.pinned[node]
    }

    /// Solves the mesh for the given per-node current draw (A), returning
    /// the voltage drop (V) at every node.
    pub fn solve(&self, node_currents: &[f64]) -> Vec<f64> {
        solve_cg(
            self.num_nodes(),
            &self.branches,
            &self.pinned,
            node_currents,
        )
    }

    /// Stamps per-instance currents onto mesh nodes.
    ///
    /// # Panics
    ///
    /// Panics if the slices don't match the netlist.
    pub fn stamp(
        &self,
        netlist: &Netlist,
        floorplan: &Floorplan,
        gate_current_a: &[f64],
        flop_current_a: &[f64],
    ) -> Vec<f64> {
        assert_eq!(gate_current_a.len(), netlist.num_gates());
        assert_eq!(flop_current_a.len(), netlist.num_flops());
        let mut node = vec![0.0; self.num_nodes()];
        for (i, &c) in gate_current_a.iter().enumerate() {
            if c != 0.0 {
                node[self.node_of(floorplan.placement.gate(GateId::new(i as u32)))] += c;
            }
        }
        for (i, &c) in flop_current_a.iter().enumerate() {
            if c != 0.0 {
                node[self.node_of(floorplan.placement.flop(FlopId::new(i as u32)))] += c;
            }
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::Die;

    fn grid() -> PowerGrid {
        PowerGrid::new(Die::square(1000.0), GridConfig::default())
    }

    #[test]
    fn center_drop_exceeds_periphery_drop() {
        let g = grid();
        // Uniform current everywhere.
        let currents = vec![1e-4; g.num_nodes()];
        let drops = g.solve(&currents);
        let center = drops[g.node_of(Point::new(500.0, 500.0))];
        let corner_area = drops[g.node_of(Point::new(40.0, 40.0))];
        assert!(
            center > corner_area,
            "center {center} vs periphery {corner_area}"
        );
    }

    #[test]
    fn pads_have_zero_drop() {
        let g = grid();
        let currents = vec![1e-4; g.num_nodes()];
        let drops = g.solve(&currents);
        let mut pad_count = 0;
        for (i, d) in drops.iter().enumerate() {
            if g.is_pad(i) {
                pad_count += 1;
                assert_eq!(*d, 0.0);
            }
        }
        assert_eq!(pad_count, 37);
    }

    #[test]
    fn node_mapping_round_trips() {
        let g = grid();
        for &node in &[0usize, 5, 100, g.num_nodes() - 1] {
            let p = g.location_of(node);
            assert_eq!(g.node_of(p), node);
        }
    }

    #[test]
    fn out_of_die_points_clamp() {
        let g = grid();
        assert_eq!(g.node_of(Point::new(-50.0, -50.0)), 0);
        assert_eq!(
            g.node_of(Point::new(2000.0, 2000.0)),
            g.num_nodes() - 1
        );
    }

    #[test]
    fn halving_resistance_halves_drops() {
        let die = Die::square(1000.0);
        let g1 = PowerGrid::new(die, GridConfig::default());
        let g2 = PowerGrid::new(
            die,
            GridConfig {
                branch_resistance_ohm: 0.5,
                ..GridConfig::default()
            },
        );
        let currents = vec![1e-4; g1.num_nodes()];
        let d1 = g1.solve(&currents);
        let d2 = g2.solve(&currents);
        let m1: f64 = d1.iter().cloned().fold(0.0, f64::max);
        let m2: f64 = d2.iter().cloned().fold(0.0, f64::max);
        assert!((m1 - 2.0 * m2).abs() < 0.05 * m1, "{m1} vs {m2}");
    }
}
