//! Instantaneous power waveforms from toggle traces.
//!
//! CAP and SCAP are single-number averages; for peak-power questions (the
//! paper's §1: "excessive peak power … large IR-drop") the time-resolved
//! profile matters. [`PowerWaveform`] bins a pattern's switching energy
//! into fixed time slots and reports peak windowed power.

use scap_netlist::Netlist;
use scap_sim::ToggleTrace;
use scap_timing::DelayAnnotation;
use serde::{Deserialize, Serialize};

/// A binned launch-to-capture power profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerWaveform {
    /// Bin width, ps.
    pub bin_ps: f64,
    /// Energy per bin, fJ (bin k covers `[k·bin, (k+1)·bin)`).
    pub energy_fj: Vec<f64>,
}

impl PowerWaveform {
    /// Builds the waveform of a trace with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_ps <= 0`.
    pub fn from_trace(
        netlist: &Netlist,
        annotation: &DelayAnnotation,
        trace: &ToggleTrace,
        bin_ps: f64,
    ) -> Self {
        assert!(bin_ps > 0.0, "bin width must be positive");
        let vdd2 = netlist.library.vdd * netlist.library.vdd;
        let bins = (trace.stw_ps() / bin_ps).floor() as usize + 1;
        let mut energy_fj = vec![0.0; bins];
        for ev in &trace.events {
            let k = ((ev.time_ps / bin_ps) as usize).min(bins - 1);
            energy_fj[k] += annotation.net_total_cap_ff(ev.net) * vdd2;
        }
        PowerWaveform { bin_ps, energy_fj }
    }

    /// Average power of one bin, mW.
    pub fn bin_power_mw(&self, k: usize) -> f64 {
        self.energy_fj[k] / self.bin_ps
    }

    /// Peak power over a sliding window of `window_ps` (rounded up to a
    /// whole number of bins), mW.
    pub fn peak_power_mw(&self, window_ps: f64) -> f64 {
        let w = ((window_ps / self.bin_ps).ceil() as usize).max(1);
        let mut sum: f64 = self.energy_fj.iter().take(w).sum();
        let mut best = sum;
        for k in w..self.energy_fj.len() {
            sum += self.energy_fj[k] - self.energy_fj[k - w];
            best = best.max(sum);
        }
        best / (w as f64 * self.bin_ps)
    }

    /// Total energy, fJ.
    pub fn total_energy_fj(&self) -> f64 {
        self.energy_fj.iter().sum()
    }

    /// A one-line sparkline of the profile (for reports).
    pub fn sparkline(&self) -> String {
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let max = self.energy_fj.iter().cloned().fold(1e-12, f64::max);
        self.energy_fj
            .iter()
            .map(|&e| glyphs[((e / max) * (glyphs.len() - 1) as f64).round() as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, NetId, NetlistBuilder};
    use scap_sim::ToggleEvent;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("w");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 50e6);
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let q = b.add_net("q");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_flop("ff", y, q, clk, ClockEdge::Rising, blk).unwrap();
        b.finish().unwrap()
    }

    fn trace(times: &[f64]) -> ToggleTrace {
        let mut t = ToggleTrace::default();
        for (k, &tp) in times.iter().enumerate() {
            t.events.push(ToggleEvent {
                time_ps: tp,
                net: NetId::new(1),
                rising: k % 2 == 0,
            });
        }
        t
    }

    #[test]
    fn bins_collect_energy_at_the_right_times() {
        let n = tiny();
        let ann = DelayAnnotation::unit_wire(&n);
        let t = trace(&[100.0, 150.0, 900.0]);
        let w = PowerWaveform::from_trace(&n, &ann, &t, 500.0);
        assert_eq!(w.energy_fj.len(), 2);
        // Two events in bin 0, one in bin 1.
        assert!((w.energy_fj[0] - 2.0 * w.energy_fj[1]).abs() < 1e-9);
        let total = w.total_energy_fj();
        let per_event = total / 3.0;
        assert!(per_event > 0.0);
    }

    #[test]
    fn peak_exceeds_average_for_bursty_traces() {
        let n = tiny();
        let ann = DelayAnnotation::unit_wire(&n);
        // A burst at the start, then silence.
        let t = trace(&[10.0, 20.0, 30.0, 40.0, 9_000.0]);
        let w = PowerWaveform::from_trace(&n, &ann, &t, 100.0);
        let avg = w.total_energy_fj() / 9_000.0;
        let peak = w.peak_power_mw(100.0);
        assert!(peak > 5.0 * avg, "peak {peak} vs avg {avg}");
    }

    #[test]
    fn peak_window_spanning_everything_equals_average() {
        let n = tiny();
        let ann = DelayAnnotation::unit_wire(&n);
        let t = trace(&[0.0, 400.0, 800.0]);
        let w = PowerWaveform::from_trace(&n, &ann, &t, 100.0);
        let span = w.energy_fj.len() as f64 * w.bin_ps;
        let peak = w.peak_power_mw(span);
        let avg = w.total_energy_fj() / span;
        assert!((peak - avg).abs() < 1e-9);
    }

    #[test]
    fn sparkline_matches_bin_count() {
        let n = tiny();
        let ann = DelayAnnotation::unit_wire(&n);
        let t = trace(&[100.0, 1_100.0]);
        let w = PowerWaveform::from_trace(&n, &ann, &t, 250.0);
        assert_eq!(w.sparkline().chars().count(), w.energy_fj.len());
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn rejects_zero_bin() {
        let n = tiny();
        let ann = DelayAnnotation::unit_wire(&n);
        let _ = PowerWaveform::from_trace(&n, &ann, &ToggleTrace::default(), 0.0);
    }
}
