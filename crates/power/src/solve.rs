//! Sparse SPD linear solve by Jacobi-preconditioned conjugate gradient.

/// A sparse symmetric positive-definite matrix in CSR-lite form, built by
/// the grid module.
#[derive(Clone, Debug)]
pub(crate) struct SparseSpd {
    /// Row start offsets into `cols`/`vals`, length `n + 1`.
    pub row_ptr: Vec<u32>,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
    /// Diagonal, for the Jacobi preconditioner.
    pub diag: Vec<f64>,
}

impl SparseSpd {
    pub(crate) fn n(&self) -> usize {
        self.diag.len()
    }

    fn mul(&self, x: &[f64], y: &mut [f64]) {
        for (i, out) in y.iter_mut().enumerate().take(self.n()) {
            let mut acc = 0.0;
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            *out = acc;
        }
    }
}

/// Solves `A·x = b` for SPD `A` by preconditioned conjugate gradient.
///
/// Iterates until the residual 2-norm falls below `tol · max(‖b‖, ε)` or
/// `max_iter` iterations. Returns the solution (best effort if the
/// iteration cap is hit — adequate for IR-drop maps, which are consumed
/// qualitatively).
pub(crate) fn solve_spd(a: &SparseSpd, b: &[f64], tol: f64, max_iter: usize) -> Vec<f64> {
    let n = a.n();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r
        .iter()
        .zip(&a.diag)
        .map(|(ri, di)| ri / di.max(1e-30))
        .collect();
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let b_norm = dot(b, b).sqrt().max(1e-30);
    let mut rz = dot(&r, &z);
    for _ in 0..max_iter {
        if dot(&r, &r).sqrt() <= tol * b_norm {
            break;
        }
        a.mul(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if p_ap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / a.diag[i].max(1e-30);
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz.max(1e-300);
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    x
}

/// Public convenience wrapper: solves a Laplacian-style SPD system given in
/// triplet form `(i, j, g)` of branch conductances plus Dirichlet nodes
/// pinned to zero. Used directly by tests and available for custom grids.
///
/// `num_nodes` is the total node count; `pinned[i] = true` marks nodes held
/// at 0 (pads). `injection[i]` is the current drawn at node `i` (A).
/// Returns the voltage drop at every node (0 at pads).
///
/// # Panics
///
/// Panics if slice lengths disagree or no node is pinned.
pub fn solve_cg(
    num_nodes: usize,
    branches: &[(u32, u32, f64)],
    pinned: &[bool],
    injection: &[f64],
) -> Vec<f64> {
    assert_eq!(pinned.len(), num_nodes);
    assert_eq!(injection.len(), num_nodes);
    assert!(pinned.iter().any(|&p| p), "at least one pad node required");
    // Map free nodes to a compact index space.
    let mut index = vec![u32::MAX; num_nodes];
    let mut free = 0u32;
    for i in 0..num_nodes {
        if !pinned[i] {
            index[i] = free;
            free += 1;
        }
    }
    let nf = free as usize;
    // Assemble the reduced Laplacian.
    let mut diag = vec![0.0f64; nf];
    let mut off: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nf];
    for &(a, b, g) in branches {
        let (a, b) = (a as usize, b as usize);
        match (pinned[a], pinned[b]) {
            (false, false) => {
                let (ia, ib) = (index[a] as usize, index[b] as usize);
                diag[ia] += g;
                diag[ib] += g;
                off[ia].push((ib as u32, -g));
                off[ib].push((ia as u32, -g));
            }
            (false, true) => diag[index[a] as usize] += g,
            (true, false) => diag[index[b] as usize] += g,
            (true, true) => {}
        }
    }
    let mut row_ptr = Vec::with_capacity(nf + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0u32);
    for i in 0..nf {
        cols.push(i as u32);
        vals.push(diag[i]);
        for &(c, v) in &off[i] {
            cols.push(c);
            vals.push(v);
        }
        row_ptr.push(cols.len() as u32);
    }
    let a = SparseSpd {
        row_ptr,
        cols,
        vals,
        diag,
    };
    let b: Vec<f64> = (0..num_nodes)
        .filter(|&i| !pinned[i])
        .map(|i| injection[i])
        .collect();
    let x = solve_spd(&a, &b, 1e-8, 4 * nf + 64);
    let mut out = vec![0.0; num_nodes];
    for i in 0..num_nodes {
        if !pinned[i] {
            out[i] = x[index[i] as usize];
        }
    }
    out
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two resistors in series: pad -- R -- n1 -- R -- n2, draw I at n2.
    /// Drop at n1 = I·R, at n2 = 2·I·R.
    #[test]
    fn series_resistor_ladder() {
        let g = 1.0 / 10.0; // 10 Ω branches
        let drops = solve_cg(
            3,
            &[(0, 1, g), (1, 2, g)],
            &[true, false, false],
            &[0.0, 0.0, 0.05],
        );
        assert!((drops[0] - 0.0).abs() < 1e-9);
        assert!((drops[1] - 0.5).abs() < 1e-6, "{}", drops[1]);
        assert!((drops[2] - 1.0).abs() < 1e-6, "{}", drops[2]);
    }

    /// Symmetric two-pad ladder: drop at the middle is I·R/2 (parallel
    /// paths to both pads).
    #[test]
    fn parallel_paths_halve_the_drop() {
        let g = 1.0; // 1 Ω branches
        let drops = solve_cg(
            3,
            &[(0, 1, g), (1, 2, g)],
            &[true, false, true],
            &[0.0, 1.0, 0.0],
        );
        assert!((drops[1] - 0.5).abs() < 1e-6);
    }

    /// Superposition: doubling the current doubles every drop (linearity).
    #[test]
    fn solution_is_linear_in_current() {
        let branches: Vec<(u32, u32, f64)> = (0..9)
            .flat_map(|i| {
                let mut v = Vec::new();
                let (x, y) = (i % 3, i / 3);
                if x < 2 {
                    v.push((i, i + 1, 0.5));
                }
                if y < 2 {
                    v.push((i, i + 3, 0.5));
                }
                v
            })
            .collect();
        let mut pinned = vec![false; 9];
        pinned[0] = true;
        pinned[8] = true;
        let mut inj = vec![0.0; 9];
        inj[4] = 0.1;
        let d1 = solve_cg(9, &branches, &pinned, &inj);
        inj[4] = 0.2;
        let d2 = solve_cg(9, &branches, &pinned, &inj);
        for i in 0..9 {
            assert!((d2[i] - 2.0 * d1[i]).abs() < 1e-6, "node {i}");
        }
    }

    /// Conservation sanity: all drops are non-negative for non-negative
    /// injections (current only flows out of the grid at pads).
    #[test]
    fn drops_are_nonnegative() {
        let branches = vec![(0u32, 1u32, 2.0), (1, 2, 2.0), (2, 3, 2.0)];
        let drops = solve_cg(
            4,
            &branches,
            &[true, false, false, false],
            &[0.0, 0.3, 0.0, 0.1],
        );
        for (i, d) in drops.iter().enumerate() {
            assert!(*d >= -1e-9, "node {i}: {d}");
        }
        // Monotone along the chain away from the single pad.
        assert!(drops[1] <= drops[2] + 1e-9);
        assert!(drops[2] <= drops[3] + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one pad")]
    fn requires_a_pad() {
        let _ = solve_cg(2, &[(0, 1, 1.0)], &[false, false], &[0.0, 1.0]);
    }
}
