//! Sparse SPD linear solve by Jacobi-preconditioned conjugate gradient.
//!
//! The grid Laplacian never changes between solves of the same mesh, so
//! assembly (triplets → reduced CSR) is split out into [`ReducedSystem`],
//! built once per [`crate::PowerGrid`] and reused for every right-hand
//! side. Per-solve vector allocations live in [`CgScratch`] so hot loops
//! (one solve per pattern) can recycle them, and a warm-start entry point
//! seeds the iteration from a previous solution.

/// A sparse symmetric positive-definite matrix in CSR-lite form, built by
/// the grid module.
#[derive(Clone, Debug)]
pub(crate) struct SparseSpd {
    /// Row start offsets into `cols`/`vals`, length `n + 1`.
    pub row_ptr: Vec<u32>,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
    /// Diagonal, for the Jacobi preconditioner.
    pub diag: Vec<f64>,
}

impl SparseSpd {
    pub(crate) fn n(&self) -> usize {
        self.diag.len()
    }

    fn mul(&self, x: &[f64], y: &mut [f64]) {
        for (i, out) in y.iter_mut().enumerate().take(self.n()) {
            let mut acc = 0.0;
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            *out = acc;
        }
    }
}

/// Reusable conjugate-gradient work vectors. One instance per solver
/// context; every solve resizes them to the system at hand.
#[derive(Clone, Debug, Default)]
pub(crate) struct CgScratch {
    b: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Solves `A·x = b` for SPD `A` by preconditioned conjugate gradient,
/// starting from the value of `x` (pass zeros for the classic cold
/// start).
///
/// Iterates until the residual 2-norm falls below `tol · max(‖b‖, ε)` or
/// `max_iter` iterations, and returns the iteration count. The stopping
/// criterion does not depend on the starting point, so a warm start
/// converges to the same tolerance as a cold start — typically in fewer
/// iterations, but to a numerically different (equally valid) iterate.
pub(crate) fn solve_spd_into(
    a: &SparseSpd,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    scratch: &mut CgScratch,
) -> usize {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let r = &mut scratch.r;
    r.clear();
    r.extend_from_slice(b);
    if x.iter().any(|&v| v != 0.0) {
        // Warm start: r = b − A·x.
        scratch.ap.resize(n, 0.0);
        a.mul(x, &mut scratch.ap);
        for (ri, ai) in r.iter_mut().zip(&scratch.ap) {
            *ri -= ai;
        }
    }
    let z = &mut scratch.z;
    z.clear();
    z.extend(r.iter().zip(&a.diag).map(|(ri, di)| ri / di.max(1e-30)));
    let p = &mut scratch.p;
    p.clear();
    p.extend_from_slice(z);
    scratch.ap.clear();
    scratch.ap.resize(n, 0.0);
    let ap = &mut scratch.ap;
    let b_norm = dot(b, b).sqrt().max(1e-30);
    let mut rz = dot(r, z);
    let mut iterations = 0;
    for _ in 0..max_iter {
        if dot(r, r).sqrt() <= tol * b_norm {
            break;
        }
        iterations += 1;
        a.mul(p, ap);
        let p_ap = dot(p, ap);
        if p_ap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / a.diag[i].max(1e-30);
        }
        let rz_new = dot(r, z);
        let beta = rz_new / rz.max(1e-300);
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    scap_obs::counter!("cg.solves").incr();
    scap_obs::counter!("cg.iterations").add(iterations as u64);
    if scap_obs::is_enabled() {
        // `r` holds the true residual at exit (recurrence or recompute).
        let res = dot(r, r).sqrt();
        scap_obs::float_gauge!("cg.residual.last").set(res);
        scap_obs::float_gauge!("cg.residual.max").set_max(res);
    }
    iterations
}

/// A grid system reduced over its Dirichlet (pad) nodes: the free-node
/// Laplacian in CSR form plus the full-grid ↔ free-node index map.
/// Assembly happens once; solves reuse it for every right-hand side.
#[derive(Clone, Debug)]
pub(crate) struct ReducedSystem {
    num_nodes: usize,
    /// Free-node compact index per grid node (`u32::MAX` for pads).
    index: Vec<u32>,
    matrix: SparseSpd,
}

impl ReducedSystem {
    /// Assembles the reduced Laplacian from branch conductance triplets.
    ///
    /// # Panics
    ///
    /// Panics if `pinned.len() != num_nodes` or no node is pinned.
    pub(crate) fn build(num_nodes: usize, branches: &[(u32, u32, f64)], pinned: &[bool]) -> Self {
        assert_eq!(pinned.len(), num_nodes);
        assert!(pinned.iter().any(|&p| p), "at least one pad node required");
        // Map free nodes to a compact index space.
        let mut index = vec![u32::MAX; num_nodes];
        let mut free = 0u32;
        for i in 0..num_nodes {
            if !pinned[i] {
                index[i] = free;
                free += 1;
            }
        }
        let nf = free as usize;
        // Assemble the reduced Laplacian.
        let mut diag = vec![0.0f64; nf];
        let mut off: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nf];
        for &(a, b, g) in branches {
            let (a, b) = (a as usize, b as usize);
            match (pinned[a], pinned[b]) {
                (false, false) => {
                    let (ia, ib) = (index[a] as usize, index[b] as usize);
                    diag[ia] += g;
                    diag[ib] += g;
                    off[ia].push((ib as u32, -g));
                    off[ib].push((ia as u32, -g));
                }
                (false, true) => diag[index[a] as usize] += g,
                (true, false) => diag[index[b] as usize] += g,
                (true, true) => {}
            }
        }
        let mut row_ptr = Vec::with_capacity(nf + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0u32);
        for i in 0..nf {
            cols.push(i as u32);
            vals.push(diag[i]);
            for &(c, v) in &off[i] {
                cols.push(c);
                vals.push(v);
            }
            row_ptr.push(cols.len() as u32);
        }
        ReducedSystem {
            num_nodes,
            index,
            matrix: SparseSpd {
                row_ptr,
                cols,
                vals,
                diag,
            },
        }
    }

    /// Free (non-pad) node count.
    pub(crate) fn num_free(&self) -> usize {
        self.matrix.n()
    }

    /// The assembled reduced matrix as `(row, col, value)` triplets plus
    /// its dimension — a read-only view for external validation.
    pub(crate) fn triplets(&self) -> (usize, Vec<(u32, u32, f64)>) {
        let m = &self.matrix;
        let mut t = Vec::with_capacity(m.vals.len());
        for i in 0..m.n() {
            for k in m.row_ptr[i] as usize..m.row_ptr[i + 1] as usize {
                t.push((i as u32, m.cols[k], m.vals[k]));
            }
        }
        (m.n(), t)
    }

    /// Cold-start solve with a fresh scratch: the reference path. Results
    /// are bit-identical to assembling and solving from scratch.
    pub(crate) fn solve(&self, injection: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(injection, &mut x, false, &mut CgScratch::new());
        self.scatter(&x)
    }

    /// Solves into a caller-owned reduced solution vector `x`, reusing
    /// `scratch`. With `warm = false`, `x` is reset to zero first and the
    /// result is bit-identical to [`ReducedSystem::solve`]; with
    /// `warm = true`, the iteration starts from `x`'s current content
    /// (previous solution). Returns the iteration count.
    pub(crate) fn solve_into(
        &self,
        injection: &[f64],
        x: &mut Vec<f64>,
        warm: bool,
        scratch: &mut CgScratch,
    ) -> usize {
        assert_eq!(injection.len(), self.num_nodes);
        let nf = self.num_free();
        // Resolve both counters up front so each registers on the first
        // solve — an all-cold-start run still reports `cg.warm_hits: 0`
        // in snapshots instead of omitting the counter entirely.
        let warm_hits = scap_obs::counter!("cg.warm_hits");
        let warm_misses = scap_obs::counter!("cg.warm_misses");
        if !warm || x.len() != nf {
            warm_misses.incr();
            x.clear();
            x.resize(nf, 0.0);
        } else {
            warm_hits.incr();
        }
        let b = &mut scratch.b;
        b.clear();
        b.resize(nf, 0.0);
        for i in 0..self.num_nodes {
            if self.index[i] != u32::MAX {
                b[self.index[i] as usize] = injection[i];
            }
        }
        let rhs = std::mem::take(&mut scratch.b);
        let iters = solve_spd_into(&self.matrix, &rhs, x, 1e-8, 4 * nf + 64, scratch);
        scratch.b = rhs;
        iters
    }

    /// Expands a reduced solution to the full node space (0 at pads).
    pub(crate) fn scatter(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_nodes];
        for i in 0..self.num_nodes {
            if self.index[i] != u32::MAX {
                out[i] = x[self.index[i] as usize];
            }
        }
        out
    }
}

/// Public convenience wrapper: solves a Laplacian-style SPD system given in
/// triplet form `(i, j, g)` of branch conductances plus Dirichlet nodes
/// pinned to zero. Used directly by tests and available for custom grids.
///
/// `num_nodes` is the total node count; `pinned[i] = true` marks nodes held
/// at 0 (pads). `injection[i]` is the current drawn at node `i` (A).
/// Returns the voltage drop at every node (0 at pads).
///
/// # Panics
///
/// Panics if slice lengths disagree or no node is pinned.
pub fn solve_cg(
    num_nodes: usize,
    branches: &[(u32, u32, f64)],
    pinned: &[bool],
    injection: &[f64],
) -> Vec<f64> {
    ReducedSystem::build(num_nodes, branches, pinned).solve(injection)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two resistors in series: pad -- R -- n1 -- R -- n2, draw I at n2.
    /// Drop at n1 = I·R, at n2 = 2·I·R.
    #[test]
    fn series_resistor_ladder() {
        let g = 1.0 / 10.0; // 10 Ω branches
        let drops = solve_cg(
            3,
            &[(0, 1, g), (1, 2, g)],
            &[true, false, false],
            &[0.0, 0.0, 0.05],
        );
        assert!((drops[0] - 0.0).abs() < 1e-9);
        assert!((drops[1] - 0.5).abs() < 1e-6, "{}", drops[1]);
        assert!((drops[2] - 1.0).abs() < 1e-6, "{}", drops[2]);
    }

    /// Symmetric two-pad ladder: drop at the middle is I·R/2 (parallel
    /// paths to both pads).
    #[test]
    fn parallel_paths_halve_the_drop() {
        let g = 1.0; // 1 Ω branches
        let drops = solve_cg(
            3,
            &[(0, 1, g), (1, 2, g)],
            &[true, false, true],
            &[0.0, 1.0, 0.0],
        );
        assert!((drops[1] - 0.5).abs() < 1e-6);
    }

    /// Superposition: doubling the current doubles every drop (linearity).
    #[test]
    fn solution_is_linear_in_current() {
        let branches: Vec<(u32, u32, f64)> = (0..9)
            .flat_map(|i| {
                let mut v = Vec::new();
                let (x, y) = (i % 3, i / 3);
                if x < 2 {
                    v.push((i, i + 1, 0.5));
                }
                if y < 2 {
                    v.push((i, i + 3, 0.5));
                }
                v
            })
            .collect();
        let mut pinned = vec![false; 9];
        pinned[0] = true;
        pinned[8] = true;
        let mut inj = vec![0.0; 9];
        inj[4] = 0.1;
        let d1 = solve_cg(9, &branches, &pinned, &inj);
        inj[4] = 0.2;
        let d2 = solve_cg(9, &branches, &pinned, &inj);
        for i in 0..9 {
            assert!((d2[i] - 2.0 * d1[i]).abs() < 1e-6, "node {i}");
        }
    }

    /// Conservation sanity: all drops are non-negative for non-negative
    /// injections (current only flows out of the grid at pads).
    #[test]
    fn drops_are_nonnegative() {
        let branches = vec![(0u32, 1u32, 2.0), (1, 2, 2.0), (2, 3, 2.0)];
        let drops = solve_cg(
            4,
            &branches,
            &[true, false, false, false],
            &[0.0, 0.3, 0.0, 0.1],
        );
        for (i, d) in drops.iter().enumerate() {
            assert!(*d >= -1e-9, "node {i}: {d}");
        }
        // Monotone along the chain away from the single pad.
        assert!(drops[1] <= drops[2] + 1e-9);
        assert!(drops[2] <= drops[3] + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one pad")]
    fn requires_a_pad() {
        let _ = solve_cg(2, &[(0, 1, 1.0)], &[false, false], &[0.0, 1.0]);
    }

    fn ladder_system() -> (ReducedSystem, Vec<f64>) {
        let n = 40usize;
        let branches: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|i| (i, i + 1, 0.4)).collect();
        let mut pinned = vec![false; n];
        pinned[0] = true;
        pinned[n - 1] = true;
        let mut inj = vec![0.0; n];
        for (i, v) in inj.iter_mut().enumerate() {
            *v = 1e-3 * (1.0 + (i % 5) as f64);
        }
        (ReducedSystem::build(n, &branches, &pinned), inj)
    }

    /// The cached-system path with reused scratch is bit-identical to the
    /// one-shot assemble-and-solve path.
    #[test]
    fn cached_system_matches_rebuild_exactly() {
        let n = 40usize;
        let branches: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|i| (i, i + 1, 0.4)).collect();
        let mut pinned = vec![false; n];
        pinned[0] = true;
        pinned[n - 1] = true;
        let system = ReducedSystem::build(n, &branches, &pinned);
        let mut x = Vec::new();
        let mut scratch = CgScratch::new();
        for case in 0..5 {
            let inj: Vec<f64> = (0..n).map(|i| 1e-3 * ((i + case) % 7) as f64).collect();
            let reference = solve_cg(n, &branches, &pinned, &inj);
            system.solve_into(&inj, &mut x, false, &mut scratch);
            let reused = system.scatter(&x);
            assert_eq!(reused.len(), reference.len());
            for (a, b) in reused.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case}");
            }
        }
    }

    /// Warm-starting from a nearby solution converges to the same answer
    /// within the solve tolerance, in no more iterations than cold start.
    #[test]
    fn warm_start_agrees_within_tolerance() {
        let (system, inj) = ladder_system();
        let mut x_cold = Vec::new();
        let mut scratch = CgScratch::new();
        let cold_iters = system.solve_into(&inj, &mut x_cold, false, &mut scratch);
        let cold = system.scatter(&x_cold);

        // Perturb the injections slightly and warm-start from the previous
        // solution.
        let inj2: Vec<f64> = inj.iter().map(|v| v * 1.01).collect();
        let mut x_warm = x_cold.clone();
        let warm_iters = system.solve_into(&inj2, &mut x_warm, true, &mut scratch);
        let warm = system.scatter(&x_warm);
        let mut x_cold2 = Vec::new();
        system.solve_into(&inj2, &mut x_cold2, false, &mut scratch);
        let cold2 = system.scatter(&x_cold2);

        let scale: f64 = cold.iter().cloned().fold(0.0, f64::max).max(1e-12);
        for (w, c) in warm.iter().zip(&cold2) {
            assert!((w - c).abs() <= 1e-6 * scale, "warm {w} vs cold {c}");
        }
        assert!(
            warm_iters <= cold_iters,
            "warm start took {warm_iters} iterations vs cold {cold_iters}"
        );
    }

    /// Warm-starting from the exact solution of the same system converges
    /// immediately (zero iterations).
    #[test]
    fn warm_start_from_exact_solution_is_free() {
        let (system, inj) = ladder_system();
        let mut x = Vec::new();
        let mut scratch = CgScratch::new();
        system.solve_into(&inj, &mut x, false, &mut scratch);
        let again = system.solve_into(&inj, &mut x, true, &mut scratch);
        assert_eq!(again, 0, "resolving the same rhs should be free");
    }
}
