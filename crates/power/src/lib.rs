//! Power-delivery analysis for the `scap-atpg` suite.
//!
//! Replaces the power half of the paper's flow (Cadence SOC Encounter):
//!
//! * [`PowerGrid`] — a resistive VDD/VSS mesh with periphery pads (the
//!   paper's chip has 37 VDD and 37 VSS pads) solved by preconditioned
//!   conjugate gradient,
//! * [`StatisticalAnalysis`] — vector-less IR-drop estimation from a
//!   uniform toggle probability over a chosen time window (paper §2.2,
//!   Table 3's full-cycle vs half-cycle cases),
//! * [`DynamicAnalysis`] — per-pattern IR-drop from an event-simulation
//!   toggle trace over the pattern's switching time window (paper §2.4,
//!   Figure 3),
//! * [`ScapCalculator`] — the paper's headline contribution: per-pattern
//!   **CAP** (cycle average power) and **SCAP** (switching cycle average
//!   power) accounting, per block and chip-level (paper §2.3, Figures 2
//!   and 6).
//!
//! Unit conventions: capacitance fF, time ps, voltage V, power mW
//! (1 fJ/ps = 1 mW), current A.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dynamic;
mod grid;
mod scap;
mod solve;
mod statistical;
mod waveform;

pub use dynamic::{DynSession, DynamicAnalysis, IrDropMap};
pub use grid::{GridConfig, GridSolver, PowerGrid};
pub use scap::{BlockPower, PatternPower, ScapCalculator};
pub use solve::solve_cg;
pub use statistical::{BlockStatistics, StatisticalAnalysis, StatisticalReport};
pub use waveform::PowerWaveform;
