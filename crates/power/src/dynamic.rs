//! Dynamic (per-pattern) IR-drop analysis (paper §2.4, Figure 3).
//!
//! The toggle trace of one pattern's launch-to-capture window is converted
//! into per-cell average rail currents over the pattern's switching time
//! window, stamped onto the power mesh and solved — the SOC Encounter
//! dynamic-rail-analysis substitute. Rising edges load the VDD network,
//! falling edges the VSS network, so a pattern full of rising activity
//! stresses VDD harder than VSS, exactly as in the paper's Table 4.

use crate::{GridConfig, GridSolver, PowerGrid};
use scap_netlist::{BlockId, Floorplan, FlopId, GateId, NetSource, Netlist, Point};
use scap_sim::ToggleTrace;
use scap_timing::DelayAnnotation;
use serde::{Deserialize, Serialize};

/// The solved IR-drop map of one pattern.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IrDropMap {
    /// Per-mesh-node VDD drop, V.
    pub node_drop_vdd_v: Vec<f64>,
    /// Per-mesh-node VSS bounce, V.
    pub node_drop_vss_v: Vec<f64>,
    gate_drop_vdd_v: Vec<f64>,
    gate_drop_vss_v: Vec<f64>,
    flop_drop_vdd_v: Vec<f64>,
    flop_drop_vss_v: Vec<f64>,
    nodes_per_side: usize,
}

impl IrDropMap {
    /// VDD drop seen by a gate, V.
    pub fn gate_drop_vdd(&self, g: GateId) -> f64 {
        self.gate_drop_vdd_v[g.index()]
    }

    /// Total supply compression seen by a gate (VDD drop + ground bounce),
    /// the ΔV that scales its delay.
    pub fn gate_drop_total(&self, g: GateId) -> f64 {
        self.gate_drop_vdd_v[g.index()] + self.gate_drop_vss_v[g.index()]
    }

    /// Total supply compression seen by a flop, V.
    pub fn flop_drop_total(&self, f: FlopId) -> f64 {
        self.flop_drop_vdd_v[f.index()] + self.flop_drop_vss_v[f.index()]
    }

    /// Per-gate total droop vector (for `scap_timing::scaling`).
    pub fn gate_drops_total(&self) -> Vec<f64> {
        self.gate_drop_vdd_v
            .iter()
            .zip(&self.gate_drop_vss_v)
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Per-flop total droop vector (for `scap_timing::scaling`).
    pub fn flop_drops_total(&self) -> Vec<f64> {
        self.flop_drop_vdd_v
            .iter()
            .zip(&self.flop_drop_vss_v)
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Worst VDD drop over the cells of a block, V.
    pub fn worst_block_drop_vdd(&self, netlist: &Netlist, block: BlockId) -> f64 {
        let mut worst = 0.0f64;
        for (i, g) in netlist.gates().iter().enumerate() {
            if g.block == block {
                worst = worst.max(self.gate_drop_vdd_v[i]);
            }
        }
        for (i, f) in netlist.flops().iter().enumerate() {
            if f.block == block {
                worst = worst.max(self.flop_drop_vdd_v[i]);
            }
        }
        worst
    }

    /// Worst VSS bounce over the cells of a block, V.
    pub fn worst_block_drop_vss(&self, netlist: &Netlist, block: BlockId) -> f64 {
        let mut worst = 0.0f64;
        for (i, g) in netlist.gates().iter().enumerate() {
            if g.block == block {
                worst = worst.max(self.gate_drop_vss_v[i]);
            }
        }
        for (i, f) in netlist.flops().iter().enumerate() {
            if f.block == block {
                worst = worst.max(self.flop_drop_vss_v[i]);
            }
        }
        worst
    }

    /// Worst VDD drop anywhere, V.
    pub fn worst_drop_vdd(&self) -> f64 {
        self.node_drop_vdd_v.iter().cloned().fold(0.0, f64::max)
    }

    /// Worst VSS bounce anywhere, V.
    pub fn worst_drop_vss(&self) -> f64 {
        self.node_drop_vss_v.iter().cloned().fold(0.0, f64::max)
    }

    /// Fraction of mesh nodes whose VDD drop exceeds `threshold_v` — the
    /// "red region" of the paper's Figure 3 plots (10 % of VDD = 0.18 V).
    pub fn red_fraction(&self, threshold_v: f64) -> f64 {
        if self.node_drop_vdd_v.is_empty() {
            return 0.0;
        }
        self.node_drop_vdd_v
            .iter()
            .filter(|&&d| d > threshold_v)
            .count() as f64
            / self.node_drop_vdd_v.len() as f64
    }

    /// An ASCII rendering of the VDD drop map (rows top-to-bottom), one
    /// character per node: `.` <2.5 %, `-` <5 %, `+` <10 %, `#` ≥10 % of
    /// `vdd`.
    pub fn render_vdd_map(&self, vdd: f64) -> String {
        let n = self.nodes_per_side;
        let mut out = String::with_capacity(n * (n + 1));
        for y in (0..n).rev() {
            for x in 0..n {
                let d = self.node_drop_vdd_v[y * n + x] / vdd;
                out.push(if d >= 0.10 {
                    '#'
                } else if d >= 0.05 {
                    '+'
                } else if d >= 0.025 {
                    '-'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

/// Dynamic IR-drop analyzer bound to a design.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::{Netlist, Floorplan};
/// # use scap_timing::DelayAnnotation;
/// # use scap_sim::ToggleTrace;
/// # fn demo(netlist: &Netlist, fp: &Floorplan, ann: &DelayAnnotation, trace: &ToggleTrace) {
/// use scap_power::{DynamicAnalysis, GridConfig};
/// let dyn_ir = DynamicAnalysis::new(netlist, fp, GridConfig::default());
/// let map = dyn_ir.analyze(ann, trace);
/// println!("worst VDD drop {:.3} V", map.worst_drop_vdd());
/// print!("{}", map.render_vdd_map(netlist.library.vdd));
/// # }
/// ```
#[derive(Debug)]
pub struct DynamicAnalysis<'a> {
    netlist: &'a Netlist,
    floorplan: &'a Floorplan,
    grid: PowerGrid,
}

impl<'a> DynamicAnalysis<'a> {
    /// Builds the analyzer (constructs the mesh once; reuse across
    /// patterns).
    pub fn new(netlist: &'a Netlist, floorplan: &'a Floorplan, grid: GridConfig) -> Self {
        DynamicAnalysis {
            netlist,
            floorplan,
            grid: PowerGrid::new(floorplan.die, grid),
        }
    }

    /// The underlying mesh.
    pub fn grid(&self) -> &PowerGrid {
        &self.grid
    }

    /// Solves the IR-drop of one pattern's trace, averaging the switching
    /// charge over the pattern's STW (the paper's SCAP model).
    pub fn analyze(&self, annotation: &DelayAnnotation, trace: &ToggleTrace) -> IrDropMap {
        self.analyze_windowed(annotation, trace, trace.stw_ps())
    }

    /// Like [`DynamicAnalysis::analyze`] but averages the charge over an
    /// explicit window — pass the full tester cycle to reproduce the CAP
    /// model's (underestimated) IR-drop of the paper's Table 4.
    pub fn analyze_windowed(
        &self,
        annotation: &DelayAnnotation,
        trace: &ToggleTrace,
        window_ps: f64,
    ) -> IrDropMap {
        let (node_vdd, node_vss) = self.rail_currents(annotation, trace, window_ps);
        // The two rail systems are independent: solve them concurrently.
        let (node_drop_vdd_v, node_drop_vss_v) =
            scap_exec::join2(|| self.grid.solve(&node_vdd), || self.grid.solve(&node_vss));
        self.assemble_map(node_drop_vdd_v, node_drop_vss_v)
    }

    /// A reusable per-thread analysis context: keeps one [`GridSolver`]
    /// per rail alive across patterns, so back-to-back
    /// [`DynSession::analyze`] calls skip the per-solve allocations.
    /// Results are bit-identical to [`DynamicAnalysis::analyze`].
    pub fn session(&self) -> DynSession<'_, 'a> {
        DynSession {
            analysis: self,
            vdd: self.grid.solver(),
            vss: self.grid.solver(),
        }
    }

    /// Stamps a trace's average per-rail currents onto mesh nodes.
    fn rail_currents(
        &self,
        annotation: &DelayAnnotation,
        trace: &ToggleTrace,
        window_ps: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        let n = self.netlist;
        let vdd = n.library.vdd;
        let stw = window_ps.max(1.0);
        let counts = trace.toggle_counts(n.num_nets());
        let mut gate_i_vdd = vec![0.0f64; n.num_gates()];
        let mut gate_i_vss = vec![0.0f64; n.num_gates()];
        let mut flop_i_vdd = vec![0.0f64; n.num_flops()];
        let mut flop_i_vss = vec![0.0f64; n.num_flops()];
        for (i, net) in n.nets().iter().enumerate() {
            let (rise, fall) = counts[i];
            if rise == 0 && fall == 0 {
                continue;
            }
            let cap = annotation.net_total_cap_ff(scap_netlist::NetId::new(i as u32));
            // Average current over the STW: Q = C·V per toggle; fF·V/ps = mA.
            let i_vdd = rise as f64 * cap * vdd / stw * 1e-3;
            let i_vss = fall as f64 * cap * vdd / stw * 1e-3;
            match net.source {
                Some(NetSource::Gate(g)) => {
                    gate_i_vdd[g.index()] += i_vdd;
                    gate_i_vss[g.index()] += i_vss;
                }
                Some(NetSource::Flop(f)) => {
                    flop_i_vdd[f.index()] += i_vdd;
                    flop_i_vss[f.index()] += i_vss;
                }
                _ => {}
            }
        }
        (
            self.grid.stamp(n, self.floorplan, &gate_i_vdd, &flop_i_vdd),
            self.grid.stamp(n, self.floorplan, &gate_i_vss, &flop_i_vss),
        )
    }

    /// Samples the solved node drops at every cell location.
    fn assemble_map(&self, node_drop_vdd_v: Vec<f64>, node_drop_vss_v: Vec<f64>) -> IrDropMap {
        let n = self.netlist;
        let sample = |drops: &[f64], p: Point| drops[self.grid.node_of(p)];
        let gate_drop_vdd_v: Vec<f64> = (0..n.num_gates())
            .map(|i| {
                sample(
                    &node_drop_vdd_v,
                    self.floorplan.placement.gate(GateId::new(i as u32)),
                )
            })
            .collect();
        let gate_drop_vss_v: Vec<f64> = (0..n.num_gates())
            .map(|i| {
                sample(
                    &node_drop_vss_v,
                    self.floorplan.placement.gate(GateId::new(i as u32)),
                )
            })
            .collect();
        let flop_drop_vdd_v: Vec<f64> = (0..n.num_flops())
            .map(|i| {
                sample(
                    &node_drop_vdd_v,
                    self.floorplan.placement.flop(FlopId::new(i as u32)),
                )
            })
            .collect();
        let flop_drop_vss_v: Vec<f64> = (0..n.num_flops())
            .map(|i| {
                sample(
                    &node_drop_vss_v,
                    self.floorplan.placement.flop(FlopId::new(i as u32)),
                )
            })
            .collect();
        IrDropMap {
            node_drop_vdd_v,
            node_drop_vss_v,
            gate_drop_vdd_v,
            gate_drop_vss_v,
            flop_drop_vdd_v,
            flop_drop_vss_v,
            nodes_per_side: self.grid.nodes_per_side(),
        }
    }

    /// Samples the solved VDD-drop map at an arbitrary die location — used
    /// to retime clock-tree buffers.
    pub fn drop_at(&self, map: &IrDropMap, p: Point) -> f64 {
        map.node_drop_vdd_v[self.grid.node_of(p)] + map.node_drop_vss_v[self.grid.node_of(p)]
    }
}

/// A per-thread dynamic-analysis context with reusable rail solvers.
///
/// Created by [`DynamicAnalysis::session`]. The solvers cold-start every
/// solve (only allocations are reused), so a session's results are
/// bit-identical to the one-shot [`DynamicAnalysis::analyze`] path no
/// matter how patterns are distributed across sessions — the property the
/// parallel per-pattern loops rely on.
#[derive(Debug)]
pub struct DynSession<'d, 'a> {
    analysis: &'d DynamicAnalysis<'a>,
    vdd: GridSolver<'d>,
    vss: GridSolver<'d>,
}

impl DynSession<'_, '_> {
    /// [`DynamicAnalysis::analyze`] with reused solver buffers.
    pub fn analyze(&mut self, annotation: &DelayAnnotation, trace: &ToggleTrace) -> IrDropMap {
        self.analyze_windowed(annotation, trace, trace.stw_ps())
    }

    /// [`DynamicAnalysis::analyze_windowed`] with reused solver buffers.
    pub fn analyze_windowed(
        &mut self,
        annotation: &DelayAnnotation,
        trace: &ToggleTrace,
        window_ps: f64,
    ) -> IrDropMap {
        let (node_vdd, node_vss) = self.analysis.rail_currents(annotation, trace, window_ps);
        let node_drop_vdd_v = self.vdd.solve(&node_vdd);
        let node_drop_vss_v = self.vss.solve(&node_vss);
        self.analysis.assemble_map(node_drop_vdd_v, node_drop_vss_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, Die, NetId, NetlistBuilder, Placement, Rect};
    use scap_sim::{ToggleEvent, ToggleTrace};

    fn single_gate_design(at: Point) -> (Netlist, Floorplan) {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 50e6);
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let q = b.add_net("q");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_flop("ff", y, q, clk, ClockEdge::Rising, blk).unwrap();
        let n = b.finish().unwrap();
        let fp = Floorplan::new(
            &n,
            Die::square(1000.0),
            vec![Rect::new(0.0, 0.0, 1000.0, 1000.0)],
            Placement::new(vec![at], vec![at]),
        );
        (n, fp)
    }

    fn trace_on(net: NetId, toggles: usize, rising: bool) -> ToggleTrace {
        let mut t = ToggleTrace::default();
        for k in 0..toggles {
            t.events.push(ToggleEvent {
                time_ps: 100.0 * (k + 1) as f64,
                net,
                rising: if toggles > 1 {
                    k % 2 == (!rising) as usize
                } else {
                    rising
                },
            });
        }
        t
    }

    #[test]
    fn more_toggles_mean_deeper_drop() {
        let (n, fp) = single_gate_design(Point::new(500.0, 500.0));
        let ann = DelayAnnotation::extract(&n, &fp);
        let dynir = DynamicAnalysis::new(
            &n,
            &fp,
            GridConfig {
                branch_resistance_ohm: 50.0,
                ..GridConfig::default()
            },
        );
        let y = NetId::new(1);
        // One toggle over a 900 ps window vs 9 toggles over the same
        // window: 9x the average current density.
        let mut t1 = ToggleTrace::default();
        t1.events.push(ToggleEvent {
            time_ps: 900.0,
            net: y,
            rising: true,
        });
        let m1 = dynir.analyze(&ann, &t1);
        let mut t9 = ToggleTrace::default();
        for k in 0..9 {
            t9.events.push(ToggleEvent {
                time_ps: 100.0 * (k + 1) as f64,
                net: y,
                rising: k % 2 == 0,
            });
        }
        let m9 = dynir.analyze(&ann, &t9);
        assert!(m9.worst_drop_vdd() > m1.worst_drop_vdd());
    }

    #[test]
    fn rising_only_trace_loads_vdd_not_vss() {
        let (n, fp) = single_gate_design(Point::new(500.0, 500.0));
        let ann = DelayAnnotation::extract(&n, &fp);
        let dynir = DynamicAnalysis::new(
            &n,
            &fp,
            GridConfig {
                branch_resistance_ohm: 50.0,
                ..GridConfig::default()
            },
        );
        let m = dynir.analyze(&ann, &trace_on(NetId::new(1), 1, true));
        assert!(m.worst_drop_vdd() > 0.0);
        assert_eq!(m.worst_drop_vss(), 0.0);
        assert!(m.gate_drop_total(GateId::new(0)) > 0.0);
    }

    #[test]
    fn center_activity_drops_more_than_edge_activity() {
        let cfg = GridConfig {
            branch_resistance_ohm: 50.0,
            ..GridConfig::default()
        };
        let (nc, fc) = single_gate_design(Point::new(500.0, 500.0));
        let annc = DelayAnnotation::extract(&nc, &fc);
        let dc = DynamicAnalysis::new(&nc, &fc, cfg);
        let mc = dc.analyze(&annc, &trace_on(NetId::new(1), 1, true));
        let (ne, fe) = single_gate_design(Point::new(15.0, 15.0));
        let anne = DelayAnnotation::extract(&ne, &fe);
        let de = DynamicAnalysis::new(&ne, &fe, cfg);
        let me = de.analyze(&anne, &trace_on(NetId::new(1), 1, true));
        assert!(mc.worst_drop_vdd() > me.worst_drop_vdd());
    }

    #[test]
    fn block_reduction_and_render() {
        let (n, fp) = single_gate_design(Point::new(500.0, 500.0));
        let ann = DelayAnnotation::extract(&n, &fp);
        let dynir = DynamicAnalysis::new(
            &n,
            &fp,
            GridConfig {
                branch_resistance_ohm: 100.0,
                ..GridConfig::default()
            },
        );
        let m = dynir.analyze(&ann, &trace_on(NetId::new(1), 1, true));
        let b = scap_netlist::BlockId::new(0);
        assert!(m.worst_block_drop_vdd(&n, b) > 0.0);
        assert_eq!(m.worst_block_drop_vss(&n, b), 0.0);
        let art = m.render_vdd_map(n.library.vdd);
        assert_eq!(art.lines().count(), dynir.grid().nodes_per_side());
        assert!(m.red_fraction(0.0) <= 1.0);
    }

    /// A session (reused solver buffers) reproduces the one-shot path
    /// bit for bit, across several patterns.
    #[test]
    fn session_matches_one_shot_analysis_exactly() {
        let (n, fp) = single_gate_design(Point::new(500.0, 500.0));
        let ann = DelayAnnotation::extract(&n, &fp);
        let dynir = DynamicAnalysis::new(
            &n,
            &fp,
            GridConfig {
                branch_resistance_ohm: 50.0,
                ..GridConfig::default()
            },
        );
        let mut session = dynir.session();
        for toggles in [1usize, 4, 9] {
            let t = trace_on(NetId::new(1), toggles, true);
            let one_shot = dynir.analyze(&ann, &t);
            let via_session = session.analyze(&ann, &t);
            for (a, b) in one_shot
                .node_drop_vdd_v
                .iter()
                .chain(&one_shot.node_drop_vss_v)
                .zip(
                    via_session
                        .node_drop_vdd_v
                        .iter()
                        .chain(&via_session.node_drop_vss_v),
                )
            {
                assert_eq!(a.to_bits(), b.to_bits(), "toggles = {toggles}");
            }
        }
    }

    #[test]
    fn quiescent_trace_has_no_drop() {
        let (n, fp) = single_gate_design(Point::new(500.0, 500.0));
        let ann = DelayAnnotation::extract(&n, &fp);
        let dynir = DynamicAnalysis::new(&n, &fp, GridConfig::default());
        let m = dynir.analyze(&ann, &ToggleTrace::default());
        assert_eq!(m.worst_drop_vdd(), 0.0);
        assert_eq!(m.worst_drop_vss(), 0.0);
        assert_eq!(m.red_fraction(0.18), 0.0);
    }
}
