//! Vector-less statistical IR-drop analysis (paper §2.2).
//!
//! Every net is assumed to toggle with a uniform probability per cycle
//! (the paper uses a deliberately pessimistic 30 % where designers
//! usually assume 20 %), and all switching energy is assumed to land
//! inside a chosen time window: the full clock cycle (Table 3 "Case 1") or
//! the average switching time window of half a cycle (Table 3 "Case 2",
//! motivated by the authors' earlier b19 measurements). The per-block
//! average switching power of Case 2 is the **SCAP threshold** the
//! pattern-generation procedure screens against.

use crate::{GridConfig, PowerGrid};
use scap_netlist::{BlockId, Floorplan, NetSource, Netlist};
use scap_timing::DelayAnnotation;
use serde::{Deserialize, Serialize};

/// Per-block statistical results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockStatistics {
    /// Average switching power over the window, mW.
    pub avg_power_mw: f64,
    /// Worst average IR-drop on the VDD network over the block's cells, V.
    pub worst_drop_vdd_v: f64,
    /// Worst average ground bounce on the VSS network, V.
    pub worst_drop_vss_v: f64,
}

/// Statistical analysis report: one row per block plus the chip total —
/// the shape of the paper's Table 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatisticalReport {
    /// Toggle probability assumed.
    pub toggle_probability: f64,
    /// Averaging window, ps.
    pub window_ps: f64,
    /// Per-block rows, indexed by [`BlockId::index`].
    pub blocks: Vec<BlockStatistics>,
    /// Chip-level row.
    pub chip: BlockStatistics,
}

/// Vector-less statistical IR-drop analyzer.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::{Netlist, Floorplan};
/// # use scap_timing::DelayAnnotation;
/// # fn demo(netlist: &Netlist, fp: &Floorplan, ann: &DelayAnnotation) {
/// use scap_power::{GridConfig, StatisticalAnalysis};
/// let stat = StatisticalAnalysis::new(netlist, fp, GridConfig::default());
/// // Case 2 of the paper's Table 3: half-cycle window, 30 % toggles.
/// let report = stat.run(ann, 0.30, 10_000.0);
/// println!("chip avg power {:.1} mW", report.chip.avg_power_mw);
/// # }
/// ```
#[derive(Debug)]
pub struct StatisticalAnalysis<'a> {
    netlist: &'a Netlist,
    floorplan: &'a Floorplan,
    grid: PowerGrid,
}

impl<'a> StatisticalAnalysis<'a> {
    /// Builds the analyzer (constructs the power mesh once).
    pub fn new(netlist: &'a Netlist, floorplan: &'a Floorplan, grid: GridConfig) -> Self {
        StatisticalAnalysis {
            netlist,
            floorplan,
            grid: PowerGrid::new(floorplan.die, grid),
        }
    }

    /// The underlying mesh (shared with dynamic analysis in callers).
    pub fn grid(&self) -> &PowerGrid {
        &self.grid
    }

    /// Runs the analysis for a toggle probability and averaging window.
    pub fn run(
        &self,
        annotation: &DelayAnnotation,
        toggle_probability: f64,
        window_ps: f64,
    ) -> StatisticalReport {
        let n = self.netlist;
        let vdd = n.library.vdd;
        let num_blocks = n.blocks().len();
        let mut gate_current = vec![0.0f64; n.num_gates()];
        let mut flop_current = vec![0.0f64; n.num_flops()];
        let mut block_power = vec![0.0f64; num_blocks];
        let mut chip_power = 0.0f64;
        for (i, net) in n.nets().iter().enumerate() {
            let cap = annotation.net_total_cap_ff(scap_netlist::NetId::new(i as u32));
            // Energy per cycle: p · C · V²  (fJ); power over window (mW).
            let power_mw = toggle_probability * cap * vdd * vdd / window_ps;
            // Average rail current: half the toggles draw from VDD.
            // fF·V/ps = mA; convert to A.
            let current_a = 0.5 * toggle_probability * cap * vdd / window_ps * 1e-3;
            match net.source {
                Some(NetSource::Gate(g)) => {
                    gate_current[g.index()] += current_a;
                    block_power[n.gate(g).block.index()] += power_mw;
                    chip_power += power_mw;
                }
                Some(NetSource::Flop(f)) => {
                    flop_current[f.index()] += current_a;
                    block_power[n.flop(f).block.index()] += power_mw;
                    chip_power += power_mw;
                }
                _ => {}
            }
        }
        let node_currents = self
            .grid
            .stamp(n, self.floorplan, &gate_current, &flop_current);
        // The symmetric mesh serves both rails; ground bounce mirrors the
        // VDD drop with the return current, which is identical here.
        let drops = self.grid.solve(&node_currents);
        let mut blocks = vec![BlockStatistics::default(); num_blocks];
        for (b, stat) in blocks.iter_mut().enumerate() {
            stat.avg_power_mw = block_power[b];
        }
        let mut chip = BlockStatistics {
            avg_power_mw: chip_power,
            ..BlockStatistics::default()
        };
        let mut visit = |block: BlockId, location: scap_netlist::Point| {
            let d = drops[self.grid.node_of(location)];
            let s = &mut blocks[block.index()];
            s.worst_drop_vdd_v = s.worst_drop_vdd_v.max(d);
            s.worst_drop_vss_v = s.worst_drop_vss_v.max(d);
            chip.worst_drop_vdd_v = chip.worst_drop_vdd_v.max(d);
            chip.worst_drop_vss_v = chip.worst_drop_vss_v.max(d);
        };
        for (i, g) in n.gates().iter().enumerate() {
            visit(
                g.block,
                self.floorplan
                    .placement
                    .gate(scap_netlist::GateId::new(i as u32)),
            );
        }
        for (i, f) in n.flops().iter().enumerate() {
            visit(
                f.block,
                self.floorplan
                    .placement
                    .flop(scap_netlist::FlopId::new(i as u32)),
            );
        }
        StatisticalReport {
            toggle_probability,
            window_ps,
            blocks,
            chip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use scap_netlist::{CellKind, ClockEdge, Die, NetlistBuilder, Placement, Point, Rect};

    /// Two blocks: B1 near the left edge, B2 dense at die center.
    fn two_block_design(gates_b1: usize, gates_b2: usize) -> (Netlist, Floorplan) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut b = NetlistBuilder::new("d");
        let b1 = b.add_block("B1");
        let b2 = b.add_block("B2");
        let clk = b.add_clock_domain("clka", 50e6);
        let mut gate_xy = Vec::new();
        // Keep each block's logic local so wire caps don't leak across
        // blocks and distort the per-block power comparison.
        let mut pool1 = vec![b.add_primary_input("pi0")];
        let mut pool2 = vec![b.add_primary_input("pi1")];
        for i in 0..gates_b1 {
            let a = pool1[rng.gen_range(0..pool1.len())];
            let y = b.add_net(format!("b1w{i}"));
            b.add_gate(CellKind::Inv, &[a], y, b1).unwrap();
            gate_xy.push(Point::new(
                rng.gen_range(10.0..120.0),
                rng.gen_range(10.0..990.0),
            ));
            pool1.push(y);
        }
        for i in 0..gates_b2 {
            let a = pool2[rng.gen_range(0..pool2.len())];
            let y = b.add_net(format!("b2w{i}"));
            b.add_gate(CellKind::Inv, &[a], y, b2).unwrap();
            gate_xy.push(Point::new(
                rng.gen_range(400.0..600.0),
                rng.gen_range(400.0..600.0),
            ));
            pool2.push(y);
        }
        let q = b.add_net("q");
        let d = pool2[pool2.len() - 1];
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, b2).unwrap();
        let n = b.finish().unwrap();
        let fp = Floorplan::new(
            &n,
            Die::square(1000.0),
            vec![
                Rect::new(0.0, 0.0, 130.0, 1000.0),
                Rect::new(350.0, 350.0, 650.0, 650.0),
            ],
            Placement::new(gate_xy, vec![Point::new(500.0, 500.0)]),
        );
        (n, fp)
    }

    #[test]
    fn halving_the_window_doubles_power() {
        let (n, fp) = two_block_design(50, 50);
        let ann = DelayAnnotation::extract(&n, &fp);
        let stat = StatisticalAnalysis::new(&n, &fp, GridConfig::default());
        let full = stat.run(&ann, 0.30, 20_000.0);
        let half = stat.run(&ann, 0.30, 10_000.0);
        for b in 0..n.blocks().len() {
            let r = half.blocks[b].avg_power_mw / full.blocks[b].avg_power_mw;
            assert!((r - 2.0).abs() < 1e-9, "block {b}: ratio {r}");
        }
        assert!(half.chip.avg_power_mw > full.chip.avg_power_mw);
    }

    #[test]
    fn center_block_sees_higher_drop_than_periphery_block() {
        let (n, fp) = two_block_design(80, 80);
        let ann = DelayAnnotation::extract(&n, &fp);
        let stat = StatisticalAnalysis::new(
            &n,
            &fp,
            GridConfig {
                branch_resistance_ohm: 4.0,
                ..GridConfig::default()
            },
        );
        let rep = stat.run(&ann, 0.30, 10_000.0);
        assert!(
            rep.blocks[1].worst_drop_vdd_v > rep.blocks[0].worst_drop_vdd_v,
            "center {} vs periphery {}",
            rep.blocks[1].worst_drop_vdd_v,
            rep.blocks[0].worst_drop_vdd_v
        );
        // Chip worst equals the max over blocks.
        assert!((rep.chip.worst_drop_vdd_v - rep.blocks[1].worst_drop_vdd_v).abs() < 1e-12);
    }

    #[test]
    fn power_scales_with_toggle_probability() {
        let (n, fp) = two_block_design(30, 30);
        let ann = DelayAnnotation::extract(&n, &fp);
        let stat = StatisticalAnalysis::new(&n, &fp, GridConfig::default());
        let p20 = stat.run(&ann, 0.20, 10_000.0);
        let p30 = stat.run(&ann, 0.30, 10_000.0);
        let r = p30.chip.avg_power_mw / p20.chip.avg_power_mw;
        assert!((r - 1.5).abs() < 1e-9, "{r}");
    }

    #[test]
    fn bigger_block_consumes_more_power() {
        let (n, fp) = two_block_design(20, 120);
        let ann = DelayAnnotation::extract(&n, &fp);
        let stat = StatisticalAnalysis::new(&n, &fp, GridConfig::default());
        let rep = stat.run(&ann, 0.30, 10_000.0);
        assert!(rep.blocks[1].avg_power_mw > rep.blocks[0].avg_power_mw);
    }
}
