//! The CAP and SCAP pattern power models (paper §2.3).
//!
//! For pattern *j* with switched output capacitances `C_i`:
//!
//! ```text
//! CAP_j  = Σ C_i · VDD² / T        (cycle average power, prior art [21])
//! SCAP_j = Σ C_i · VDD² / STW_j    (switching cycle average power, this paper)
//! ```
//!
//! where `STW_j` is the pattern's switching time window — the span of its
//! launch-to-capture switching activity. The calculator consumes the
//! toggle trace of the event-driven simulator exactly like the paper's PLI
//! consumes VCS simulation state, so no VCD file is ever materialized.
//! Rising transitions draw charge from the VDD network; falling
//! transitions dump it into VSS — the two networks are accounted
//! separately, as in the paper's Table 4.

use scap_netlist::{BlockId, NetSource, Netlist};
use scap_sim::ToggleTrace;
use scap_timing::DelayAnnotation;
use serde::{Deserialize, Serialize};

/// Power accounting for one block (or the whole chip).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockPower {
    /// Energy drawn from VDD during the window, fJ.
    pub energy_vdd_fj: f64,
    /// Energy sunk into VSS during the window, fJ.
    pub energy_vss_fj: f64,
    /// Toggle count attributed to the block.
    pub toggles: u32,
}

impl BlockPower {
    /// Average power over a window of `window_ps`, mW, for the VDD network.
    ///
    /// A pattern with no transitions has an empty (zero-width) switching
    /// time window; its SCAP is defined as 0, never NaN/∞. The guard must
    /// be `is_finite() && > 0.0` — a bare `<= 0.0` lets NaN through
    /// (`NaN <= 0.0` is false) and a NaN window would poison every
    /// downstream aggregate.
    pub fn power_vdd_mw(&self, window_ps: f64) -> f64 {
        if window_ps.is_finite() && window_ps > 0.0 {
            self.energy_vdd_fj / window_ps
        } else {
            0.0
        }
    }

    /// Average power over a window of `window_ps`, mW, for the VSS network.
    /// Same empty-window convention as [`BlockPower::power_vdd_mw`].
    pub fn power_vss_mw(&self, window_ps: f64) -> f64 {
        if window_ps.is_finite() && window_ps > 0.0 {
            self.energy_vss_fj / window_ps
        } else {
            0.0
        }
    }
}

/// Per-pattern CAP/SCAP report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PatternPower {
    /// Switching time window of the pattern, ps.
    pub stw_ps: f64,
    /// Tester cycle (clock period of the active domain), ps.
    pub period_ps: f64,
    /// Per-block energy, indexed by [`BlockId::index`].
    pub blocks: Vec<BlockPower>,
    /// Chip-level totals.
    pub chip: BlockPower,
}

impl PatternPower {
    /// SCAP of a block's VDD network, mW.
    pub fn scap_vdd_mw(&self, block: BlockId) -> f64 {
        self.blocks[block.index()].power_vdd_mw(self.stw_ps)
    }

    /// SCAP of a block's VSS network, mW.
    pub fn scap_vss_mw(&self, block: BlockId) -> f64 {
        self.blocks[block.index()].power_vss_mw(self.stw_ps)
    }

    /// CAP of a block's VDD network, mW.
    pub fn cap_vdd_mw(&self, block: BlockId) -> f64 {
        self.blocks[block.index()].power_vdd_mw(self.period_ps)
    }

    /// CAP of a block's VSS network, mW.
    pub fn cap_vss_mw(&self, block: BlockId) -> f64 {
        self.blocks[block.index()].power_vss_mw(self.period_ps)
    }

    /// Chip-level SCAP on VDD, mW.
    pub fn chip_scap_vdd_mw(&self) -> f64 {
        self.chip.power_vdd_mw(self.stw_ps)
    }

    /// Chip-level CAP on VDD, mW.
    pub fn chip_cap_vdd_mw(&self) -> f64 {
        self.chip.power_vdd_mw(self.period_ps)
    }
}

/// The SCAP calculator (the paper's Figure 5 flow, minus the VCD detour).
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::Netlist;
/// # use scap_timing::DelayAnnotation;
/// # use scap_sim::ToggleTrace;
/// # fn demo(netlist: &Netlist, ann: &DelayAnnotation, trace: &ToggleTrace) {
/// use scap_power::ScapCalculator;
/// let calc = ScapCalculator::new(netlist, ann, 20_000.0); // 20 ns cycle
/// let power = calc.measure(trace);
/// println!("chip SCAP = {:.1} mW vs CAP = {:.1} mW",
///          power.chip_scap_vdd_mw(), power.chip_cap_vdd_mw());
/// # }
/// ```
#[derive(Debug)]
pub struct ScapCalculator<'a> {
    netlist: &'a Netlist,
    annotation: &'a DelayAnnotation,
    period_ps: f64,
    net_block: Vec<Option<BlockId>>,
    vdd_sq: f64,
}

impl<'a> ScapCalculator<'a> {
    /// Builds the calculator for an active clock period of `period_ps`.
    pub fn new(netlist: &'a Netlist, annotation: &'a DelayAnnotation, period_ps: f64) -> Self {
        let net_block = netlist
            .nets()
            .iter()
            .map(|net| match net.source {
                Some(NetSource::Gate(g)) => Some(netlist.gate(g).block),
                Some(NetSource::Flop(f)) => Some(netlist.flop(f).block),
                _ => None,
            })
            .collect();
        ScapCalculator {
            netlist,
            annotation,
            period_ps,
            net_block,
            vdd_sq: netlist.library.vdd * netlist.library.vdd,
        }
    }

    /// Measures one pattern's toggle trace.
    pub fn measure(&self, trace: &ToggleTrace) -> PatternPower {
        let mut blocks = vec![BlockPower::default(); self.netlist.blocks().len()];
        let mut chip = BlockPower::default();
        for ev in &trace.events {
            let c = self.annotation.net_total_cap_ff(ev.net);
            let e = c * self.vdd_sq;
            let slot = self.net_block[ev.net.index()].map(|b| &mut blocks[b.index()]);
            for acc in [Some(&mut chip), slot].into_iter().flatten() {
                if ev.rising {
                    acc.energy_vdd_fj += e;
                } else {
                    acc.energy_vss_fj += e;
                }
                acc.toggles += 1;
            }
        }
        PatternPower {
            stw_ps: trace.stw_ps(),
            period_ps: self.period_ps,
            blocks,
            chip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, FlopId, NetlistBuilder};
    use scap_sim::EventSim;

    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("c");
        let blk1 = b.add_block("B1");
        let blk2 = b.add_block("B2");
        let clk = b.add_clock_domain("clka", 50e6);
        let q0 = b.add_net("q0");
        let w = b.add_net("w");
        let d1 = b.add_net("d1");
        let q1 = b.add_net("q1");
        let d0 = b.add_net("d0");
        b.add_gate(CellKind::Inv, &[q0], w, blk1).unwrap();
        b.add_gate(CellKind::Inv, &[w], d1, blk2).unwrap();
        b.add_gate(CellKind::Buf, &[q0], d0, blk1).unwrap();
        b.add_flop("ff0", d0, q0, clk, ClockEdge::Rising, blk1)
            .unwrap();
        b.add_flop("ff1", d1, q1, clk, ClockEdge::Rising, blk2)
            .unwrap();
        b.finish().unwrap()
    }

    fn trace(n: &Netlist, ann: &DelayAnnotation) -> ToggleTrace {
        let sim = EventSim::new(n, ann);
        // frame1: all zero is stable? q0=0 -> w=1, d1=0, d0=0. Build that.
        let mut frame1 = vec![false; n.num_nets()];
        frame1[1] = true; // w
        sim.run(&frame1, &[(FlopId::new(0), true, 500.0)])
    }

    #[test]
    fn scap_exceeds_cap_when_stw_is_shorter_than_cycle() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let t = trace(&n, &ann);
        let calc = ScapCalculator::new(&n, &ann, 20_000.0);
        let p = calc.measure(&t);
        assert!(p.stw_ps < p.period_ps);
        assert!(p.chip_scap_vdd_mw() > p.chip_cap_vdd_mw());
        // Ratio equals period / STW exactly.
        let ratio = p.chip_scap_vdd_mw() / p.chip_cap_vdd_mw();
        assert!((ratio - p.period_ps / p.stw_ps).abs() < 1e-9);
    }

    #[test]
    fn energy_is_attributed_to_driver_blocks() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let t = trace(&n, &ann);
        let calc = ScapCalculator::new(&n, &ann, 20_000.0);
        let p = calc.measure(&t);
        // q0 (flop in B1) rises, w (B1) falls, d1 (B2) rises, d0 (B1) rises.
        let b1 = p.blocks[0];
        let b2 = p.blocks[1];
        assert_eq!(b1.toggles, 3);
        assert_eq!(b2.toggles, 1);
        assert!(b1.energy_vdd_fj > 0.0 && b1.energy_vss_fj > 0.0);
        assert!(b2.energy_vdd_fj > 0.0);
        assert_eq!(b2.energy_vss_fj, 0.0);
        // Chip totals are the block sums (no PI nets toggle here).
        assert!((p.chip.energy_vdd_fj - (b1.energy_vdd_fj + b2.energy_vdd_fj)).abs() < 1e-9);
    }

    #[test]
    fn quiescent_trace_measures_zero() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let calc = ScapCalculator::new(&n, &ann, 20_000.0);
        let p = calc.measure(&ToggleTrace::default());
        assert_eq!(p.chip.toggles, 0);
        assert_eq!(p.chip_scap_vdd_mw(), 0.0);
        assert_eq!(p.chip_cap_vdd_mw(), 0.0);
    }

    /// Regression: a pattern that launches no transitions through the
    /// simulator (identical frames, no flop updates) has STW = 0; SCAP is
    /// defined as 0 for that empty window — not NaN from 0/0 and not ∞
    /// from energy/0.
    #[test]
    fn quiescent_pattern_yields_zero_scap_not_nan() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let sim = EventSim::new(&n, &ann);
        // A stable frame with no flop launch events: nothing toggles.
        let mut frame = vec![false; n.num_nets()];
        frame[1] = true; // w = !q0 is the settled value
        let t = sim.run(&frame, &[]);
        assert!(t.events.is_empty(), "launch-free run must not toggle");
        assert_eq!(t.stw_ps(), 0.0);
        let calc = ScapCalculator::new(&n, &ann, 20_000.0);
        let p = calc.measure(&t);
        for b in p.blocks.iter().chain([&p.chip]) {
            for v in [
                b.power_vdd_mw(p.stw_ps),
                b.power_vss_mw(p.stw_ps),
                b.power_vdd_mw(p.period_ps),
            ] {
                assert!(v.is_finite(), "non-finite power {v}");
            }
        }
        assert_eq!(p.chip_scap_vdd_mw(), 0.0);
        assert_eq!(p.chip_scap_vdd_mw(), p.chip_scap_vdd_mw()); // not NaN
    }

    /// A non-finite window (NaN/∞ from an upstream bug) must degrade to
    /// zero power rather than poisoning aggregates: `NaN <= 0.0` is false,
    /// so the old guard let NaN windows produce NaN power.
    #[test]
    fn non_finite_window_yields_zero_power() {
        let b = BlockPower {
            energy_vdd_fj: 12.0,
            energy_vss_fj: 7.0,
            toggles: 4,
        };
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -5.0] {
            assert_eq!(b.power_vdd_mw(w), 0.0, "window {w}");
            assert_eq!(b.power_vss_mw(w), 0.0, "window {w}");
        }
        assert!(b.power_vdd_mw(2.0) > 0.0);
    }

    #[test]
    fn vdd_vss_split_follows_toggle_direction() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let t = trace(&n, &ann);
        let calc = ScapCalculator::new(&n, &ann, 20_000.0);
        let p = calc.measure(&t);
        let rising = t.events.iter().filter(|e| e.rising).count();
        let falling = t.events.len() - rising;
        assert_eq!(rising, 3);
        assert_eq!(falling, 1);
        assert!(p.chip.energy_vdd_fj > p.chip.energy_vss_fj);
    }
}
