//! A zero-dependency CDCL SAT solver.
//!
//! Implements the standard conflict-driven clause-learning loop that
//! modern ATPG engines sit on: two-watched-literal unit propagation,
//! first-UIP conflict analysis with clause learning, VSIDS branching
//! with phase saving, and Luby-sequence restarts. A configurable
//! conflict limit turns an over-budget solve into
//! [`SolveResult::Unknown`] instead of running away, which is exactly
//! the "abort" semantics the ATPG hybrid flow needs: `Sat` yields a
//! test, `Unsat` is a *proof* of untestability, `Unknown` keeps the
//! fault classified as aborted.
//!
//! The solver is deliberately plain `std`: no allocator tricks, no
//! unsafe, no dependencies — every structure is a `Vec`. Clauses live
//! in a flat literal arena indexed by [`ClauseRef`]s, so the hot
//! propagation loop touches two contiguous slices and a watch list.
//!
//! # Example
//!
//! ```
//! use scap_sat::{Lit, Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// A propositional variable (0-based index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// The variable's 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | sign`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// `v` if `sign` is true, `¬v` otherwise.
    #[inline]
    pub fn with_sign(v: Var, sign: bool) -> Lit {
        if sign {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negated literal.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index (2·var + sign), for watch lists.
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A model exists; read it back with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable — a proof, not a give-up.
    Unsat,
    /// The conflict limit was hit before a verdict.
    Unknown,
}

/// Cumulative search statistics of a solver instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts hit (and analyzed) so far.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated by unit propagation.
    pub propagations: u64,
    /// Clauses learned from conflicts.
    pub learned_clauses: u64,
    /// Literals across all learned clauses.
    pub learned_literals: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Three-valued assignment.
const L_UNDEF: u8 = 2;

/// Reference to a clause in the arena.
type ClauseRef = u32;
const CREF_NONE: ClauseRef = u32::MAX;

/// One watch-list entry: the clause plus a cached "blocker" literal —
/// if the blocker is already true the clause is satisfied and the
/// watcher never dereferences the arena.
#[derive(Clone, Copy, Debug)]
struct Watch {
    cref: ClauseRef,
    blocker: Lit,
}

/// Indexed binary max-heap over variable activities (the VSIDS order).
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// Position of each var in `heap`, `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarOrder {
    fn grow_to(&mut self, n: usize) {
        self.pos.resize(n, usize::MAX);
    }

    fn contains(&self, v: usize) -> bool {
        self.pos[v] != usize::MAX
    }

    fn insert(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v as u32);
        self.up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<usize> {
        let top = *self.heap.first()? as usize;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.down(0, act);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    fn bumped(&mut self, v: usize, act: &[f64]) {
        if self.contains(v) {
            self.up(self.pos[v], act);
        }
    }

    fn up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[p] as usize] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }

    fn down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let c =
                if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[l] as usize] {
                    r
                } else {
                    l
                };
            if act[self.heap[c] as usize] <= act[self.heap[i] as usize] {
                break;
            }
            self.swap(i, c);
            i = c;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

/// The i-th term of the Luby restart sequence (1,1,2,1,1,2,4,…).
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its position.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

/// A CDCL SAT solver (see the crate docs).
#[derive(Debug, Default)]
pub struct Solver {
    // Clause arena: all literals back to back, headers index into it.
    arena: Vec<Lit>,
    clauses: Vec<(u32, u32)>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<u8>,
    /// Saved polarity per var (phase saving; initial phase negative).
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    seen: Vec<bool>,
    /// Formula already contradictory at level 0 (empty clause added or
    /// top-level conflict).
    unsat: bool,
    conflict_limit: Option<u64>,
    stats: SolverStats,
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Caps the number of conflicts a [`Solver::solve`] call may spend;
    /// past the cap the solve returns [`SolveResult::Unknown`].
    pub fn set_conflict_limit(&mut self, limit: u64) {
        self.conflict_limit = Some(limit);
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len();
        self.assign.push(L_UNDEF);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(CREF_NONE);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(v + 1);
        self.order.insert(v, &self.activity);
        Var(v as u32)
    }

    /// The current value of `lit`: `L_UNDEF`, 0 (false) or 1 (true).
    #[inline]
    fn lit_value(&self, lit: Lit) -> u8 {
        let a = self.assign[lit.var().index()];
        if a == L_UNDEF {
            L_UNDEF
        } else {
            a ^ (lit.is_neg() as u8)
        }
    }

    /// The model value of `v` after a `Sat` result (`None` only if the
    /// variable was never touched by the search, in which case either
    /// polarity extends the model).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            L_UNDEF => None,
            a => Some(a == 1),
        }
    }

    /// Adds a clause (an OR over `lits`). Returns `false` when the
    /// formula is already unsatisfiable at the top level. Clauses must
    /// be added before [`Solver::solve`]; duplicate and tautological
    /// clauses are normalized away.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "add_clause only at level 0");
        if self.unsat {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology (p ∨ ¬p) — sorted order puts the pair adjacent.
        if c.windows(2).any(|w| w[0] == !w[1]) {
            return true;
        }
        // Level-0 simplification: drop false literals, satisfied clause
        // is dropped whole (every assignment here is level 0).
        c.retain(|&l| self.lit_value(l) != 0);
        if c.iter().any(|&l| self.lit_value(l) == 1) {
            return true;
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], CREF_NONE);
                // Keep the level-0 assignment closure tight so later
                // add_clause simplifications see the implied units too.
                if self.propagate().is_some() {
                    self.unsat = true;
                }
                !self.unsat
            }
            _ => {
                let cref = self.alloc(&c);
                self.attach(cref);
                true
            }
        }
    }

    fn alloc(&mut self, lits: &[Lit]) -> ClauseRef {
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(lits);
        self.clauses.push((start, lits.len() as u32));
        (self.clauses.len() - 1) as ClauseRef
    }

    fn attach(&mut self, cref: ClauseRef) {
        let (s, _) = self.clauses[cref as usize];
        let c0 = self.arena[s as usize];
        let c1 = self.arena[s as usize + 1];
        self.watches[(!c0).index()].push(Watch { cref, blocker: c1 });
        self.watches[(!c1).index()].push(Watch { cref, blocker: c0 });
    }

    /// Assigns `lit` true with `reason`, pushing it on the trail. The
    /// caller must know `lit` is currently unassigned.
    fn enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(lit), L_UNDEF);
        let v = lit.var().index();
        self.assign[v] = !lit.is_neg() as u8;
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation to fixpoint. Returns the conflicting clause, if
    /// any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // `p` became true: visit clauses watching ¬p.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == 1 {
                    i += 1;
                    continue;
                }
                let (s, n) = self.clauses[w.cref as usize];
                let (s, n) = (s as usize, n as usize);
                // Normalize: the false watched literal goes to slot 1.
                if self.arena[s] == !p {
                    self.arena.swap(s, s + 1);
                }
                let first = self.arena[s];
                if first != w.blocker && self.lit_value(first) == 1 {
                    ws[i] = Watch {
                        cref: w.cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..n {
                    if self.lit_value(self.arena[s + k]) != 0 {
                        self.arena.swap(s + 1, s + k);
                        let nw = self.arena[s + 1];
                        self.watches[(!nw).index()].push(Watch {
                            cref: w.cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under `first`.
                ws[i] = Watch {
                    cref: w.cref,
                    blocker: first,
                };
                i += 1;
                if self.lit_value(first) == 0 {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, w.cref);
            }
            debug_assert!(self.watches[p.index()].is_empty() || conflict.is_none());
            // Watches pushed onto the original Vec while `ws` was taken
            // out (same-literal re-watch) must survive the put-back.
            let stragglers = std::mem::replace(&mut self.watches[p.index()], ws);
            self.watches[p.index()].extend(stragglers);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the level to backjump to.
    fn analyze(&mut self, mut cref: ClauseRef) -> (Vec<Lit>, u32) {
        let current = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting lit
        let mut counter = 0u32;
        let mut idx = self.trail.len();
        let mut p: Option<Lit> = None;
        loop {
            debug_assert_ne!(cref, CREF_NONE);
            let (s, n) = self.clauses[cref as usize];
            for k in 0..n as usize {
                let q = self.arena[s as usize + k];
                // Skip the literal this clause propagated (it is the one
                // being resolved on).
                if Some(q) == p {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            cref = self.reason[lit.var().index()];
            p = Some(lit);
        }
        // Backjump level: the highest level among the non-asserting
        // literals; that literal moves to slot 1 to be watched.
        let mut back = 0u32;
        for k in 1..learnt.len() {
            let l = self.level[learnt[k].var().index()];
            if l > back {
                back = l;
                learnt.swap(1, k);
            }
        }
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, back)
    }

    /// Undoes all assignments above `target_level`.
    fn backtrack(&mut self, target_level: u32) {
        if self.trail_lim.len() as u32 <= target_level {
            return;
        }
        let keep = self.trail_lim[target_level as usize];
        for &lit in &self.trail[keep..] {
            let v = lit.var().index();
            self.assign[v] = L_UNDEF;
            self.phase[v] = !lit.is_neg();
            self.reason[v] = CREF_NONE;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = keep;
    }

    /// Picks the next branching variable (highest VSIDS activity).
    fn decide(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v] == L_UNDEF {
                return Some(Lit::with_sign(Var(v as u32), self.phase[v]));
            }
        }
        None
    }

    /// Runs the CDCL search to a verdict (or to the conflict limit).
    pub fn solve(&mut self) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart_no = 0u64;
        loop {
            let budget = 100 * luby(restart_no);
            match self.search(budget, start_conflicts) {
                Some(res) => return res,
                None => {
                    self.stats.restarts += 1;
                    restart_no += 1;
                    self.backtrack(0);
                }
            }
        }
    }

    /// One restart's worth of search; `None` means "restart now".
    fn search(&mut self, budget: u64, start_conflicts: u64) -> Option<SolveResult> {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, back) = self.analyze(confl);
                self.backtrack(back);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], CREF_NONE);
                } else {
                    let cref = self.alloc(&learnt);
                    self.attach(cref);
                    self.enqueue(learnt[0], cref);
                }
                self.stats.learned_clauses += 1;
                self.stats.learned_literals += learnt.len() as u64;
                self.var_inc /= 0.95;
                if let Some(limit) = self.conflict_limit {
                    if self.stats.conflicts - start_conflicts >= limit {
                        self.backtrack(0);
                        return Some(SolveResult::Unknown);
                    }
                }
                if conflicts >= budget {
                    return None;
                }
            } else {
                match self.decide() {
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, CREF_NONE);
                    }
                    None => return Some(SolveResult::Sat),
                }
            }
        }
    }

    /// Adds the sequential-counter (Sinz) encoding of "at most `k` of
    /// `lits` are true". With `k = 0` every literal is simply forced
    /// false. Auxiliary register variables are created internally.
    pub fn add_at_most_k(&mut self, lits: &[Lit], k: usize) -> bool {
        if k >= lits.len() {
            return true;
        }
        if k == 0 {
            for &l in lits {
                if !self.add_clause(&[!l]) {
                    return false;
                }
            }
            return true;
        }
        let n = lits.len();
        // s[i][j] ⇔ "at least j+1 of the first i+1 literals are true"
        // (one-directional implications suffice for at-most-k).
        let regs: Vec<Vec<Lit>> = (0..n - 1)
            .map(|_| (0..k).map(|_| Lit::pos(self.new_var())).collect())
            .collect();
        let mut ok = self.add_clause(&[!lits[0], regs[0][0]]);
        let upper: Vec<Lit> = regs[0][1..].to_vec();
        for r in upper {
            ok &= self.add_clause(&[!r]);
        }
        for i in 1..n {
            if i < n - 1 {
                ok &= self.add_clause(&[!lits[i], regs[i][0]]);
                ok &= self.add_clause(&[!regs[i - 1][0], regs[i][0]]);
                for j in 1..k {
                    ok &= self.add_clause(&[!lits[i], !regs[i - 1][j - 1], regs[i][j]]);
                    ok &= self.add_clause(&[!regs[i - 1][j], regs[i][j]]);
                }
            }
            // Overflow: literal i true while the first i literals
            // already reached k.
            ok &= self.add_clause(&[!lits[i], !regs[i - 1][k - 1]]);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn literal_packing_roundtrips() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::neg(v).is_neg());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u64).map(luby).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_contradiction_is_unsat() {
        let mut s = Solver::new();
        let x = lits(&mut s, 1);
        assert!(s.add_clause(&[x[0]]));
        assert!(!s.add_clause(&[!x[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let x = lits(&mut s, 5);
        for w in x.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        s.add_clause(&[x[0]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &l in &x {
            assert_eq!(s.value(l.var()), Some(true));
        }
    }

    /// Pigeonhole 4 pigeons / 3 holes: classically hard for resolution
    /// at scale, trivially small here, and definitely UNSAT.
    #[test]
    fn pigeonhole_is_unsat() {
        let (p, h) = (4usize, 3usize);
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..p).map(|_| lits(&mut s, h)).collect();
        for row in &x {
            s.add_clause(row);
        }
        for (a, row_a) in x.iter().enumerate() {
            for row_b in &x[a + 1..] {
                for (&la, &lb) in row_a.iter().zip(row_b) {
                    s.add_clause(&[!la, !lb]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn conflict_limit_yields_unknown() {
        // Pigeonhole 7/6 needs far more than 2 conflicts.
        let (p, h) = (7usize, 6usize);
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..p).map(|_| lits(&mut s, h)).collect();
        for row in &x {
            s.add_clause(row);
        }
        for (a, row_a) in x.iter().enumerate() {
            for row_b in &x[a + 1..] {
                for (&la, &lb) in row_a.iter().zip(row_b) {
                    s.add_clause(&[!la, !lb]);
                }
            }
        }
        s.set_conflict_limit(2);
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    /// Brute-force cross-check: random 3-CNF over ≤ 10 vars, solver
    /// verdict must match exhaustive enumeration, and SAT models must
    /// satisfy every clause.
    #[test]
    fn random_3cnf_matches_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
        for _case in 0..300 {
            let nv = rng.gen_range(3..10usize);
            let nc = rng.gen_range(1..40usize);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    c.push((rng.gen_range(0..nv), rng.gen::<bool>()));
                }
                clauses.push(c);
            }
            let brute_sat = (0u32..1 << nv).any(|m| {
                clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, sign)| ((m >> v) & 1 == 1) == sign))
            });
            let mut s = Solver::new();
            let vars = lits(&mut s, nv);
            for c in &clauses {
                let cl: Vec<Lit> = c
                    .iter()
                    .map(|&(v, sign)| if sign { vars[v] } else { !vars[v] })
                    .collect();
                s.add_clause(&cl);
            }
            let res = s.solve();
            if brute_sat {
                assert_eq!(res, SolveResult::Sat);
                for c in &clauses {
                    assert!(
                        c.iter()
                            .any(|&(v, sign)| s.value(vars[v].var()) == Some(sign)),
                        "model violates a clause"
                    );
                }
            } else {
                assert_eq!(res, SolveResult::Unsat);
            }
        }
    }

    /// The sequential counter admits exactly the ≤k assignments.
    #[test]
    fn at_most_k_counts_correctly() {
        for n in 1..6usize {
            for k in 0..=n {
                // Count models over the n original vars by iterating
                // all forced assignments.
                let mut models = 0u32;
                for m in 0u32..1 << n {
                    let mut s = Solver::new();
                    let vars = lits(&mut s, n);
                    let mut feasible = s.add_at_most_k(&vars, k);
                    for (v, &lit) in vars.iter().enumerate() {
                        let want = (m >> v) & 1 == 1;
                        feasible &= s.add_clause(&[if want { lit } else { !lit }]);
                    }
                    let sat = feasible && s.solve() == SolveResult::Sat;
                    assert_eq!(sat, m.count_ones() as usize <= k, "n={n} k={k} m={m:b}");
                    models += sat as u32;
                }
                let expect: u32 = (0..=k as u32).map(|j| binom(n as u32, j)).sum();
                assert_eq!(models, expect, "n={n} k={k}");
            }
        }
    }

    fn binom(n: u32, k: u32) -> u32 {
        if k > n {
            return 0;
        }
        let mut r = 1u32;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn stats_advance_during_search() {
        let mut s = Solver::new();
        let x = lits(&mut s, 8);
        // XOR-ish chains force real search.
        for w in x.windows(2) {
            s.add_clause(&[w[0], w[1]]);
            s.add_clause(&[!w[0], !w[1]]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let st = s.stats();
        assert!(st.decisions > 0);
        assert!(st.propagations > 0);
    }
}
