//! Kernel-vs-oracle property for static timing: on random netlists with
//! random placements, the event-driven timing simulator's last-transition
//! timestamp at every net must stay at or below the [`SlackSta`] arrival
//! bound — the same differential pattern `kernel_equivalence.rs` applies
//! to the fault-propagation kernel. STA over-approximates (max-delay edge
//! per gate, worst input arrival); the event sim takes the real rise/fall
//! edge for the value actually switching, so equality only occurs when
//! the critical edge is the one that fires.

use proptest::prelude::*;
use scap_netlist::{
    CellKind, ClockEdge, ClockId, Die, Floorplan, FlopId, Logic, NetId, Netlist, NetlistBuilder,
    Placement, Point, Rect,
};
use scap_sim::{loc, EventSim, LogicSim};
use scap_timing::{ClockTree, DelayAnnotation, SlackSta};

/// Slack allowed for femtosecond rounding inside the event queue (one
/// half-femtosecond per hop, paths stay well under 200 stages).
const EPS_PS: f64 = 0.1;

/// Strategy: a random acyclic netlist plus a random placement, so the
/// extracted (distance-dependent, non-uniform) delays are exercised
/// rather than a flat unit-delay annotation.
fn arb_placed_netlist(max_gates: usize) -> impl Strategy<Value = (Netlist, Floorplan)> {
    (2usize..6, 5usize..max_gates.max(6), any::<u64>()).prop_map(|(n_ff, n_gates, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new("sta_bound");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut pool = vec![b.add_primary_input("pi0"), b.add_primary_input("pi1")];
        let qs: Vec<NetId> = (0..n_ff).map(|i| b.add_net(format!("q{i}"))).collect();
        pool.extend(qs.iter().copied());
        let kinds = [
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Buf,
            CellKind::Inv,
        ];
        let mut outs = Vec::new();
        for i in 0..n_gates {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let y = b.add_net(format!("w{i}"));
            let a = pool[rng.gen_range(0..pool.len())];
            if matches!(kind, CellKind::Buf | CellKind::Inv) {
                b.add_gate(kind, &[a], y, blk).unwrap();
            } else {
                let c = pool[rng.gen_range(0..pool.len())];
                b.add_gate(kind, &[a, c], y, blk).unwrap();
            }
            pool.push(y);
            outs.push(y);
        }
        for (i, &q) in qs.iter().enumerate() {
            let d = outs[rng.gen_range(0..outs.len())];
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        let n = b.finish().unwrap();
        let mut point = |_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
        let fp = Floorplan::new(
            &n,
            Die::square(100.0),
            vec![Rect::new(0.0, 0.0, 100.0, 100.0)],
            Placement::new(
                (0..n.num_gates()).map(&mut point).collect(),
                (0..n.num_flops()).map(&mut point).collect(),
            ),
        );
        (n, fp)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every transition the event simulator produces happens at or before
    /// the static arrival bound of its net, and only on nets STA marks
    /// reachable from a launch point.
    #[test]
    fn event_sim_never_beats_the_sta_arrival_bound(
        (n, fp) in arb_placed_netlist(24),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let arrivals = tree.arrivals();
        let sta = SlackSta::run(&n, &ann, &arrivals);

        // A random fully-specified broadside pattern.
        let load: Vec<Logic> = (0..n.num_flops())
            .map(|_| if rng.gen() { Logic::One } else { Logic::Zero })
            .collect();
        let pi: Vec<Logic> = (0..n.primary_inputs().len())
            .map(|_| if rng.gen() { Logic::One } else { Logic::Zero })
            .collect();
        let sim = LogicSim::new(&n);
        let frames = loc::loc_frames(&sim, &load, &pi, ClockId::new(0));
        let frame1: Vec<bool> = frames
            .frame1
            .iter()
            .map(|v| v.to_bool().expect("fully-specified pattern"))
            .collect();
        let mut launches = Vec::new();
        for (i, loaded) in load.iter().enumerate() {
            let f = FlopId::new(i as u32);
            let new_q = frames.state2[i].to_bool().expect("specified state");
            if new_q != loaded.to_bool().expect("specified load") {
                let t_clk = arrivals.arrival_ps(f).expect("single-domain design");
                launches.push((f, new_q, t_clk + ann.flop_clk_to_q_ps(f)));
            }
        }
        let trace = EventSim::new(&n, &ann).run(&frame1, &launches);

        for i in 0..n.num_nets() {
            let net = NetId::new(i as u32);
            if let Some(t) = trace.last_change_ps(net) {
                prop_assert!(
                    sta.is_reachable(net),
                    "net {i} toggled but STA calls it unreachable from any launch"
                );
                prop_assert!(
                    t <= sta.arrival_ps(net) + EPS_PS,
                    "net {i} toggled at {t} ps, past the STA bound {} ps",
                    sta.arrival_ps(net)
                );
            }
        }
    }
}
