//! Differential tests of the word-packed (PPSFP) block kernel.
//!
//! [`TransitionFaultSim::detect_block`] grades 64 patterns per gate
//! evaluation; these properties pin it, lane for lane, to the scalar
//! three-valued machinery ([`LogicSim`] with fault injection) on
//! randomized netlists, faults and pattern blocks — including partially
//! filled final blocks, where stale lanes must never leak into a
//! detection mask, and partially specified patterns, where X bits must
//! behave exactly like the scalar Kleene evaluator.

use proptest::prelude::*;
use scap_netlist::{CellKind, ClockEdge, ClockId, Logic, NetId, Netlist, NetlistBuilder};
use scap_sim::{
    pack_logic, unpack_lane, FaultList, Injection, LogicSim, PropagationScratch, TransitionFault,
    TransitionFaultSim,
};

/// Strategy: a random acyclic netlist (same shape as the scalar kernel
/// equivalence tests: chains, dead cones, mixing gates).
fn arb_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    (2usize..6, 5usize..max_gates.max(6), any::<u64>()).prop_map(|(n_ff, n_gates, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new("blk");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut pool = vec![b.add_primary_input("pi0"), b.add_primary_input("pi1")];
        let qs: Vec<NetId> = (0..n_ff).map(|i| b.add_net(format!("q{i}"))).collect();
        pool.extend(qs.iter().copied());
        let kinds = [
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Mux2,
            CellKind::Buf,
            CellKind::Inv,
        ];
        let mut outs = Vec::new();
        for i in 0..n_gates {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let y = b.add_net(format!("w{i}"));
            let mut ins = Vec::with_capacity(kind.num_inputs());
            for _ in 0..kind.num_inputs() {
                ins.push(pool[rng.gen_range(0..pool.len())]);
            }
            b.add_gate(kind, &ins, y, blk).unwrap();
            pool.push(y);
            outs.push(y);
        }
        for (i, &q) in qs.iter().enumerate() {
            let d = outs[rng.gen_range(0..outs.len())];
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    })
}

/// Scalar launch-off-capture detection of one fault under one
/// three-valued pattern, built from [`LogicSim`] alone: launch check on
/// the site net, faulty frame 2 via injection of the pre-transition
/// value, detection where a capture flop's D net is known on both
/// machines and differs.
fn scalar_detect_lane(
    n: &Netlist,
    sim: &LogicSim,
    active: ClockId,
    load: &[Logic],
    pi: &[Logic],
    fault: TransitionFault,
) -> bool {
    let v1 = sim.eval(load, pi, None);
    let mut st = Vec::with_capacity(n.num_flops());
    for (i, f) in n.flops().iter().enumerate() {
        st.push(if f.clock == active {
            v1[f.d.index()]
        } else {
            load[i]
        });
    }
    let good2 = sim.eval(&st, pi, None);
    let site = fault.site.net(n).index();
    let v_init = Logic::from_bool(fault.polarity.initial_value());
    let v_final = Logic::from_bool(fault.polarity.final_value());
    if v1[site] != v_init || good2[site] != v_final {
        return false;
    }
    let faulty2 = sim.eval(
        &st,
        pi,
        Some(Injection {
            site: fault.site,
            value: v_init,
        }),
    );
    n.flops().iter().any(|f| {
        let d = f.d.index();
        f.clock == active
            && good2[d] != Logic::X
            && faulty2[d] != Logic::X
            && good2[d] != faulty2[d]
    })
}

/// A random three-valued pattern; `x_free` forces full specification
/// (the fast two-valued block path).
fn rand_pattern(rng: &mut impl rand::Rng, width: usize, x_free: bool) -> Vec<Logic> {
    (0..width)
        .map(|_| {
            if !x_free && rng.gen_range(0..4) == 0 {
                Logic::X
            } else if rng.gen() {
                Logic::One
            } else {
                Logic::Zero
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `pack_logic` / `unpack_lane` round-trip: every packed lane reads
    /// back exactly, stale lanes read back as all-X, and the planes are
    /// canonical (no value bit without its care bit).
    #[test]
    fn pack_unpack_round_trips(
        seed in any::<u64>(),
        count in 1usize..=64,
        width in 0usize..24,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vecs: Vec<Vec<Logic>> = (0..count)
            .map(|_| {
                let x_free = rng.gen();
                rand_pattern(&mut rng, width, x_free)
            })
            .collect();
        let (val, care) = pack_logic(&vecs);
        for (i, (&v, &c)) in val.iter().zip(&care).enumerate() {
            prop_assert_eq!(v & !c, 0, "non-canonical plane word at {}", i);
            if count < 64 {
                let stale = !((1u64 << count) - 1);
                prop_assert_eq!(c & stale, 0, "care set on a stale lane at {}", i);
            }
        }
        for (p, vec) in vecs.iter().enumerate() {
            prop_assert_eq!(&unpack_lane(&val, &care, p), vec, "lane {} mangled", p);
        }
        if count < 64 {
            prop_assert_eq!(
                unpack_lane(&val, &care, count),
                vec![Logic::X; width],
                "stale lane not all-X"
            );
        }
    }

    /// `detect_block` ≡ 64 scalar single-pattern detections, on random
    /// netlists, the full fault universe and partially filled,
    /// partially specified blocks. Stale lanes never appear in a mask.
    #[test]
    fn block_kernel_matches_scalar_lanes(
        n in arb_netlist(20),
        seed in any::<u64>(),
        count in 1usize..=64,
        x_free in any::<bool>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clka = ClockId::new(0);
        let fsim = TransitionFaultSim::new(&n, clka);
        let sim = LogicSim::new(&n);
        let loads: Vec<Vec<Logic>> =
            (0..count).map(|_| rand_pattern(&mut rng, n.num_flops(), x_free)).collect();
        let pis: Vec<Vec<Logic>> = (0..count)
            .map(|_| rand_pattern(&mut rng, n.primary_inputs().len(), x_free))
            .collect();
        let block = fsim.block_from_logic(&loads, &pis);
        prop_assert_eq!(block.count, count);
        let mut scratch = PropagationScratch::new(n.num_nets());
        for &fault in FaultList::full(&n).faults() {
            let mask = fsim.detect_block(&block, fault, &mut scratch);
            prop_assert_eq!(
                mask & !block.valid_mask, 0,
                "stale lanes leaked into the mask of {:?}", fault
            );
            for p in 0..count {
                let scalar = scalar_detect_lane(&n, &sim, clka, &loads[p], &pis[p], fault);
                prop_assert_eq!(
                    mask >> p & 1 == 1,
                    scalar,
                    "lane {} of {:?} diverged (block mask {:#x})", p, fault, mask
                );
            }
        }
    }

    /// The single-pattern fast path of `detect_batch_with_scratch` (one
    /// valid bit, no block build) returns exactly the corresponding lane
    /// of the full-batch result, for every lane and every fault.
    #[test]
    fn sparse_masks_match_full_batch(
        n in arb_netlist(20),
        seed in any::<u64>(),
    ) {
        use rand::{Rng as _, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clka = ClockId::new(0);
        let fsim = TransitionFaultSim::new(&n, clka);
        let faults = FaultList::full(&n);
        let load: Vec<u64> = (0..n.num_flops()).map(|_| rng.gen()).collect();
        let pi: Vec<u64> = (0..n.primary_inputs().len()).map(|_| rng.gen()).collect();
        let mut scratch = PropagationScratch::new(n.num_nets());
        let full =
            fsim.detect_batch_with_scratch(&load, &pi, !0, faults.faults(), &mut scratch);
        for p in [0usize, 1, 17, 40, 63] {
            let bit = 1u64 << p;
            let single =
                fsim.detect_batch_with_scratch(&load, &pi, bit, faults.faults(), &mut scratch);
            for (i, (&f, &s)) in full.detect_mask.iter().zip(&single.detect_mask).enumerate() {
                prop_assert_eq!(
                    s, f & bit,
                    "fault {} lane {} disagrees between sparse and full mask", i, p
                );
            }
        }
    }
}
