//! Differential tests of the bucket-queue fault-propagation kernel.
//!
//! The fast path (epoch-stamped [`scap_sim::LevelQueue`] scheduling,
//! observability pruning, equivalence collapsing) must be *bit-identical*
//! to the retained heap-based reference propagator on every fault and
//! every pattern lane — these properties drive randomized netlists and
//! loads through both and compare the raw detect masks.

use proptest::prelude::*;
use scap_netlist::{CellKind, ClockEdge, NetId, Netlist, NetlistBuilder};
use scap_sim::{FaultList, PropagationScratch, TransitionFaultSim};

/// Strategy: a random acyclic netlist with inverter/buffer chains (to
/// exercise equivalence collapsing), dead logic (to exercise
/// observability pruning) and multi-input mixing gates.
fn arb_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    (2usize..6, 5usize..max_gates.max(6), any::<u64>()).prop_map(|(n_ff, n_gates, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new("prop");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut pool = vec![b.add_primary_input("pi0"), b.add_primary_input("pi1")];
        let qs: Vec<NetId> = (0..n_ff).map(|i| b.add_net(format!("q{i}"))).collect();
        pool.extend(qs.iter().copied());
        let kinds = [
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Buf,
            CellKind::Inv,
            CellKind::Buf, // weighted: more single-input chains
            CellKind::Inv,
        ];
        let mut outs = Vec::new();
        for i in 0..n_gates {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let y = b.add_net(format!("w{i}"));
            let a = pool[rng.gen_range(0..pool.len())];
            if matches!(kind, CellKind::Buf | CellKind::Inv) {
                b.add_gate(kind, &[a], y, blk).unwrap();
            } else {
                let c = pool[rng.gen_range(0..pool.len())];
                b.add_gate(kind, &[a, c], y, blk).unwrap();
            }
            pool.push(y);
            outs.push(y);
        }
        // Only some gate outputs feed flops: the rest are dead cones the
        // pruning pass must classify as unobservable.
        for (i, &q) in qs.iter().enumerate() {
            let d = outs[rng.gen_range(0..outs.len())];
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bucket-queue kernel and the heap-based reference propagator
    /// return the same detect mask for every fault of the full
    /// (uncollapsed) universe on random fully-specified pattern batches.
    #[test]
    fn bucket_kernel_matches_reference_propagator(
        n in arb_netlist(24),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clka = scap_netlist::ClockId::new(0);
        let fsim = TransitionFaultSim::new(&n, clka);
        let faults = FaultList::full(&n);
        let load: Vec<u64> = (0..n.num_flops()).map(|_| rng.gen()).collect();
        let pi: Vec<u64> = (0..n.primary_inputs().len()).map(|_| rng.gen()).collect();
        let frames = fsim.frames(&load, &pi);
        let mut scratch = PropagationScratch::new(n.num_nets());
        for &fault in faults.faults() {
            let fast = fsim.detect_one(&frames, !0, fault, &mut scratch);
            let reference = fsim.detect_one_reference(&frames, !0, fault);
            prop_assert_eq!(
                fast, reference,
                "kernel diverged from reference on {:?}", fault
            );
            // The pruning pass may only skip faults the reference also
            // never detects.
            if !fsim.is_observable(fault) {
                prop_assert_eq!(reference, 0, "pruned a detectable fault {:?}", fault);
            }
        }
    }

    /// Transition-fault equivalence collapsing is exact: a class
    /// representative's detect mask equals every member's own mask, so
    /// credit expansion over the class loses nothing.
    #[test]
    fn collapse_representative_answers_for_members(
        n in arb_netlist(24),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clka = scap_netlist::ClockId::new(0);
        let fsim = TransitionFaultSim::new(&n, clka);
        let faults = FaultList::full(&n);
        let collapse = faults.collapse(&n);
        let rep = collapse.rep();
        let list = faults.faults();
        let load: Vec<u64> = (0..n.num_flops()).map(|_| rng.gen()).collect();
        let pi: Vec<u64> = (0..n.primary_inputs().len()).map(|_| rng.gen()).collect();
        let frames = fsim.frames(&load, &pi);
        let mut scratch = PropagationScratch::new(n.num_nets());
        // Idempotence: a representative represents itself.
        for (i, &r) in rep.iter().enumerate() {
            prop_assert_eq!(rep[r as usize], r, "rep chain not flattened at {}", i);
        }
        for (i, &fault) in list.iter().enumerate() {
            let own = fsim.detect_one(&frames, !0, fault, &mut scratch);
            let via_rep = fsim.detect_one(&frames, !0, list[rep[i] as usize], &mut scratch);
            prop_assert_eq!(
                own, via_rep,
                "member {:?} and representative {:?} disagree",
                fault, list[rep[i] as usize]
            );
        }
    }
}
