//! Word-packed two-frame pattern blocks: the PPSFP front end.
//!
//! A [`PatternBlock`] transposes up to 64 load/PI vectors into per-net
//! `u64` initial/final planes. Each three-valued [`Logic`] value is
//! encoded as two bits across a *value plane* and a *care plane*:
//!
//! | `Logic` | value bit | care bit |
//! |---------|-----------|----------|
//! | `Zero`  | 0         | 1        |
//! | `One`   | 1         | 1        |
//! | `X`     | 0         | 0        |
//!
//! The encoding is canonical (the value bit is 0 wherever care is 0),
//! so plane equality is word equality. One bitwise gate evaluation
//! ([`eval_word3`]) computes all 64 patterns' three-valued outputs at
//! once, matching [`CellKind::eval`] lane for lane.
//!
//! Fully-specified blocks (every load/PI bit known on every valid lane,
//! the situation after ATPG fill) are flagged at build time: their care
//! planes are constant `valid_mask`, and the detection kernel
//! ([`TransitionFaultSim::detect_block`]) skips all care-plane work on
//! them, degenerating to exactly the two-valued diff propagation of
//! [`TransitionFaultSim::detect_one`].

use crate::fault_sim::PropagationScratch;
use crate::loc::shift_state_words;
use crate::{FaultSite, LaunchMode, Polarity, TransitionFault, TransitionFaultSim};
use scap_netlist::{CellKind, Logic, NetSource};

/// A (value, care) word pair: 64 three-valued lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Vc {
    /// Value bits (meaningful only where `care` is set).
    pub v: u64,
    /// Care bits (0 = the lane is X).
    pub c: u64,
}

impl Vc {
    /// All lanes X.
    pub const X: Vc = Vc { v: 0, c: 0 };

    /// All lanes the known value `b`.
    #[inline]
    pub fn splat(b: bool) -> Vc {
        Vc {
            v: if b { !0 } else { 0 },
            c: !0,
        }
    }

    /// The [`Logic`] value of one lane.
    #[inline]
    pub fn lane(self, p: usize) -> Logic {
        if self.c >> p & 1 == 0 {
            Logic::X
        } else if self.v >> p & 1 == 1 {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

#[inline]
fn w_not(a: Vc) -> Vc {
    Vc {
        v: !a.v & a.c,
        c: a.c,
    }
}

#[inline]
fn w_and(a: Vc, b: Vc) -> Vc {
    // Kleene AND: known 0 dominates, 1 needs both known 1.
    let one = a.v & b.v;
    let zero = (a.c & !a.v) | (b.c & !b.v);
    Vc {
        v: one,
        c: one | zero,
    }
}

#[inline]
fn w_or(a: Vc, b: Vc) -> Vc {
    let one = a.v | b.v;
    let zero = a.c & !a.v & b.c & !b.v;
    Vc {
        v: one,
        c: one | zero,
    }
}

#[inline]
fn w_xor(a: Vc, b: Vc) -> Vc {
    let c = a.c & b.c;
    Vc {
        v: (a.v ^ b.v) & c,
        c,
    }
}

#[inline]
fn w_mux(s: Vc, a: Vc, b: Vc) -> Vc {
    let sel0 = s.c & !s.v;
    let sel1 = s.c & s.v;
    // Unknown select: the output is known only where both data lanes are
    // known and equal (matching `CellKind::eval`).
    let eq = a.c & b.c & !(a.v ^ b.v);
    let c = (sel0 & a.c) | (sel1 & b.c) | (!s.c & eq);
    let v = ((sel0 & a.v) | (sel1 & b.v) | (!s.c & eq & a.v)) & c;
    Vc { v, c }
}

/// Evaluates a cell over 64 three-valued lanes at once, lane-equivalent
/// to [`CellKind::eval`].
#[inline]
pub fn eval_word3(kind: CellKind, ins: &[Vc]) -> Vc {
    debug_assert_eq!(ins.len(), kind.num_inputs());
    match kind {
        CellKind::Buf => ins[0],
        CellKind::Inv => w_not(ins[0]),
        CellKind::And2 => w_and(ins[0], ins[1]),
        CellKind::And3 => w_and(w_and(ins[0], ins[1]), ins[2]),
        CellKind::Nand2 => w_not(w_and(ins[0], ins[1])),
        CellKind::Nand3 => w_not(w_and(w_and(ins[0], ins[1]), ins[2])),
        CellKind::Or2 => w_or(ins[0], ins[1]),
        CellKind::Or3 => w_or(w_or(ins[0], ins[1]), ins[2]),
        CellKind::Nor2 => w_not(w_or(ins[0], ins[1])),
        CellKind::Nor3 => w_not(w_or(w_or(ins[0], ins[1]), ins[2])),
        CellKind::Xor2 => w_xor(ins[0], ins[1]),
        CellKind::Xnor2 => w_not(w_xor(ins[0], ins[1])),
        CellKind::Mux2 => w_mux(ins[0], ins[1], ins[2]),
        CellKind::Aoi22 => w_not(w_or(w_and(ins[0], ins[1]), w_and(ins[2], ins[3]))),
        CellKind::Oai22 => w_not(w_and(w_or(ins[0], ins[1]), w_or(ins[2], ins[3]))),
    }
}

/// Transposes up to 64 `Logic` vectors (lane = vector index) into
/// per-position (value, care) planes.
///
/// # Panics
///
/// Panics if more than 64 vectors are given or their lengths differ.
pub fn pack_logic<L: AsRef<[Logic]>>(vectors: &[L]) -> (Vec<u64>, Vec<u64>) {
    assert!(vectors.len() <= 64, "a block holds at most 64 patterns");
    let width = vectors.first().map_or(0, |v| v.as_ref().len());
    let mut val = vec![0u64; width];
    let mut care = vec![0u64; width];
    for (p, vec) in vectors.iter().enumerate() {
        let vec = vec.as_ref();
        assert_eq!(vec.len(), width, "inconsistent vector width");
        for (i, &l) in vec.iter().enumerate() {
            match l {
                Logic::One => {
                    val[i] |= 1 << p;
                    care[i] |= 1 << p;
                }
                Logic::Zero => care[i] |= 1 << p,
                Logic::X => {}
            }
        }
    }
    (val, care)
}

/// Untransposes one lane of (value, care) planes back to a `Logic`
/// vector — the inverse of [`pack_logic`] for that lane.
pub fn unpack_lane(val: &[u64], care: &[u64], lane: usize) -> Vec<Logic> {
    val.iter()
        .zip(care)
        .map(|(&v, &c)| Vc { v, c }.lane(lane))
        .collect()
}

/// Up to 64 two-frame patterns, transposed into per-net word planes.
///
/// Built by [`TransitionFaultSim::block_from_words`] (fully-specified
/// loads, care ≡ `valid_mask`) or
/// [`TransitionFaultSim::block_from_logic`] (three-valued loads).
/// Lanes at and above `count` are *stale*: their plane bits are
/// meaningless and every detection kernel masks them out through
/// `valid_mask`.
#[derive(Clone, Debug)]
pub struct PatternBlock {
    /// Number of real patterns in the block.
    pub count: usize,
    /// One bit per real pattern.
    pub valid_mask: u64,
    /// Frame-1 (initial) value plane, one word per net.
    pub val1: Vec<u64>,
    /// Frame-1 care plane.
    pub care1: Vec<u64>,
    /// Frame-2 (final) value plane.
    pub val2: Vec<u64>,
    /// Frame-2 care plane.
    pub care2: Vec<u64>,
    /// Every net known on every valid lane (care planes ≡ `valid_mask`);
    /// detection then runs the two-valued fast path.
    pub fully_specified: bool,
}

impl<'a> TransitionFaultSim<'a> {
    /// Builds a [`PatternBlock`] from up to 64 fully-specified packed
    /// patterns (one load bit per flop, one PI bit per input, lane =
    /// pattern). The care planes are constant `valid_mask`.
    pub fn block_from_words(&self, load: &[u64], pi: &[u64], valid_mask: u64) -> PatternBlock {
        let frames = self.frames(load, pi);
        let num_nets = self.batch_sim().netlist().num_nets();
        let count = valid_mask.count_ones() as usize;
        scap_obs::counter!("sim.block_evals").incr();
        scap_obs::counter!("sim.patterns_per_block").add(count as u64);
        PatternBlock {
            count,
            valid_mask,
            val1: frames.frame1,
            care1: vec![valid_mask; num_nets],
            val2: frames.frame2,
            care2: vec![valid_mask; num_nets],
            fully_specified: true,
        }
    }

    /// Builds a [`PatternBlock`] from up to 64 three-valued patterns
    /// (`loads[p]` = scan load of pattern `p`, `pis[p]` = its held PI
    /// values). X bits stay X through both frames.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are given, the slices disagree in
    /// length, or the vectors don't match the netlist.
    pub fn block_from_logic<L: AsRef<[Logic]>, P: AsRef<[Logic]>>(
        &self,
        loads: &[L],
        pis: &[P],
    ) -> PatternBlock {
        assert_eq!(loads.len(), pis.len(), "one PI vector per load vector");
        let netlist = self.batch_sim().netlist();
        let count = loads.len();
        let valid_mask = if count == 64 { !0 } else { (1u64 << count) - 1 };
        let (load_v, load_c) = pack_logic(loads);
        let (pi_v, pi_c) = pack_logic(pis);
        assert_eq!(load_v.len(), netlist.num_flops(), "one load bit per flop");
        assert_eq!(pi_v.len(), netlist.primary_inputs().len(), "one bit per PI");
        let (val1, care1) = self.eval_plane3(&load_v, &load_c, &pi_v, &pi_c);
        let (st_v, st_c) = match self.launch_mode() {
            LaunchMode::Capture => {
                let active = self.active_clock();
                let mut st_v = Vec::with_capacity(load_v.len());
                let mut st_c = Vec::with_capacity(load_v.len());
                for (i, f) in netlist.flops().iter().enumerate() {
                    if f.clock == active {
                        st_v.push(val1[f.d.index()]);
                        st_c.push(care1[f.d.index()]);
                    } else {
                        st_v.push(load_v[i]);
                        st_c.push(load_c[i]);
                    }
                }
                (st_v, st_c)
            }
            LaunchMode::Shift => (
                shift_state_words(netlist, &load_v, 0),
                shift_state_words(netlist, &load_c, !0),
            ),
        };
        let (val2, care2) = self.eval_plane3(&st_v, &st_c, &pi_v, &pi_c);
        let fully_specified = load_c
            .iter()
            .chain(&pi_c)
            .all(|&c| c & valid_mask == valid_mask);
        scap_obs::counter!("sim.block_evals").incr();
        scap_obs::counter!("sim.patterns_per_block").add(count as u64);
        PatternBlock {
            count,
            valid_mask,
            val1,
            care1,
            val2,
            care2,
            fully_specified,
        }
    }

    /// One levelized three-valued word pass: sources from the given flop
    /// / PI planes (constants known), gates via [`eval_word3`].
    fn eval_plane3(
        &self,
        flop_v: &[u64],
        flop_c: &[u64],
        pi_v: &[u64],
        pi_c: &[u64],
    ) -> (Vec<u64>, Vec<u64>) {
        let netlist = self.batch_sim().netlist();
        let t = self.batch_sim().table();
        let mut val = vec![0u64; t.num_nets()];
        let mut care = vec![0u64; t.num_nets()];
        for (i, &net) in netlist.primary_inputs().iter().enumerate() {
            val[net.index()] = pi_v[i];
            care[net.index()] = pi_c[i];
        }
        for (i, flop) in netlist.flops().iter().enumerate() {
            val[flop.q.index()] = flop_v[i];
            care[flop.q.index()] = flop_c[i];
        }
        for (i, net) in netlist.nets().iter().enumerate() {
            if let Some(NetSource::Const(c)) = net.source {
                let w = Vc::splat(c);
                val[i] = w.v;
                care[i] = w.c;
            }
        }
        let mut inbuf = [Vc::X; 4];
        for &g in t.order() {
            let g = g as usize;
            let ins = t.inputs(g);
            for (k, &inp) in ins.iter().enumerate() {
                inbuf[k] = Vc {
                    v: val[inp as usize],
                    c: care[inp as usize],
                };
            }
            let out = eval_word3(t.kind(g), &inbuf[..ins.len()]);
            let o = t.output(g) as usize;
            val[o] = out.v;
            care[o] = out.c;
        }
        (val, care)
    }

    /// Detection mask of one fault against a pattern block: which valid
    /// lanes launch the transition at the site *and* propagate the
    /// frame-2 stuck-at difference to an observed capture point.
    ///
    /// On fully-specified blocks this runs the exact two-valued word
    /// propagation of [`TransitionFaultSim::detect_one`]; on three-valued
    /// blocks the fault-cone overlay carries a (value, care) pair per net
    /// and a lane detects only where good and faulty are both known and
    /// differ.
    pub fn detect_block(
        &self,
        block: &PatternBlock,
        fault: TransitionFault,
        scratch: &mut PropagationScratch,
    ) -> u64 {
        if !self.is_observable(fault) {
            return 0;
        }
        let site = fault.site.net(self.batch_sim().netlist()).index();
        let f1 = Vc {
            v: block.val1[site],
            c: block.care1[site],
        };
        let f2 = Vc {
            v: block.val2[site],
            c: block.care2[site],
        };
        let launch = match fault.polarity {
            Polarity::SlowToRise => (f1.c & !f1.v) & (f2.v),
            Polarity::SlowToFall => (f1.v) & (f2.c & !f2.v),
        } & block.valid_mask;
        if launch == 0 {
            return 0;
        }
        if block.fully_specified {
            // Care planes are constant `valid_mask`, so three-valued
            // propagation degenerates to the two-valued diff kernel —
            // run exactly `detect_one`'s word loop.
            return self.propagate_diff(
                &block.val2,
                block.valid_mask,
                fault,
                launch,
                scratch,
                |_, _| {},
            );
        }
        self.propagate_diff3(block, fault, launch, scratch)
    }

    /// Three-valued overlay propagation: per cone net, the faulty plane
    /// is tracked as (value-diff, care-diff) words against the good
    /// frame-2 planes; zero diffs prune exactly like the two-valued
    /// kernel.
    fn propagate_diff3(
        &self,
        block: &PatternBlock,
        fault: TransitionFault,
        launch: u64,
        scratch: &mut PropagationScratch,
    ) -> u64 {
        let t = self.batch_sim().table();
        let valid = block.valid_mask;
        let gv = &block.val2;
        let gc = &block.care2;
        scratch.ensure3(t.num_nets(), self.num_levels() as usize, t.num_gates());
        scratch.reset();
        let v_init = Vc::splat(fault.polarity.initial_value());
        let mut detected = 0u64;
        let injected = match fault.site {
            FaultSite::Pin { gate, pin } => Some((gate.index(), pin as usize)),
            FaultSite::Net(_) => None,
        };
        match fault.site {
            FaultSite::Net(n) => {
                let ni = n.index();
                // Faulty site: stuck at the initial value on launched
                // lanes, the good value elsewhere.
                // (dv, dc) are launch-masked by construction, and the
                // launch mask is valid-masked already.
                let dv = (gv[ni] ^ v_init.v) & launch;
                let dc = !gc[ni] & launch;
                scratch.seed3(ni, dv, dc);
                if self.observed_net(ni) {
                    detected |= gc[ni] & (gc[ni] ^ dc) & dv & launch;
                }
                for &g in t.fanout(ni) {
                    scratch.queue.push(t.gate_level(g as usize) + 1, g);
                }
            }
            FaultSite::Pin { gate, pin } => {
                let g = gate.index();
                let gins = t.inputs(g);
                let mut ins = [Vc::X; 4];
                for (k, &inp) in gins.iter().enumerate() {
                    ins[k] = Vc {
                        v: gv[inp as usize],
                        c: gc[inp as usize],
                    };
                }
                let p = pin as usize;
                ins[p] = Vc {
                    v: (ins[p].v & !launch) | (v_init.v & launch),
                    c: ins[p].c | launch,
                };
                let fout = eval_word3(t.kind(g), &ins[..gins.len()]);
                let out = t.output(g) as usize;
                let dv = (fout.v ^ gv[out]) & valid;
                let dc = (fout.c ^ gc[out]) & valid;
                if dv | dc == 0 {
                    return 0;
                }
                scratch.seed3(out, dv, dc);
                if self.observed_net(out) {
                    detected |= gc[out] & fout.c & dv & launch;
                }
                for &succ in t.fanout(out) {
                    scratch.queue.push(t.gate_level(succ as usize) + 1, succ);
                }
            }
        }
        while let Some(g) = scratch.queue.pop() {
            let g = g as usize;
            let gins = t.inputs(g);
            let mut ins = [Vc::X; 4];
            for (k, &inp) in gins.iter().enumerate() {
                let i = inp as usize;
                let (dv, dc) = scratch.diff3(i);
                ins[k] = Vc {
                    v: gv[i] ^ dv,
                    c: gc[i] ^ dc,
                };
            }
            if let Some((ig, p)) = injected {
                if ig == g {
                    ins[p] = Vc {
                        v: (ins[p].v & !launch) | (v_init.v & launch),
                        c: ins[p].c | launch,
                    };
                }
            }
            let fout = eval_word3(t.kind(g), &ins[..gins.len()]);
            let out = t.output(g) as usize;
            let dv = (fout.v ^ gv[out]) & valid;
            let dc = (fout.c ^ gc[out]) & valid;
            if dv | dc != 0 {
                scratch.seed3(out, dv, dc);
                if self.observed_net(out) {
                    detected |= gc[out] & fout.c & dv & launch;
                }
                for &succ in t.fanout(out) {
                    scratch.queue.push(t.gate_level(succ as usize) + 1, succ);
                }
            }
        }
        detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::CellKind;

    /// Exhaustive lane-equivalence of `eval_word3` against
    /// `CellKind::eval` over all 3^n input combinations of every cell.
    #[test]
    fn word3_matches_scalar_eval_exhaustively() {
        const LOGICS: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];
        for kind in [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::And3,
            CellKind::Nand2,
            CellKind::Nand3,
            CellKind::Or2,
            CellKind::Or3,
            CellKind::Nor2,
            CellKind::Nor3,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Aoi22,
            CellKind::Oai22,
        ] {
            let n = kind.num_inputs();
            let combos = 3usize.pow(n as u32);
            // Pack all combos into lanes, 64 at a time.
            for base in (0..combos).step_by(64) {
                let lanes = (combos - base).min(64);
                let mut ins = vec![Vc::X; n];
                let mut expect = Vec::with_capacity(lanes);
                for lane in 0..lanes {
                    let mut combo = base + lane;
                    let mut scalar = Vec::with_capacity(n);
                    for ins_k in ins.iter_mut().take(n) {
                        let l = LOGICS[combo % 3];
                        combo /= 3;
                        scalar.push(l);
                        match l {
                            Logic::One => {
                                ins_k.v |= 1 << lane;
                                ins_k.c |= 1 << lane;
                            }
                            Logic::Zero => ins_k.c |= 1 << lane,
                            Logic::X => {}
                        }
                    }
                    expect.push(kind.eval(&scalar));
                }
                let out = eval_word3(kind, &ins);
                for (lane, &e) in expect.iter().enumerate() {
                    assert_eq!(out.lane(lane), e, "{kind:?} lane {lane} base {base}");
                }
                // Canonical form: value bit clear wherever care is clear.
                assert_eq!(out.v & !out.c, 0, "{kind:?} non-canonical output");
            }
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let a = vec![Logic::One, Logic::X, Logic::Zero];
        let b = vec![Logic::X, Logic::Zero, Logic::One];
        let (val, care) = pack_logic(&[&a[..], &b[..]]);
        assert_eq!(unpack_lane(&val, &care, 0), a);
        assert_eq!(unpack_lane(&val, &care, 1), b);
        // Stale lanes read back as X.
        assert_eq!(unpack_lane(&val, &care, 7), vec![Logic::X; 3]);
    }
}
