//! Launch-off-capture (broadside) and launch-off-shift two-frame semantics.
//!
//! A transition-fault pattern is a pair `(V1, V2)`:
//!
//! * **Launch-off-capture** (the paper's method, [`loc_frames`]): `V1` is
//!   the scan load; the launch clock captures the combinational response,
//!   so `V2`'s state is the next-state function applied to `V1`. Only the
//!   flops of the *active clock domain* are pulsed — the rest hold their
//!   loaded value (the paper generates patterns per clock domain).
//! * **Launch-off-shift** ([`los_frames`]): `V2`'s state is `V1` shifted by
//!   one position along each scan chain, with the scan-in value entering at
//!   the head.
//!
//! Primary inputs are held constant across both frames and primary outputs
//! are not observed (low-cost tester constraints, paper §2.4).

use crate::{BatchSim, LogicSim};
use scap_netlist::{ClockId, Logic, Netlist};

/// The two stable frames of a broadside (LOC) pattern, three-valued.
#[derive(Clone, Debug)]
pub struct Frames {
    /// Net values in frame 1 (after scan load, before launch).
    pub frame1: Vec<Logic>,
    /// Net values in frame 2 (after the launch edge).
    pub frame2: Vec<Logic>,
    /// Flop states in frame 2 (what launched).
    pub state2: Vec<Logic>,
}

/// Computes LOC frames with three-valued values (X = unfilled don't-care).
///
/// `load` is the scan state (one entry per flop), `pi` the held primary
/// input values. Only flops in `active_clock` are updated at the launch
/// edge; the others keep their loaded value.
pub fn loc_frames(
    sim: &LogicSim<'_>,
    load: &[Logic],
    pi: &[Logic],
    active_clock: ClockId,
) -> Frames {
    let netlist = sim.netlist();
    let frame1 = sim.eval(load, pi, None);
    let state2 = next_state_masked(netlist, load, &frame1, active_clock);
    let frame2 = sim.eval(&state2, pi, None);
    Frames {
        frame1,
        frame2,
        state2,
    }
}

/// Computes LOS frames: frame 2's state is frame 1's state shifted one
/// position down every scan chain (scan-enable held through launch).
///
/// `scan_in` supplies the bit entering each chain head. Flops without a
/// scan role hold their value.
pub fn los_frames(sim: &LogicSim<'_>, load: &[Logic], pi: &[Logic], scan_in: Logic) -> Frames {
    let netlist = sim.netlist();
    let frame1 = sim.eval(load, pi, None);
    let state2 = shift_state(netlist, load, scan_in);
    let frame2 = sim.eval(&state2, pi, None);
    Frames {
        frame1,
        frame2,
        state2,
    }
}

/// Next state under a launch pulse restricted to one clock domain.
pub fn next_state_masked(
    netlist: &Netlist,
    load: &[Logic],
    frame1: &[Logic],
    active_clock: ClockId,
) -> Vec<Logic> {
    netlist
        .flops()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if f.clock == active_clock {
                frame1[f.d.index()]
            } else {
                load[i]
            }
        })
        .collect()
}

/// One-position scan shift of the load along every chain.
pub fn shift_state(netlist: &Netlist, load: &[Logic], scan_in: Logic) -> Vec<Logic> {
    // For each flop with scan role (chain c, position p): new value = value
    // of the flop at (c, p-1), or scan_in for p = 0.
    let mut by_chain: Vec<Vec<(u32, usize)>> = Vec::new();
    for (i, f) in netlist.flops().iter().enumerate() {
        if let Some(role) = f.scan {
            let c = role.chain as usize;
            if by_chain.len() <= c {
                by_chain.resize(c + 1, Vec::new());
            }
            by_chain[c].push((role.position, i));
        }
    }
    let mut out = load.to_vec();
    for chain in &mut by_chain {
        chain.sort_unstable();
        for w in (0..chain.len()).rev() {
            let (_, flop) = chain[w];
            out[flop] = if w == 0 {
                scan_in
            } else {
                load[chain[w - 1].1]
            };
        }
    }
    out
}

/// Bit-parallel one-position scan shift (LOS launch) of load words.
pub fn shift_state_words(netlist: &Netlist, load: &[u64], scan_in: u64) -> Vec<u64> {
    let mut by_chain: Vec<Vec<(u32, usize)>> = Vec::new();
    for (i, f) in netlist.flops().iter().enumerate() {
        if let Some(role) = f.scan {
            let c = role.chain as usize;
            if by_chain.len() <= c {
                by_chain.resize(c + 1, Vec::new());
            }
            by_chain[c].push((role.position, i));
        }
    }
    let mut out = load.to_vec();
    for chain in &mut by_chain {
        chain.sort_unstable();
        for w in (0..chain.len()).rev() {
            let (_, flop) = chain[w];
            out[flop] = if w == 0 {
                scan_in
            } else {
                load[chain[w - 1].1]
            };
        }
    }
    out
}

/// Bit-parallel LOS frames for fully-specified pattern batches.
pub fn los_frames_batch(sim: &BatchSim<'_>, load: &[u64], pi: &[u64], scan_in: u64) -> BatchFrames {
    let netlist = sim.netlist();
    let frame1 = sim.eval(load, pi);
    let state2 = shift_state_words(netlist, load, scan_in);
    let frame2 = sim.eval(&state2, pi);
    BatchFrames {
        frame1,
        frame2,
        state2,
    }
}

/// Bit-parallel two-frame values for fully-specified pattern batches
/// (produced by [`loc_frames_batch`] or [`los_frames_batch`]).
#[derive(Clone, Debug)]
pub struct BatchFrames {
    /// Net words in frame 1.
    pub frame1: Vec<u64>,
    /// Net words in frame 2.
    pub frame2: Vec<u64>,
    /// Flop state words in frame 2.
    pub state2: Vec<u64>,
}

/// Bit-parallel version of [`loc_frames`] for up to 64 filled patterns.
pub fn loc_frames_batch(
    sim: &BatchSim<'_>,
    load: &[u64],
    pi: &[u64],
    active_clock: ClockId,
) -> BatchFrames {
    let netlist = sim.netlist();
    let frame1 = sim.eval(load, pi);
    let state2: Vec<u64> = netlist
        .flops()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if f.clock == active_clock {
                frame1[f.d.index()]
            } else {
                load[i]
            }
        })
        .collect();
    let frame2 = sim.eval(&state2, pi);
    BatchFrames {
        frame1,
        frame2,
        state2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, NetlistBuilder, ScanRole};

    /// Two domains: ff0 (clka) toggles itself through an inverter; ff1
    /// (clkb) also fed by an inverter from its own Q.
    fn two_domain() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let blk = b.add_block("B1");
        let clka = b.add_clock_domain("clka", 100e6);
        let clkb = b.add_clock_domain("clkb", 50e6);
        let q0 = b.add_net("q0");
        let d0 = b.add_net("d0");
        let q1 = b.add_net("q1");
        let d1 = b.add_net("d1");
        b.add_gate(CellKind::Inv, &[q0], d0, blk).unwrap();
        b.add_gate(CellKind::Inv, &[q1], d1, blk).unwrap();
        b.add_flop("ff0", d0, q0, clka, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ff1", d1, q1, clkb, ClockEdge::Rising, blk)
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn loc_pulses_only_active_domain() {
        let n = two_domain();
        let sim = LogicSim::new(&n);
        let frames = loc_frames(&sim, &[Logic::Zero, Logic::Zero], &[], ClockId::new(0));
        // ff0 launches 0 -> 1; ff1 holds its load.
        assert_eq!(frames.state2, vec![Logic::One, Logic::Zero]);
    }

    #[test]
    fn loc_batch_matches_scalar() {
        let n = two_domain();
        let scalar = LogicSim::new(&n);
        let batch = BatchSim::new(&n);
        let s = loc_frames(&scalar, &[Logic::One, Logic::Zero], &[], ClockId::new(0));
        let w = loc_frames_batch(&batch, &[1, 0], &[], ClockId::new(0));
        for i in 0..n.num_nets() {
            assert_eq!(w.frame2[i] & 1 == 1, s.frame2[i] == Logic::One, "net {i}");
        }
    }

    #[test]
    fn los_shifts_along_chain() {
        let mut n = two_domain();
        n.set_scan_role(
            scap_netlist::FlopId::new(0),
            ScanRole {
                chain: 0,
                position: 0,
            },
        );
        n.set_scan_role(
            scap_netlist::FlopId::new(1),
            ScanRole {
                chain: 0,
                position: 1,
            },
        );
        let sim = LogicSim::new(&n);
        let frames = los_frames(&sim, &[Logic::One, Logic::Zero], &[], Logic::Zero);
        // position 0 gets scan_in (0), position 1 gets old position 0 (1).
        assert_eq!(frames.state2, vec![Logic::Zero, Logic::One]);
    }

    #[test]
    fn los_without_scan_roles_holds_state() {
        let n = two_domain();
        let sim = LogicSim::new(&n);
        let frames = los_frames(&sim, &[Logic::One, Logic::Zero], &[], Logic::One);
        assert_eq!(frames.state2, vec![Logic::One, Logic::Zero]);
    }

    #[test]
    fn x_loads_stay_x_through_launch() {
        let n = two_domain();
        let sim = LogicSim::new(&n);
        let frames = loc_frames(&sim, &[Logic::X, Logic::Zero], &[], ClockId::new(0));
        assert_eq!(frames.state2[0], Logic::X);
    }
}
