//! 64-way bit-parallel good-machine simulation.
//!
//! Each net carries a `u64`; bit *p* holds pattern *p*'s value. Patterns
//! must be fully specified (don't-cares already filled), which is exactly
//! the situation after the ATPG fill step — where the heavy fault-dropping
//! simulation happens.

use crate::table::SimTable;
use scap_netlist::{Levelization, NetSource, Netlist};

/// Bit-parallel levelized simulator.
///
/// # Example
///
/// ```
/// use scap_netlist::{CellKind, NetlistBuilder};
/// use scap_sim::BatchSim;
///
/// # fn main() -> Result<(), scap_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("d");
/// let blk = b.add_block("B1");
/// let a = b.add_primary_input("a");
/// let y = b.add_net("y");
/// b.add_gate(CellKind::Inv, &[a], y, blk)?;
/// let n = b.finish()?;
/// let sim = BatchSim::new(&n);
/// let vals = sim.eval(&[], &[0b01]);
/// assert_eq!(vals[y.index()] & 0b11, 0b10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchSim<'a> {
    netlist: &'a Netlist,
    levelization: Levelization,
    table: SimTable,
}

impl<'a> BatchSim<'a> {
    /// Builds a simulator (levelizes once).
    pub fn new(netlist: &'a Netlist) -> Self {
        let levelization = Levelization::build(netlist);
        // Same contract as `LogicSim::new`: the bit-parallel propagate
        // loop relies on a complete, level-monotone evaluation order.
        debug_assert_eq!(
            levelization.order().len(),
            netlist.num_gates(),
            "levelization must cover every gate (combinational loop?)"
        );
        debug_assert!(
            levelization
                .order()
                .windows(2)
                .all(|w| levelization.level(w[0]) <= levelization.level(w[1])),
            "levelization order must be monotone in level"
        );
        let table = SimTable::build_with(netlist, &levelization);
        BatchSim {
            netlist,
            levelization,
            table,
        }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Shares the levelization with callers (fault simulation reuses it).
    pub fn levelization(&self) -> &Levelization {
        &self.levelization
    }

    /// Shares the flattened topology with callers (fault simulation and
    /// the block kernel reuse it).
    pub fn table(&self) -> &SimTable {
        &self.table
    }

    /// Evaluates all nets for up to 64 patterns at once.
    ///
    /// `flop_q[i]` / `pi[i]` carry one bit per pattern. Returns one word
    /// per net.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the netlist.
    pub fn eval(&self, flop_q: &[u64], pi: &[u64]) -> Vec<u64> {
        let n = self.netlist;
        assert_eq!(flop_q.len(), n.num_flops(), "one word per flop");
        assert_eq!(pi.len(), n.primary_inputs().len(), "one word per PI");
        let mut values = vec![0u64; n.num_nets()];
        for (i, &net) in n.primary_inputs().iter().enumerate() {
            values[net.index()] = pi[i];
        }
        for (i, flop) in n.flops().iter().enumerate() {
            values[flop.q.index()] = flop_q[i];
        }
        for (i, net) in n.nets().iter().enumerate() {
            if let Some(NetSource::Const(c)) = net.source {
                values[i] = if c { !0 } else { 0 };
            }
        }
        self.propagate(&mut values);
        values
    }

    /// Re-evaluates all gates in place over an existing value vector
    /// (inputs must already be set).
    pub fn propagate(&self, values: &mut [u64]) {
        let t = &self.table;
        let mut inbuf = [0u64; 4];
        for &g in t.order() {
            let g = g as usize;
            let ins = t.inputs(g);
            for (k, &inp) in ins.iter().enumerate() {
                inbuf[k] = values[inp as usize];
            }
            values[t.output(g) as usize] = t.kind(g).eval_word(&inbuf[..ins.len()]);
        }
    }

    /// Next-state extraction: the D-input word of every flop.
    pub fn next_state(&self, values: &[u64]) -> Vec<u64> {
        self.netlist
            .flops()
            .iter()
            .map(|f| values[f.d.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicSim;
    use rand::{Rng, SeedableRng};
    use scap_netlist::{CellKind, ClockEdge, Logic, NetlistBuilder};

    fn random_netlist(seed: u64) -> Netlist {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new("r");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut pool = Vec::new();
        for i in 0..8 {
            pool.push(b.add_primary_input(format!("pi{i}")));
        }
        let mut flop_ds = Vec::new();
        for i in 0..6 {
            let q = b.add_net(format!("q{i}"));
            flop_ds.push(q);
            pool.push(q);
        }
        let kinds = [
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::And3,
            CellKind::Mux2,
            CellKind::Aoi22,
        ];
        for i in 0..60 {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let ins: Vec<_> = (0..kind.num_inputs())
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect();
            let out = b.add_net(format!("w{i}"));
            b.add_gate(kind, &ins, out, blk).unwrap();
            pool.push(out);
        }
        // Hook flops to the last nets created.
        for (i, &q) in flop_ds.clone().iter().enumerate() {
            let d = pool[pool.len() - 1 - i];
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    }

    /// Batch sim bit 0 must agree with the scalar three-valued simulator on
    /// fully-specified inputs, across random netlists and vectors.
    #[test]
    fn agrees_with_scalar_sim() {
        for seed in 0..5u64 {
            let n = random_netlist(seed);
            let batch = BatchSim::new(&n);
            let scalar = LogicSim::new(&n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 100);
            for _ in 0..10 {
                let flop_bits: Vec<bool> = (0..n.num_flops()).map(|_| rng.gen()).collect();
                let pi_bits: Vec<bool> = (0..n.primary_inputs().len()).map(|_| rng.gen()).collect();
                let words = batch.eval(
                    &flop_bits.iter().map(|&b| b as u64).collect::<Vec<_>>(),
                    &pi_bits.iter().map(|&b| b as u64).collect::<Vec<_>>(),
                );
                let logics = scalar.eval(
                    &flop_bits
                        .iter()
                        .map(|&b| Logic::from(b))
                        .collect::<Vec<_>>(),
                    &pi_bits.iter().map(|&b| Logic::from(b)).collect::<Vec<_>>(),
                    None,
                );
                for i in 0..n.num_nets() {
                    assert_eq!(
                        words[i] & 1 == 1,
                        logics[i] == Logic::One,
                        "net {i} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn patterns_are_independent_across_bits() {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let a = b.add_primary_input("a");
        let c = b.add_primary_input("c");
        let y = b.add_net("y");
        b.add_gate(CellKind::And2, &[a, c], y, blk).unwrap();
        b.add_primary_output(y);
        let n = b.finish().unwrap();
        let sim = BatchSim::new(&n);
        // Four patterns: a = 0101, c = 0011 -> y = 0001.
        let v = sim.eval(&[], &[0b0101, 0b0011]);
        assert_eq!(v[y.index()] & 0b1111, 0b0001);
    }
}
