//! Logic, fault and timing simulation for the `scap-atpg` suite.
//!
//! This crate replaces the simulation half of the paper's commercial flow
//! (Synopsys VCS + PLI):
//!
//! * [`LogicSim`] — levelized three-valued (`0/1/X`) zero-delay simulation,
//!   with optional fault injection (used by the ATPG engine),
//! * [`loc`] — launch-off-capture / launch-off-shift two-frame semantics,
//! * [`BatchSim`] — 64-way bit-parallel good-machine simulation,
//! * [`TransitionFaultSim`] — PPSFP transition-delay-fault simulation with
//!   fault dropping (drives coverage curves and dynamic compaction),
//! * [`EventSim`] — event-driven gate-level timing simulation producing a
//!   [`ToggleTrace`] (the VCD substitute) and the per-pattern switching
//!   time window (STW) that defines SCAP.
//!
//! # Example
//!
//! ```
//! use scap_netlist::{CellKind, Logic, NetlistBuilder};
//! use scap_sim::LogicSim;
//!
//! # fn main() -> Result<(), scap_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("d");
//! let blk = b.add_block("B1");
//! let a = b.add_primary_input("a");
//! let y = b.add_net("y");
//! b.add_gate(CellKind::Inv, &[a], y, blk)?;
//! let n = b.finish()?;
//! let sim = LogicSim::new(&n);
//! let values = sim.eval(&[], &[Logic::One], None);
//! assert_eq!(values[y.index()], Logic::Zero);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod block;
mod event;
mod fault;
mod fault_sim;
pub mod loc;
mod logic_sim;
mod sched;
mod table;

pub use batch::BatchSim;
pub use block::{eval_word3, pack_logic, unpack_lane, PatternBlock, Vc};
pub use event::{EventSim, ToggleEvent, ToggleTrace};
pub use fault::{CollapseMap, FaultList, FaultSite, Polarity, TransitionFault};
pub use fault_sim::{DetectionSummary, LaunchMode, PropagationScratch, TransitionFaultSim};
pub use logic_sim::{Injection, LogicSim};
pub use sched::LevelQueue;
pub use table::SimTable;
