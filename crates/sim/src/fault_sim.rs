//! PPSFP (parallel-pattern single-fault propagation) transition-fault
//! simulation under launch-off-capture.
//!
//! Detection criterion (the standard transition-fault approximation): the
//! pattern must *launch* the target transition at the fault site (frame 1
//! value = initial, frame 2 good value = final) and the corresponding
//! stuck-at-initial-value fault must propagate in frame 2 to an observed
//! capture point (a D pin of an active-domain flop — primary outputs are
//! not measured, per the paper's low-cost-tester setup).

use crate::loc::{loc_frames_batch, los_frames_batch, BatchFrames};
use crate::sched::LevelQueue;
use crate::Polarity;
use crate::{BatchSim, FaultSite, TransitionFault};
use scap_netlist::{ClockId, GateId, NetSource, Netlist};
use serde::{Deserialize, Serialize};

/// How the second frame of a transition-fault pattern is launched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaunchMode {
    /// Launch-off-capture (broadside): frame 2 is the combinational
    /// response of the load (the paper's method).
    Capture,
    /// Launch-off-shift (skewed-load): frame 2 is the load shifted one
    /// position along every scan chain, scan-in tied to 0. Needs an
    /// at-speed scan-enable (paper §1.1).
    Shift,
}

/// Result of simulating a pattern batch against a fault list.
#[derive(Clone, Debug, Default)]
pub struct DetectionSummary {
    /// For each fault (same order as the input list): a bitmask of the
    /// patterns in the batch that detect it (0 = undetected).
    pub detect_mask: Vec<u64>,
}

impl DetectionSummary {
    /// Number of faults detected by at least one pattern.
    pub fn num_detected(&self) -> usize {
        self.detect_mask.iter().filter(|&&m| m != 0).count()
    }
}

/// Transition-fault simulator bound to one netlist and active clock domain.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::{Netlist, ClockId};
/// # fn demo(netlist: &Netlist) {
/// use scap_sim::{FaultList, TransitionFaultSim};
/// let faults = FaultList::full(netlist);
/// let sim = TransitionFaultSim::new(netlist, ClockId::new(0));
/// // 64 patterns, all-zero loads and PIs:
/// let loads = vec![0u64; netlist.num_flops()];
/// let pis = vec![0u64; netlist.primary_inputs().len()];
/// let summary = sim.detect_batch(&loads, &pis, !0, faults.faults());
/// println!("{} faults detected", summary.num_detected());
/// # }
/// ```
#[derive(Debug)]
pub struct TransitionFaultSim<'a> {
    batch: BatchSim<'a>,
    active_clock: ClockId,
    mode: LaunchMode,
    /// Level of the gate driving each net (+1); 0 for source nets.
    net_level: Vec<u32>,
    /// Whether each net is a capture observation point.
    observed: Vec<bool>,
    /// Whether each net reaches an observed capture point through
    /// combinational logic (reverse BFS from the observed nets). Faults
    /// whose effect enters on a net outside this set can never be
    /// detected and are skipped before launch-checking.
    observable: Vec<bool>,
    /// Bucket count for the levelized scheduler (max net level + 1).
    num_levels: u32,
}

impl<'a> TransitionFaultSim<'a> {
    /// Builds a launch-off-capture simulator for `active_clock`'s flops.
    pub fn new(netlist: &'a Netlist, active_clock: ClockId) -> Self {
        Self::with_mode(netlist, active_clock, LaunchMode::Capture)
    }

    /// Builds a simulator with an explicit launch mode.
    pub fn with_mode(netlist: &'a Netlist, active_clock: ClockId, mode: LaunchMode) -> Self {
        let batch = BatchSim::new(netlist);
        let lv = batch.levelization();
        let mut net_level = vec![0u32; netlist.num_nets()];
        for &g in lv.order() {
            net_level[netlist.gate(g).output.index()] = lv.level(g) + 1;
        }
        let mut observed = vec![false; netlist.num_nets()];
        for f in netlist.flops() {
            if f.clock == active_clock {
                observed[f.d.index()] = true;
            }
        }
        // Reverse BFS from the observed capture points through gate
        // inputs. Forward diff propagation follows exactly the
        // `fanout_gates` edges, so a fault seeded outside this closure
        // can never reach an observed net.
        let mut observable = observed.clone();
        let mut stack: Vec<u32> = observable
            .iter()
            .enumerate()
            .filter(|(_, &o)| o)
            .map(|(i, _)| i as u32)
            .collect();
        while let Some(n) = stack.pop() {
            if let Some(NetSource::Gate(g)) = netlist.net(scap_netlist::NetId::new(n)).source {
                for &inp in &netlist.gate(g).inputs {
                    if !observable[inp.index()] {
                        observable[inp.index()] = true;
                        stack.push(inp.raw());
                    }
                }
            }
        }
        let num_levels = net_level.iter().copied().max().unwrap_or(0) + 1;
        TransitionFaultSim {
            batch,
            active_clock,
            mode,
            net_level,
            observed,
            observable,
            num_levels,
        }
    }

    /// Whether `fault`'s effect can structurally reach an observed
    /// capture point of the active clock. Unobservable faults always
    /// yield an all-zero detect mask; callers may skip simulating them.
    #[inline]
    pub fn is_observable(&self, fault: TransitionFault) -> bool {
        self.observable[self.effect_net(fault)]
    }

    /// The net where the fault effect enters the fanout cone: the net
    /// itself for stem faults, the reading gate's output for branch
    /// faults.
    #[inline]
    fn effect_net(&self, fault: TransitionFault) -> usize {
        match fault.site {
            FaultSite::Net(n) => n.index(),
            FaultSite::Pin { gate, .. } => self.batch.netlist().gate(gate).output.index(),
        }
    }

    /// The underlying batch simulator (for callers that also need good
    /// frames).
    pub fn batch_sim(&self) -> &BatchSim<'a> {
        &self.batch
    }

    /// The configured launch mode.
    pub fn launch_mode(&self) -> LaunchMode {
        self.mode
    }

    /// The active (at-speed) clock domain.
    pub fn active_clock(&self) -> ClockId {
        self.active_clock
    }

    /// Whether net `n` is an observed capture point.
    #[inline]
    pub(crate) fn observed_net(&self, n: usize) -> bool {
        self.observed[n]
    }

    /// Scheduler bucket count (max net level + 1).
    #[inline]
    pub(crate) fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Computes launch frames for a batch of up to 64 fully-specified
    /// loads under the configured mode.
    pub fn frames(&self, load: &[u64], pi: &[u64]) -> BatchFrames {
        match self.mode {
            LaunchMode::Capture => loc_frames_batch(&self.batch, load, pi, self.active_clock),
            LaunchMode::Shift => los_frames_batch(&self.batch, load, pi, 0),
        }
    }

    /// Simulates `faults` against up to 64 patterns.
    ///
    /// `valid_mask` has one bit per real pattern (use `!0` for a full
    /// batch). Returns a per-fault mask of detecting patterns.
    pub fn detect_batch(
        &self,
        load: &[u64],
        pi: &[u64],
        valid_mask: u64,
        faults: &[TransitionFault],
    ) -> DetectionSummary {
        let mut scratch = PropagationScratch::new(self.batch.netlist().num_nets());
        self.detect_batch_with_scratch(load, pi, valid_mask, faults, &mut scratch)
    }

    /// Like [`TransitionFaultSim::detect_batch`] but reuses caller-owned
    /// propagation buffers — avoids one diff-vector allocation per batch
    /// when grading many batches (e.g. one scratch per worker thread).
    ///
    /// A `valid_mask` with a single bit set (the ATPG drop-simulation
    /// shape: one candidate pattern against many faults) takes a fast
    /// path that skips building a [`crate::PatternBlock`], so no care
    /// planes are allocated or filled for the degenerate one-lane case.
    pub fn detect_batch_with_scratch(
        &self,
        load: &[u64],
        pi: &[u64],
        valid_mask: u64,
        faults: &[TransitionFault],
        scratch: &mut PropagationScratch,
    ) -> DetectionSummary {
        let mut summary = DetectionSummary {
            detect_mask: Vec::with_capacity(faults.len()),
        };
        let mut detections = 0u64;
        let mut skipped = 0u64;
        if valid_mask.count_ones() == 1 {
            let frames = self.frames(load, pi);
            scap_obs::counter!("sim.block_evals").incr();
            scap_obs::counter!("sim.patterns_per_block").incr();
            for fault in faults {
                if !self.is_observable(*fault) {
                    skipped += 1;
                    summary.detect_mask.push(0);
                    continue;
                }
                let mask = self.detect_one(&frames, valid_mask, *fault, scratch);
                detections += u64::from(mask != 0);
                summary.detect_mask.push(mask);
            }
        } else {
            let block = self.block_from_words(load, pi, valid_mask);
            for fault in faults {
                if !self.is_observable(*fault) {
                    skipped += 1;
                    summary.detect_mask.push(0);
                    continue;
                }
                let mask = self.detect_block(&block, *fault, scratch);
                detections += u64::from(mask != 0);
                summary.detect_mask.push(mask);
            }
        }
        scap_obs::counter!("sim.fault_sim_batches").incr();
        scap_obs::counter!("sim.fault_sim_checks").add(faults.len() as u64);
        scap_obs::counter!("sim.fault_detections").add(detections);
        scap_obs::counter!("sim.faults_skipped_unobservable").add(skipped);
        summary
    }

    /// Detection mask of one fault against precomputed frames.
    pub fn detect_one(
        &self,
        frames: &BatchFrames,
        valid_mask: u64,
        fault: TransitionFault,
        scratch: &mut PropagationScratch,
    ) -> u64 {
        if !self.observable[self.effect_net(fault)] {
            return 0;
        }
        let site_net = fault.site.net(self.batch.netlist());
        let v1 = frames.frame1[site_net.index()];
        let v2 = frames.frame2[site_net.index()];
        let launch = match fault.polarity {
            Polarity::SlowToRise => !v1 & v2,
            Polarity::SlowToFall => v1 & !v2,
        } & valid_mask;
        if launch == 0 {
            return 0;
        }
        self.propagate_diff(
            &frames.frame2,
            valid_mask,
            fault,
            launch,
            scratch,
            |_, _| {},
        )
    }

    /// Seeds the fault effect and runs the level-ordered word propagation
    /// shared by [`TransitionFaultSim::detect_one`] and
    /// [`TransitionFaultSim::signature_one`]; `on_observed` sees each
    /// observed (net, diff) pair. `good2` is the fault-free frame-2 word
    /// plane the faulty machine is diffed against.
    pub(crate) fn propagate_diff(
        &self,
        good2: &[u64],
        valid_mask: u64,
        fault: TransitionFault,
        launch: u64,
        scratch: &mut PropagationScratch,
        mut on_observed: impl FnMut(u32, u64),
    ) -> u64 {
        let t = self.batch.table();
        scratch.ensure(t.num_nets(), self.num_levels as usize, t.num_gates());
        scratch.reset();
        let mut detected = 0u64;
        match fault.site {
            FaultSite::Net(n) => {
                let ni = n.index();
                scratch.seed(ni, launch);
                if self.observed[ni] {
                    detected |= launch;
                    on_observed(n.raw(), launch);
                }
                for &g in t.fanout(ni) {
                    scratch.queue.push(t.gate_level(g as usize) + 1, g);
                }
            }
            FaultSite::Pin { gate, pin } => {
                // Flip only this branch: evaluate the gate with the pin's
                // word complemented on launched bits.
                let g = gate.index();
                let gins = t.inputs(g);
                let mut ins = [0u64; 4];
                for (k, &inp) in gins.iter().enumerate() {
                    ins[k] = good2[inp as usize];
                }
                ins[pin as usize] ^= launch;
                let faulty = t.kind(g).eval_word(&ins[..gins.len()]);
                let out = t.output(g) as usize;
                let diff = (faulty ^ good2[out]) & valid_mask;
                if diff == 0 {
                    return 0;
                }
                scratch.seed(out, diff);
                if self.observed[out] {
                    detected |= diff;
                    on_observed(out as u32, diff);
                }
                for &succ in t.fanout(out) {
                    scratch.queue.push(t.gate_level(succ as usize) + 1, succ);
                }
            }
        }
        // Level-ordered propagation: each gate is evaluated after all its
        // in-cone predecessors.
        while let Some(g) = scratch.queue.pop() {
            let g = g as usize;
            let gins = t.inputs(g);
            let mut ins = [0u64; 4];
            for (k, &inp) in gins.iter().enumerate() {
                let inp = inp as usize;
                ins[k] = good2[inp] ^ scratch.diff(inp);
            }
            let faulty = t.kind(g).eval_word(&ins[..gins.len()]);
            let out = t.output(g) as usize;
            let diff = (faulty ^ good2[out]) & valid_mask;
            if diff != 0 {
                scratch.seed(out, diff);
                if self.observed[out] {
                    detected |= diff;
                    on_observed(out as u32, diff);
                }
                for &succ in t.fanout(out) {
                    scratch.queue.push(t.gate_level(succ as usize) + 1, succ);
                }
            }
        }
        detected
    }

    /// Like [`TransitionFaultSim::detect_one`] but also returns, for each
    /// observation point the fault reaches, the mask of patterns whose
    /// capture would mismatch — the fault's *failure signature*. Used by
    /// diagnosis.
    pub fn signature_one(
        &self,
        frames: &BatchFrames,
        valid_mask: u64,
        fault: TransitionFault,
        scratch: &mut PropagationScratch,
    ) -> Vec<(scap_netlist::NetId, u64)> {
        // Same propagation as `detect_one`, collecting observed diffs
        // rather than OR-ing them together.
        if !self.observable[self.effect_net(fault)] {
            return Vec::new();
        }
        let site_net = fault.site.net(self.batch.netlist());
        let v1 = frames.frame1[site_net.index()];
        let v2 = frames.frame2[site_net.index()];
        let launch = match fault.polarity {
            Polarity::SlowToRise => !v1 & v2,
            Polarity::SlowToFall => v1 & !v2,
        } & valid_mask;
        if launch == 0 {
            return Vec::new();
        }
        let mut signature = Vec::new();
        self.propagate_diff(
            &frames.frame2,
            valid_mask,
            fault,
            launch,
            scratch,
            |net, diff| signature.push((scap_netlist::NetId::new(net), diff)),
        );
        signature
    }

    #[inline]
    fn gate_key(&self, g: GateId) -> (u32, u32) {
        (
            self.net_level[self.batch.netlist().gate(g).output.index()],
            g.raw(),
        )
    }

    /// Reference propagator retained as a differential-testing oracle:
    /// the original `BinaryHeap<Reverse<(level, gate)>>` + `HashSet`
    /// propagation that the bucket-queue kernel replaced. Allocates its
    /// working set per call — use only in tests and cross-checks.
    pub fn detect_one_reference(
        &self,
        frames: &BatchFrames,
        valid_mask: u64,
        fault: TransitionFault,
    ) -> u64 {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashSet};
        let netlist = self.batch.netlist();
        let site_net = fault.site.net(netlist);
        let v1 = frames.frame1[site_net.index()];
        let v2 = frames.frame2[site_net.index()];
        let launch = match fault.polarity {
            Polarity::SlowToRise => !v1 & v2,
            Polarity::SlowToFall => v1 & !v2,
        } & valid_mask;
        if launch == 0 {
            return 0;
        }
        let mut diff = vec![0u64; netlist.num_nets()];
        let mut queue: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut enqueued: HashSet<u32> = HashSet::new();
        let enqueue = |queue: &mut BinaryHeap<Reverse<(u32, u32)>>,
                       enqueued: &mut HashSet<u32>,
                       key: (u32, u32)| {
            if enqueued.insert(key.1) {
                queue.push(Reverse(key));
            }
        };
        let mut detected = 0u64;
        match fault.site {
            FaultSite::Net(n) => {
                diff[n.index()] = launch;
                if self.observed[n.index()] {
                    detected |= launch;
                }
                for &g in netlist.fanout_gates(n) {
                    enqueue(&mut queue, &mut enqueued, self.gate_key(g));
                }
            }
            FaultSite::Pin { gate, pin } => {
                let g = netlist.gate(gate);
                let mut ins = [0u64; 4];
                for (k, &inp) in g.inputs.iter().enumerate() {
                    ins[k] = frames.frame2[inp.index()];
                }
                ins[pin as usize] ^= launch;
                let faulty = g.kind.eval_word(&ins[..g.inputs.len()]);
                let d = (faulty ^ frames.frame2[g.output.index()]) & valid_mask;
                if d == 0 {
                    return 0;
                }
                diff[g.output.index()] = d;
                if self.observed[g.output.index()] {
                    detected |= d;
                }
                for &succ in netlist.fanout_gates(g.output) {
                    enqueue(&mut queue, &mut enqueued, self.gate_key(succ));
                }
            }
        }
        while let Some(Reverse((_, graw))) = queue.pop() {
            let gate = netlist.gate(GateId::new(graw));
            let mut ins = [0u64; 4];
            for (k, &inp) in gate.inputs.iter().enumerate() {
                ins[k] = frames.frame2[inp.index()] ^ diff[inp.index()];
            }
            let faulty = gate.kind.eval_word(&ins[..gate.inputs.len()]);
            let out = gate.output.index();
            let d = (faulty ^ frames.frame2[out]) & valid_mask;
            if d != 0 {
                diff[out] |= d;
                if self.observed[out] {
                    detected |= d;
                }
                for &succ in netlist.fanout_gates(gate.output) {
                    enqueue(&mut queue, &mut enqueued, self.gate_key(succ));
                }
            }
        }
        detected
    }
}

/// Reusable buffers for single-fault propagation.
///
/// Diff words are epoch-stamped (`u32` per net) and gates are scheduled
/// through an epoch-stamped [`LevelQueue`], so starting a new fault check
/// costs two epoch increments — nothing is cleared proportionally to the
/// previous cone. Buffers grow lazily to the simulator's netlist, so a
/// `PropagationScratch::default()` works for any design.
#[derive(Debug, Default)]
pub struct PropagationScratch {
    diff: Vec<u64>,
    /// Care-plane diff words for the three-valued block kernel; only
    /// grown by [`PropagationScratch::ensure3`], so purely two-valued
    /// users never pay for the second plane.
    diffc: Vec<u64>,
    diff_stamp: Vec<u32>,
    epoch: u32,
    pub(crate) queue: LevelQueue,
}

impl PropagationScratch {
    /// Creates scratch buffers for a netlist with `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        PropagationScratch {
            diff: vec![0; num_nets],
            diffc: Vec::new(),
            diff_stamp: vec![0; num_nets],
            epoch: 0,
            queue: LevelQueue::new(),
        }
    }

    pub(crate) fn ensure(&mut self, num_nets: usize, num_levels: usize, num_gates: usize) {
        if self.diff.len() < num_nets {
            self.diff.resize(num_nets, 0);
            self.diff_stamp.resize(num_nets, 0);
        }
        self.queue.ensure(num_levels, num_gates);
    }

    /// Like [`PropagationScratch::ensure`] but also sizes the care-diff
    /// plane used by three-valued block propagation.
    pub(crate) fn ensure3(&mut self, num_nets: usize, num_levels: usize, num_gates: usize) {
        self.ensure(num_nets, num_levels, num_gates);
        if self.diffc.len() < num_nets {
            self.diffc.resize(num_nets, 0);
        }
    }

    pub(crate) fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.diff_stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.queue.begin();
    }

    #[inline]
    pub(crate) fn seed(&mut self, net: usize, mask: u64) {
        if self.diff_stamp[net] != self.epoch {
            self.diff_stamp[net] = self.epoch;
            self.diff[net] = mask;
        } else {
            self.diff[net] |= mask;
        }
    }

    #[inline]
    pub(crate) fn diff(&self, net: usize) -> u64 {
        if self.diff_stamp[net] == self.epoch {
            self.diff[net]
        } else {
            0
        }
    }

    /// Stores a (value-diff, care-diff) pair for `net` this epoch.
    #[inline]
    pub(crate) fn seed3(&mut self, net: usize, dv: u64, dc: u64) {
        if self.diff_stamp[net] != self.epoch {
            self.diff_stamp[net] = self.epoch;
            self.diff[net] = dv;
            self.diffc[net] = dc;
        } else {
            self.diff[net] |= dv;
            self.diffc[net] |= dc;
        }
    }

    /// The (value-diff, care-diff) pair of `net` this epoch.
    #[inline]
    pub(crate) fn diff3(&self, net: usize) -> (u64, u64) {
        if self.diff_stamp[net] == self.epoch {
            (self.diff[net], self.diffc[net])
        } else {
            (0, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultList, Polarity};
    use scap_netlist::{CellKind, ClockEdge, NetId, NetlistBuilder};

    /// ff0.q --inv--> ff0.d  (self-toggling flop); ff1 captures inv2(q0).
    fn toggler() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q0 = b.add_net("q0");
        let d0 = b.add_net("d0");
        let q1 = b.add_net("q1");
        let d1 = b.add_net("d1");
        b.add_gate(CellKind::Inv, &[q0], d0, blk).unwrap();
        b.add_gate(CellKind::Inv, &[q0], d1, blk).unwrap();
        b.add_flop("ff0", d0, q0, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ff1", d1, q1, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn detects_launched_and_propagated_fault() {
        let n = toggler();
        let sim = TransitionFaultSim::new(&n, ClockId::new(0));
        // Load q0 = 0: frame1 q0 = 0, launch gives q0 = 1 in frame 2.
        // Slow-to-rise on q0 is launched; in frame 2 the stuck-0 q0 flips
        // d1, observed at ff1 -> detected.
        let str_q0 = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToRise);
        let summary = sim.detect_batch(&[0, 0], &[], 0b1, &[str_q0]);
        assert_eq!(summary.detect_mask, vec![0b1]);
        assert_eq!(summary.num_detected(), 1);
    }

    #[test]
    fn wrong_polarity_is_not_launched() {
        let n = toggler();
        let sim = TransitionFaultSim::new(&n, ClockId::new(0));
        let stf_q0 = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToFall);
        // Load 0 launches a rising transition on q0, not falling.
        let summary = sim.detect_batch(&[0, 0], &[], 0b1, &[stf_q0]);
        assert_eq!(summary.detect_mask, vec![0]);
    }

    #[test]
    fn opposite_load_detects_opposite_polarity() {
        let n = toggler();
        let sim = TransitionFaultSim::new(&n, ClockId::new(0));
        let stf_q0 = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToFall);
        let summary = sim.detect_batch(&[1, 0], &[], 0b1, &[stf_q0]);
        assert_eq!(summary.detect_mask, vec![0b1]);
    }

    #[test]
    fn valid_mask_gates_detection() {
        let n = toggler();
        let sim = TransitionFaultSim::new(&n, ClockId::new(0));
        let str_q0 = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToRise);
        let summary = sim.detect_batch(&[0, 0], &[], 0b10, &[str_q0]);
        // Pattern 0 would detect, but only pattern 1's bit is valid — and
        // pattern 1 has the same all-zero load, so it detects on bit 1.
        assert_eq!(summary.detect_mask, vec![0b10]);
    }

    #[test]
    fn batch_patterns_detect_independently() {
        let n = toggler();
        let sim = TransitionFaultSim::new(&n, ClockId::new(0));
        let str_q0 = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToRise);
        let stf_q0 = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToFall);
        // Pattern 0: q0 = 0 (rising launch); pattern 1: q0 = 1 (falling).
        let summary = sim.detect_batch(&[0b10, 0], &[], 0b11, &[str_q0, stf_q0]);
        assert_eq!(summary.detect_mask[0], 0b01);
        assert_eq!(summary.detect_mask[1], 0b10);
    }

    #[test]
    fn full_fault_list_of_toggler_is_mostly_detectable() {
        let n = toggler();
        let faults = FaultList::full(&n);
        let sim = TransitionFaultSim::new(&n, ClockId::new(0));
        // Two patterns covering both polarities everywhere.
        let summary = sim.detect_batch(&[0b10, 0b00], &[], 0b11, faults.faults());
        let detected = summary.num_detected();
        // q1 stem faults are undetectable (q1 drives nothing), all other
        // stems and branches are detectable.
        assert!(
            detected >= faults.faults().len() - 2,
            "{detected}/{}",
            faults.faults().len()
        );
    }
}
