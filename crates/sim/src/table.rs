//! Flattened netlist topology for the hot simulation kernels.
//!
//! The [`Netlist`](scap_netlist::Netlist) stores each gate's inputs in
//! its own `Vec<NetId>` and each net's fanout in a `Vec<Vec<GateId>>` —
//! one heap pointer chase per gate evaluation and another per fanout
//! seed. The fault-propagation, batch and PODEM kernels together
//! evaluate tens of millions of gates per run, so those two dependent
//! cache misses dominate their inner loops. [`SimTable`] flattens the
//! same information into dense arrays built once per simulator:
//!
//! * gate inputs at a fixed stride of 4 (the widest cell), so pin `k` of
//!   gate `g` is `inputs[4 * g + k]` with no indirection,
//! * per-net fanout gates in CSR form (`fan_off` / `fan`),
//! * gate kinds, output nets, levels and the level-ordered evaluation
//!   sequence as plain `u32`/`u8` arrays.
//!
//! The table carries raw `u32` ids; callers convert at the boundary.

use scap_netlist::{CellKind, Levelization, Logic, Netlist};

/// Maximum number of input pins across all cell kinds (fixed stride).
pub const MAX_INPUTS: usize = 4;

/// Decodes one 2-bit pin field of a packed input code.
#[inline]
fn decode_pin(code: usize, k: usize) -> Logic {
    match (code >> (2 * k)) & 3 {
        0 => Logic::Zero,
        1 => Logic::One,
        _ => Logic::X,
    }
}

/// Flat, cache-friendly view of a netlist's combinational structure.
#[derive(Debug)]
pub struct SimTable {
    num_nets: usize,
    num_gates: usize,
    kind: Vec<CellKind>,
    n_in: Vec<u8>,
    /// Gate inputs, stride [`MAX_INPUTS`]; unused pins repeat pin 0 so a
    /// fixed four-read gather ([`SimTable::eval_plane`]) never touches an
    /// out-of-range net. [`SimTable::inputs`] still exposes only the real
    /// pins.
    inputs: Vec<u32>,
    /// Three-valued truth tables, one 256-entry block per distinct
    /// `(kind, arity)` pair, indexed by the packed 2-bits-per-pin input
    /// code. Derived from [`CellKind::eval`], so lookups are
    /// bit-identical to the scalar evaluator. Extra pins repeating pin 0
    /// select different codes, but every code maps to the same output
    /// because the generator only evaluates the real pins.
    lut: Vec<Logic>,
    /// Offset of each gate's truth-table block in `lut`.
    lut_base: Vec<u32>,
    output: Vec<u32>,
    gate_level: Vec<u32>,
    /// Level of the driving gate + 1; 0 for source nets.
    net_level: Vec<u32>,
    num_levels: u32,
    /// Gate ids in ascending level order (full levelized pass order).
    order: Vec<u32>,
    /// CSR fanout: gates reading net `n` are `fan[fan_off[n]..fan_off[n+1]]`.
    fan_off: Vec<u32>,
    fan: Vec<u32>,
}

impl SimTable {
    /// Flattens `netlist` (levelizes internally).
    pub fn build(netlist: &Netlist) -> Self {
        let lv = Levelization::build(netlist);
        Self::build_with(netlist, &lv)
    }

    /// Flattens `netlist` reusing an existing levelization.
    pub fn build_with(netlist: &Netlist, lv: &Levelization) -> Self {
        let num_nets = netlist.num_nets();
        let num_gates = netlist.num_gates();
        let mut kind = Vec::with_capacity(num_gates);
        let mut n_in = Vec::with_capacity(num_gates);
        let mut inputs = vec![0u32; num_gates * MAX_INPUTS];
        let mut output = Vec::with_capacity(num_gates);
        let mut gate_level = vec![0u32; num_gates];
        let mut net_level = vec![0u32; num_nets];
        let mut num_levels = 0u32;
        let mut lut = Vec::new();
        let mut lut_base = Vec::with_capacity(num_gates);
        let mut lut_keys: Vec<(CellKind, u8)> = Vec::new();
        for (gi, gate) in netlist.gates().iter().enumerate() {
            kind.push(gate.kind);
            let arity = gate.inputs.len() as u8;
            n_in.push(arity);
            let pad = gate.inputs.first().map_or(0, |n| n.raw());
            for k in 0..MAX_INPUTS {
                inputs[gi * MAX_INPUTS + k] = gate.inputs.get(k).map_or(pad, |n| n.raw());
            }
            output.push(gate.output.raw());
            let key = (gate.kind, arity);
            let slot = match lut_keys.iter().position(|&k| k == key) {
                Some(i) => i,
                None => {
                    lut_keys.push(key);
                    let mut vals = [Logic::X; MAX_INPUTS];
                    for code in 0..256usize {
                        for (k, v) in vals.iter_mut().enumerate() {
                            *v = decode_pin(code, k);
                        }
                        lut.push(gate.kind.eval(&vals[..arity as usize]));
                    }
                    lut_keys.len() - 1
                }
            };
            lut_base.push((slot * 256) as u32);
        }
        let mut order = Vec::with_capacity(num_gates);
        for &g in lv.order() {
            let l = lv.level(g);
            gate_level[g.index()] = l;
            net_level[netlist.gate(g).output.index()] = l + 1;
            num_levels = num_levels.max(l + 1);
            order.push(g.raw());
        }
        // CSR fanout in the same per-net gate order as
        // `Netlist::fanout_gates`, so kernels switching to the table seed
        // events in the identical order.
        let mut fan_off = Vec::with_capacity(num_nets + 1);
        let mut fan = Vec::new();
        fan_off.push(0u32);
        for n in 0..num_nets {
            for g in netlist.fanout_gates(scap_netlist::NetId::new(n as u32)) {
                fan.push(g.raw());
            }
            fan_off.push(fan.len() as u32);
        }
        SimTable {
            num_nets,
            num_gates,
            kind,
            n_in,
            inputs,
            lut,
            lut_base,
            output,
            gate_level,
            net_level,
            num_levels,
            order,
            fan_off,
            fan,
        }
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// Number of distinct gate levels (scheduler bucket count).
    #[inline]
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Cell kind of gate `g`.
    #[inline]
    pub fn kind(&self, g: usize) -> CellKind {
        self.kind[g]
    }

    /// Input nets of gate `g` (raw net ids).
    #[inline]
    pub fn inputs(&self, g: usize) -> &[u32] {
        &self.inputs[g * MAX_INPUTS..g * MAX_INPUTS + self.n_in[g] as usize]
    }

    /// Input nets of gate `g` padded to [`MAX_INPUTS`] by repeating pin 0
    /// (branch-free gather companion of [`SimTable::eval_coded`]).
    #[inline]
    pub fn inputs4(&self, g: usize) -> &[u32] {
        &self.inputs[g * MAX_INPUTS..g * MAX_INPUTS + MAX_INPUTS]
    }

    /// Evaluates gate `g` from a packed input code (2 bits per pin,
    /// `Logic as usize` per field, pin 0 in the low bits). Bit-identical
    /// to `self.kind(g).eval(..)` over the real pins by construction.
    #[inline]
    pub fn eval_coded(&self, g: usize, code: usize) -> Logic {
        self.lut[self.lut_base[g] as usize + code]
    }

    /// Evaluates gate `g` against a value plane: a fixed four-read gather
    /// plus one truth-table lookup, replacing the data-dependent branch
    /// chain of [`CellKind::eval`] in the event-loop hot path.
    #[inline]
    pub fn eval_plane(&self, g: usize, plane: &[Logic]) -> Logic {
        let ins = self.inputs4(g);
        let code = plane[ins[0] as usize] as usize
            | (plane[ins[1] as usize] as usize) << 2
            | (plane[ins[2] as usize] as usize) << 4
            | (plane[ins[3] as usize] as usize) << 6;
        self.eval_coded(g, code)
    }

    /// Output net of gate `g` (raw net id).
    #[inline]
    pub fn output(&self, g: usize) -> u32 {
        self.output[g]
    }

    /// Level of gate `g`.
    #[inline]
    pub fn gate_level(&self, g: usize) -> u32 {
        self.gate_level[g]
    }

    /// Level of the gate driving net `n`, plus one (0 for sources).
    #[inline]
    pub fn net_level(&self, n: usize) -> u32 {
        self.net_level[n]
    }

    /// Gate ids in ascending level order.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Gates reading net `n` (raw gate ids).
    #[inline]
    pub fn fanout(&self, n: usize) -> &[u32] {
        &self.fan[self.fan_off[n] as usize..self.fan_off[n + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, NetlistBuilder};

    #[test]
    fn table_mirrors_netlist_topology() {
        let mut b = NetlistBuilder::new("t");
        let blk = b.add_block("B1");
        let a = b.add_primary_input("a");
        let c = b.add_primary_input("c");
        let w = b.add_net("w");
        let y = b.add_net("y");
        b.add_gate(CellKind::Nand2, &[a, c], w, blk).unwrap();
        b.add_gate(CellKind::Inv, &[w], y, blk).unwrap();
        let n = b.finish().unwrap();
        let t = SimTable::build(&n);
        assert_eq!(t.num_gates(), 2);
        assert_eq!(t.kind(0), CellKind::Nand2);
        assert_eq!(t.inputs(0), &[a.raw(), c.raw()]);
        assert_eq!(t.output(0), w.raw());
        assert_eq!(t.inputs(1), &[w.raw()]);
        assert_eq!(t.fanout(w.index()), &[1]);
        assert_eq!(t.fanout(y.index()), &[] as &[u32]);
        assert_eq!(t.gate_level(0), 0);
        assert_eq!(t.gate_level(1), 1);
        assert_eq!(t.net_level(w.index()), 1);
        assert_eq!(t.net_level(a.index()), 0);
        assert_eq!(t.num_levels(), 2);
        assert_eq!(t.order(), &[0, 1]);
    }

    #[test]
    fn fanout_order_matches_netlist() {
        let mut b = NetlistBuilder::new("t");
        let blk = b.add_block("B1");
        let a = b.add_primary_input("a");
        let mut outs = Vec::new();
        for i in 0..5 {
            let y = b.add_net(format!("y{i}"));
            b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
            outs.push(y);
        }
        let n = b.finish().unwrap();
        let t = SimTable::build(&n);
        let expect: Vec<u32> = n.fanout_gates(a).iter().map(|g| g.raw()).collect();
        assert_eq!(t.fanout(a.index()), expect.as_slice());
    }
}
