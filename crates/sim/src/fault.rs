//! Transition-delay-fault model: sites, polarities, fault lists and
//! structural collapsing.

use scap_netlist::{BlockId, CellKind, GateId, NetId, NetSource, Netlist};
use serde::{Deserialize, Serialize};

/// Where a fault lives: on a net stem or on one gate input pin (branch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultSite {
    /// The stem of a net (covers the driver output pin).
    Net(NetId),
    /// A specific input pin of a gate; the observed signal is the net
    /// feeding that pin but the delay defect only affects this branch.
    Pin {
        /// The reading gate.
        gate: GateId,
        /// Input pin index within the gate.
        pin: u8,
    },
}

impl FaultSite {
    /// The net whose logic value excites the fault.
    pub fn net(self, netlist: &Netlist) -> NetId {
        match self {
            FaultSite::Net(n) => n,
            FaultSite::Pin { gate, pin } => netlist.gate(gate).inputs[pin as usize],
        }
    }
}

/// Transition polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Polarity {
    /// Slow-to-rise: the site fails to reach 1 in time. Launch 0→1.
    SlowToRise,
    /// Slow-to-fall: the site fails to reach 0 in time. Launch 1→0.
    SlowToFall,
}

impl Polarity {
    /// The value the site holds *before* the transition (frame 1), which is
    /// also the stuck value the slow signal presents in frame 2.
    #[inline]
    pub const fn initial_value(self) -> bool {
        matches!(self, Polarity::SlowToFall)
    }
    /// The value the site must reach in frame 2 (the good-machine value).
    #[inline]
    pub const fn final_value(self) -> bool {
        matches!(self, Polarity::SlowToRise)
    }

    /// The opposite polarity — what an inverter maps a transition to.
    #[inline]
    pub const fn flipped(self) -> Polarity {
        match self {
            Polarity::SlowToRise => Polarity::SlowToFall,
            Polarity::SlowToFall => Polarity::SlowToRise,
        }
    }

    /// Both polarities.
    pub const BOTH: [Polarity; 2] = [Polarity::SlowToRise, Polarity::SlowToFall];
}

/// One transition delay fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TransitionFault {
    /// The defect location.
    pub site: FaultSite,
    /// Slow-to-rise or slow-to-fall.
    pub polarity: Polarity,
}

impl TransitionFault {
    /// Creates a fault.
    pub const fn new(site: FaultSite, polarity: Polarity) -> Self {
        TransitionFault { site, polarity }
    }

    /// The block owning the faulty cell (the fault site's driver for stems,
    /// the reading gate for pins). Faults on primary-input nets report
    /// `None`.
    pub fn block(&self, netlist: &Netlist) -> Option<BlockId> {
        match self.site {
            FaultSite::Pin { gate, .. } => Some(netlist.gate(gate).block),
            FaultSite::Net(n) => match netlist.net(n).source {
                Some(NetSource::Gate(g)) => Some(netlist.gate(g).block),
                Some(NetSource::Flop(f)) => Some(netlist.flop(f).block),
                _ => None,
            },
        }
    }
}

/// A fault universe with collapse bookkeeping.
///
/// Uncollapsed counting follows industrial practice (two faults per cell
/// terminal); structural collapsing drops branch faults on single-fanout
/// nets (equivalent to the stem) so ATPG and fault simulation work on the
/// smaller set while coverage is still reported against the full universe.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::Netlist;
/// # fn demo(netlist: &Netlist) {
/// use scap_sim::FaultList;
/// let faults = FaultList::full(netlist);
/// println!("{} uncollapsed, {} collapsed", faults.uncollapsed_count(), faults.faults().len());
/// # }
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultList {
    faults: Vec<TransitionFault>,
    uncollapsed: usize,
}

impl FaultList {
    /// Builds the full transition-fault universe of a netlist: two faults
    /// per driven net stem plus two per branch pin of multi-fanout nets.
    pub fn full(netlist: &Netlist) -> Self {
        let mut faults = Vec::new();
        let mut uncollapsed = 0usize;
        for (i, _net) in netlist.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            // Constant nets cannot host transitions.
            if matches!(netlist.net(id).source, Some(NetSource::Const(_))) {
                continue;
            }
            let readers = netlist.fanout_gates(id).len() + netlist.fanout_flops(id).len();
            if readers == 0 && !netlist.primary_outputs().contains(&id) {
                // Dangling net: unobservable, still counted as faults in
                // the universe (they exist on silicon) but not targeted.
                continue;
            }
            uncollapsed += 2; // stem
            for p in Polarity::BOTH {
                faults.push(TransitionFault::new(FaultSite::Net(id), p));
            }
            // Branch faults: one per reading gate pin; collapse when the
            // net has a single reader (branch ≡ stem).
            let multi = readers > 1;
            for &g in netlist.fanout_gates(id) {
                for (pin, &inp) in netlist.gate(g).inputs.iter().enumerate() {
                    if inp == id {
                        uncollapsed += 2;
                        if multi {
                            for p in Polarity::BOTH {
                                faults.push(TransitionFault::new(
                                    FaultSite::Pin {
                                        gate: g,
                                        pin: pin as u8,
                                    },
                                    p,
                                ));
                            }
                        }
                    }
                }
            }
            // Flop D pins count toward the uncollapsed universe but are
            // equivalent to the stem for detection purposes.
            uncollapsed += 2 * netlist.fanout_flops(id).len();
        }
        FaultList {
            faults,
            uncollapsed,
        }
    }

    /// Builds the fault list restricted to cells of the given blocks
    /// (the per-block targeting of the paper's staged procedure).
    pub fn for_blocks(netlist: &Netlist, blocks: &[BlockId]) -> Self {
        let all = Self::full(netlist);
        let keep: Vec<TransitionFault> = all
            .faults
            .iter()
            .copied()
            .filter(|f| f.block(netlist).is_some_and(|b| blocks.contains(&b)))
            .collect();
        let ratio = if all.faults.is_empty() {
            0.0
        } else {
            keep.len() as f64 / all.faults.len() as f64
        };
        let uncollapsed = (all.uncollapsed as f64 * ratio).round() as usize;
        FaultList {
            faults: keep,
            uncollapsed,
        }
    }

    /// Builds a list from an explicit fault set (e.g. a filtered subset of
    /// another list). `uncollapsed` is carried through for reporting.
    pub fn from_faults(faults: Vec<TransitionFault>, uncollapsed: usize) -> Self {
        FaultList {
            faults,
            uncollapsed,
        }
    }

    /// Collapsed faults, the working set for ATPG and fault simulation.
    pub fn faults(&self) -> &[TransitionFault] {
        &self.faults
    }

    /// Size of the uncollapsed universe (the number the paper's Table 1
    /// reports).
    pub fn uncollapsed_count(&self) -> usize {
        self.uncollapsed
    }

    /// Builds the transition-fault equivalence map of this list — see
    /// [`CollapseMap`].
    pub fn collapse(&self, netlist: &Netlist) -> CollapseMap {
        CollapseMap::build(netlist, self)
    }
}

/// Transition-fault equivalence classes over a [`FaultList`].
///
/// Two transition faults are *equivalent* when every pattern yields
/// identical detect masks, so simulating one answers for both.
/// Structurally: a fault on a net whose only reader is a buffer or
/// inverter (no flop, no second gate) is equivalent to the fault on that
/// gate's output with the polarity mapped through the gate (inverters
/// flip it), because launch masks coincide under the zero-delay frame
/// values and the propagated diff is the same word. Likewise the branch
/// fault on a buffer/inverter input pin is equivalent to the stem fault
/// on its output. Chains collapse transitively to the *deepest*
/// equivalent fault present in the list, which makes the mapping
/// idempotent (`rep[rep[i]] == rep[i]`).
///
/// Fault simulation targets one representative per class; detection
/// credit is expanded back over every member, so coverage is still
/// reported over the full (uncollapsed) universe.
#[derive(Clone, Debug)]
pub struct CollapseMap {
    rep: Vec<u32>,
    num_collapsed: usize,
}

impl CollapseMap {
    /// Builds the equivalence map of `faults` on `netlist`.
    pub fn build(netlist: &Netlist, faults: &FaultList) -> Self {
        use std::collections::HashMap;
        let list = faults.faults();
        let index: HashMap<TransitionFault, u32> = list
            .iter()
            .enumerate()
            .map(|(i, f)| (*f, i as u32))
            .collect();
        let mut rep: Vec<u32> = (0..list.len() as u32).collect();
        let mut num_collapsed = 0usize;
        for (i, f) in list.iter().enumerate() {
            let mut deepest = i as u32;
            // Walk start: a stem fault starts on its own net; a branch
            // fault on a buffer/inverter jumps to the gate output first.
            let (mut cur, mut pol) = match f.site {
                FaultSite::Net(n) => (n, f.polarity),
                FaultSite::Pin { gate, .. } => {
                    let g = netlist.gate(gate);
                    if !matches!(g.kind, CellKind::Buf | CellKind::Inv) {
                        continue;
                    }
                    let pol = if matches!(g.kind, CellKind::Inv) {
                        f.polarity.flipped()
                    } else {
                        f.polarity
                    };
                    if let Some(&j) =
                        index.get(&TransitionFault::new(FaultSite::Net(g.output), pol))
                    {
                        deepest = j;
                    }
                    (g.output, pol)
                }
            };
            // Follow single-reader buffer/inverter links. A missing link
            // fault (e.g. filtered out of a per-block list) does not stop
            // the walk: equivalence is transitive through the circuit.
            loop {
                if !netlist.fanout_flops(cur).is_empty() {
                    break;
                }
                let readers = netlist.fanout_gates(cur);
                if readers.len() != 1 {
                    break;
                }
                let g = netlist.gate(readers[0]);
                if !matches!(g.kind, CellKind::Buf | CellKind::Inv) {
                    break;
                }
                if matches!(g.kind, CellKind::Inv) {
                    pol = pol.flipped();
                }
                cur = g.output;
                if let Some(&j) = index.get(&TransitionFault::new(FaultSite::Net(cur), pol)) {
                    deepest = j;
                }
            }
            if deepest != i as u32 {
                num_collapsed += 1;
            }
            rep[i] = deepest;
        }
        scap_obs::counter!("sim.faults_collapsed").add(num_collapsed as u64);
        CollapseMap { rep, num_collapsed }
    }

    /// Representative fault index per fault (identity for class
    /// representatives).
    pub fn rep(&self) -> &[u32] {
        &self.rep
    }

    /// Whether fault `i` represents its class.
    #[inline]
    pub fn is_rep(&self, i: usize) -> bool {
        self.rep[i] == i as u32
    }

    /// Number of faults folded into another representative.
    pub fn num_collapsed(&self) -> usize {
        self.num_collapsed
    }

    /// Class members grouped by representative: `members()[r]` lists
    /// every fault whose representative is `r` (including `r` itself);
    /// empty for non-representatives.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.rep.len()];
        for (i, &r) in self.rep.iter().enumerate() {
            members[r as usize].push(i as u32);
        }
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, NetlistBuilder};

    fn fanout_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let blk2 = b.add_block("B2");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let z1 = b.add_net("z1");
        let z2 = b.add_net("z2");
        let q = b.add_net("q");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_gate(CellKind::Buf, &[y], z1, blk).unwrap();
        b.add_gate(CellKind::Buf, &[y], z2, blk2).unwrap();
        b.add_flop("ff", z1, q, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_primary_output(z2);
        b.add_primary_output(q);
        b.finish().unwrap()
    }

    #[test]
    fn full_list_has_branch_faults_only_on_fanout_stems() {
        let n = fanout_netlist();
        let fl = FaultList::full(&n);
        let pin_faults: Vec<_> = fl
            .faults()
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Pin { .. }))
            .collect();
        // Only net y has two gate readers.
        assert_eq!(pin_faults.len(), 4);
        for f in pin_faults {
            assert_eq!(f.site.net(&n), n.gate(GateId::new(1)).inputs[0]);
        }
    }

    #[test]
    fn uncollapsed_exceeds_collapsed() {
        let n = fanout_netlist();
        let fl = FaultList::full(&n);
        assert!(fl.uncollapsed_count() > fl.faults().len());
    }

    #[test]
    fn per_block_filter_keeps_only_matching_cells() {
        let n = fanout_netlist();
        let b2 = BlockId::new(1);
        let fl = FaultList::for_blocks(&n, &[b2]);
        assert!(!fl.faults().is_empty());
        for f in fl.faults() {
            assert_eq!(f.block(&n), Some(b2));
        }
    }

    #[test]
    fn polarity_values() {
        assert!(Polarity::SlowToRise.final_value());
        assert!(!Polarity::SlowToFall.final_value());
        assert!(!Polarity::SlowToRise.initial_value());
        assert!(Polarity::SlowToFall.initial_value());
    }

    #[test]
    fn fault_site_net_resolution() {
        let n = fanout_netlist();
        let g = GateId::new(1);
        let site = FaultSite::Pin { gate: g, pin: 0 };
        assert_eq!(site.net(&n), n.gate(g).inputs[0]);
    }

    /// `a -Inv-> w1 -Buf-> w2 -> flop`: a single-reader chain where every
    /// upstream fault is equivalent to one at the chain tail.
    fn chain_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let w1 = b.add_net("w1");
        let w2 = b.add_net("w2");
        let q = b.add_net("q");
        b.add_gate(CellKind::Inv, &[a], w1, blk).unwrap();
        b.add_gate(CellKind::Buf, &[w1], w2, blk).unwrap();
        b.add_flop("ff", w2, q, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_primary_output(q);
        b.finish().unwrap()
    }

    fn index_of(fl: &FaultList, f: TransitionFault) -> u32 {
        fl.faults().iter().position(|&g| g == f).unwrap() as u32
    }

    #[test]
    fn inverter_chain_collapses_to_tail_with_polarity_flip() {
        let n = chain_netlist();
        let fl = FaultList::full(&n);
        let map = fl.collapse(&n);
        // Nets in builder insertion order: a=0, w1=1, w2=2.
        let a = NetId::new(0);
        let w1 = NetId::new(1);
        let w2 = NetId::new(2);
        // One inverter on the walk flips the polarity once; the buffer
        // preserves it.
        let str_a = index_of(
            &fl,
            TransitionFault::new(FaultSite::Net(a), Polarity::SlowToRise),
        );
        let stf_w1 = index_of(
            &fl,
            TransitionFault::new(FaultSite::Net(w1), Polarity::SlowToFall),
        );
        let stf_w2 = index_of(
            &fl,
            TransitionFault::new(FaultSite::Net(w2), Polarity::SlowToFall),
        );
        assert_eq!(map.rep()[str_a as usize], stf_w2);
        assert_eq!(map.rep()[stf_w1 as usize], stf_w2);
        assert!(map.is_rep(stf_w2 as usize));
        // Faults on a and w1 (both polarities) fold into w2's classes;
        // w2's two faults represent themselves.
        assert_eq!(map.num_collapsed(), 4);
        let members = map.members();
        assert_eq!(members[stf_w2 as usize].len(), 3);
        for m in &members[stf_w2 as usize] {
            assert_eq!(map.rep()[*m as usize], stf_w2);
        }
    }

    #[test]
    fn branch_fault_on_buffer_collapses_to_stem_output() {
        let n = fanout_netlist();
        let fl = FaultList::full(&n);
        let map = fl.collapse(&n);
        // Gate 1 is Buf(y) -> z1; its branch fault is equivalent to the
        // stem fault on z1 with unchanged polarity (z1 feeds a flop, so
        // the walk stops there).
        let pin = index_of(
            &fl,
            TransitionFault::new(
                FaultSite::Pin {
                    gate: GateId::new(1),
                    pin: 0,
                },
                Polarity::SlowToRise,
            ),
        );
        // fanout_netlist insertion order: a=0, y=1, z1=2.
        let z1 = NetId::new(2);
        let stem = index_of(
            &fl,
            TransitionFault::new(FaultSite::Net(z1), Polarity::SlowToRise),
        );
        assert_eq!(map.rep()[pin as usize], stem);
    }

    #[test]
    fn collapse_map_is_idempotent() {
        let n = chain_netlist();
        let fl = FaultList::full(&n);
        let map = fl.collapse(&n);
        for (i, &r) in map.rep().iter().enumerate() {
            assert_eq!(map.rep()[r as usize], r, "rep chain not flattened at {i}");
        }
    }
}
