//! Levelized three-valued zero-delay simulation with fault injection.

use crate::FaultSite;
use scap_netlist::{Levelization, Logic, NetSource, Netlist};

/// A forced value at a fault site, used by the ATPG engine to build the
/// faulty machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Where to force.
    pub site: FaultSite,
    /// The forced (stuck) value.
    pub value: Logic,
}

/// Levelized three-valued simulator over one netlist.
///
/// The simulator owns a [`Levelization`] so repeated evaluations (the inner
/// loop of PODEM) don't re-sort the netlist.
///
/// # Example
///
/// ```
/// use scap_netlist::{CellKind, Logic, NetlistBuilder};
/// use scap_sim::LogicSim;
///
/// # fn main() -> Result<(), scap_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("d");
/// let blk = b.add_block("B1");
/// let a = b.add_primary_input("a");
/// let y = b.add_net("y");
/// b.add_gate(CellKind::Inv, &[a], y, blk)?;
/// let n = b.finish()?;
/// let sim = LogicSim::new(&n);
/// assert_eq!(sim.eval(&[], &[Logic::X], None)[y.index()], Logic::X);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LogicSim<'a> {
    netlist: &'a Netlist,
    levelization: Levelization,
}

impl<'a> LogicSim<'a> {
    /// Builds a simulator (levelizes once).
    pub fn new(netlist: &'a Netlist) -> Self {
        let levelization = Levelization::build(netlist);
        // The hot loop in `propagate` assumes the order covers every gate
        // and is level-monotone, so each gate's inputs are final when it
        // is evaluated. Checked here (debug builds) rather than per eval.
        debug_assert_eq!(
            levelization.order().len(),
            netlist.num_gates(),
            "levelization must cover every gate (combinational loop?)"
        );
        debug_assert!(
            levelization
                .order()
                .windows(2)
                .all(|w| levelization.level(w[0]) <= levelization.level(w[1])),
            "levelization order must be monotone in level"
        );
        LogicSim {
            netlist,
            levelization,
        }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The levelization, for reuse by callers.
    pub fn levelization(&self) -> &Levelization {
        &self.levelization
    }

    /// Evaluates all nets given per-flop Q values and per-PI values.
    ///
    /// * `flop_q[i]` is the state of flop `i` (X allowed),
    /// * `pi[i]` is the value of the `i`-th primary input,
    /// * `inject` optionally forces a fault site to a value (the faulty
    ///   machine). A `Net` site overrides the net's computed value; a
    ///   `Pin` site overrides the value *seen by that gate pin only*.
    ///
    /// Returns one [`Logic`] per net, indexable by [`NetId::index`].
    ///
    /// # Panics
    ///
    /// Panics if the slices don't match the netlist's flop / PI counts.
    pub fn eval(&self, flop_q: &[Logic], pi: &[Logic], inject: Option<Injection>) -> Vec<Logic> {
        let n = self.netlist;
        assert_eq!(flop_q.len(), n.num_flops(), "one value per flop");
        assert_eq!(pi.len(), n.primary_inputs().len(), "one value per PI");
        let mut values = vec![Logic::X; n.num_nets()];
        for (i, &net) in n.primary_inputs().iter().enumerate() {
            values[net.index()] = pi[i];
        }
        for (i, flop) in n.flops().iter().enumerate() {
            values[flop.q.index()] = flop_q[i];
        }
        for (i, net) in n.nets().iter().enumerate() {
            if let Some(NetSource::Const(c)) = net.source {
                values[i] = Logic::from_bool(c);
            }
        }
        let (net_inject, pin_inject) = match inject {
            Some(Injection {
                site: FaultSite::Net(net),
                value,
            }) => (Some((net, value)), None),
            Some(Injection {
                site: FaultSite::Pin { gate, pin },
                value,
            }) => (None, Some((gate, pin, value))),
            None => (None, None),
        };
        // Apply net injection to source nets too (PI / flop Q stems).
        if let Some((net, v)) = net_inject {
            if !matches!(n.net(net).source, Some(NetSource::Gate(_))) {
                values[net.index()] = v;
            }
        }
        let mut inbuf: Vec<Logic> = Vec::with_capacity(4);
        for &g in self.levelization.order() {
            let gate = n.gate(g);
            inbuf.clear();
            for (pin, &inp) in gate.inputs.iter().enumerate() {
                let mut v = values[inp.index()];
                if let Some((ig, ipin, iv)) = pin_inject {
                    if ig == g && ipin as usize == pin {
                        v = iv;
                    }
                }
                inbuf.push(v);
            }
            let mut out = gate.kind.eval(&inbuf);
            if let Some((net, v)) = net_inject {
                if net == gate.output {
                    out = v;
                }
            }
            values[gate.output.index()] = out;
        }
        values
    }

    /// Convenience: frame-independent evaluation returning the D-input
    /// values of all flops (the next state).
    pub fn next_state(&self, values: &[Logic]) -> Vec<Logic> {
        self.netlist
            .flops()
            .iter()
            .map(|f| values[f.d.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, GateId, NetlistBuilder};

    /// xor = a ^ q; d = !xor; flop(d -> q)
    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let q = b.add_net("q");
        let x = b.add_net("x");
        let d = b.add_net("d");
        b.add_gate(CellKind::Xor2, &[a, q], x, blk).unwrap();
        b.add_gate(CellKind::Inv, &[x], d, blk).unwrap();
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn evaluates_known_values() {
        let n = toy();
        let sim = LogicSim::new(&n);
        let v = sim.eval(&[Logic::One], &[Logic::Zero], None);
        // x = 0 ^ 1 = 1, d = 0
        assert_eq!(v[2], Logic::One);
        assert_eq!(v[3], Logic::Zero);
        assert_eq!(sim.next_state(&v), vec![Logic::Zero]);
    }

    #[test]
    fn x_propagates() {
        let n = toy();
        let sim = LogicSim::new(&n);
        let v = sim.eval(&[Logic::X], &[Logic::One], None);
        assert_eq!(v[2], Logic::X);
        assert_eq!(v[3], Logic::X);
    }

    #[test]
    fn net_injection_overrides_gate_output() {
        let n = toy();
        let sim = LogicSim::new(&n);
        let x_net = scap_netlist::NetId::new(2);
        let v = sim.eval(
            &[Logic::One],
            &[Logic::Zero],
            Some(Injection {
                site: FaultSite::Net(x_net),
                value: Logic::Zero,
            }),
        );
        assert_eq!(v[2], Logic::Zero);
        // Downstream sees the forced value: d = !0 = 1.
        assert_eq!(v[3], Logic::One);
    }

    #[test]
    fn pin_injection_affects_only_that_branch() {
        // y = a; two readers: inv1(y) -> z1, inv2(y) -> z2.
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let a = b.add_primary_input("a");
        let z1 = b.add_net("z1");
        let z2 = b.add_net("z2");
        b.add_gate(CellKind::Inv, &[a], z1, blk).unwrap();
        b.add_gate(CellKind::Inv, &[a], z2, blk).unwrap();
        b.add_primary_output(z1);
        b.add_primary_output(z2);
        let n = b.finish().unwrap();
        let sim = LogicSim::new(&n);
        let v = sim.eval(
            &[],
            &[Logic::One],
            Some(Injection {
                site: FaultSite::Pin {
                    gate: GateId::new(0),
                    pin: 0,
                },
                value: Logic::Zero,
            }),
        );
        assert_eq!(v[z1.index()], Logic::One, "faulty branch");
        assert_eq!(v[z2.index()], Logic::Zero, "healthy branch");
    }

    #[test]
    fn injection_on_primary_input_stem() {
        let n = toy();
        let sim = LogicSim::new(&n);
        let a = n.primary_inputs()[0];
        let v = sim.eval(
            &[Logic::One],
            &[Logic::Zero],
            Some(Injection {
                site: FaultSite::Net(a),
                value: Logic::One,
            }),
        );
        assert_eq!(v[a.index()], Logic::One);
    }

    #[test]
    #[should_panic(expected = "one value per flop")]
    fn validates_state_width() {
        let n = toy();
        let sim = LogicSim::new(&n);
        let _ = sim.eval(&[], &[Logic::Zero], None);
    }
}
