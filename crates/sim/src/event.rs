//! Event-driven gate-level timing simulation.
//!
//! This is the VCS-with-SDF substitute: starting from a stable frame-1
//! state, flop outputs toggle at their (clock arrival + clock-to-Q) times
//! and events propagate through gates with annotated rise/fall delays.
//! The default semantics are inertial — pulses narrower than a gate's
//! propagation delay are swallowed, as in real silicon — while glitches
//! wide enough to pass are modeled and counted (they draw real charge);
//! [`EventSim::with_transport_delays`] propagates everything instead. The
//! resulting [`ToggleTrace`] is the input to the SCAP calculator and to
//! dynamic IR-drop analysis, and its latest event defines the pattern's
//! **switching time window (STW)**.

use scap_netlist::{FlopId, NetId, Netlist};
use scap_timing::DelayAnnotation;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// One net transition.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ToggleEvent {
    /// Event time in picoseconds after the launch clock edge at the root.
    pub time_ps: f64,
    /// The toggling net.
    pub net: NetId,
    /// `true` for a 0→1 transition (draws charge from VDD), `false` for
    /// 1→0 (dumps charge into VSS).
    pub rising: bool,
}

/// The switching activity of one pattern's launch-to-capture window.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ToggleTrace {
    /// All transitions, in non-decreasing time order.
    pub events: Vec<ToggleEvent>,
    last_change_ps: Vec<f64>,
}

impl ToggleTrace {
    /// The switching time window: the time of the last transition, ps.
    /// Returns 0 for a quiescent pattern.
    pub fn stw_ps(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time_ps)
    }

    /// Time of the last transition on `net`, or `None` if it never toggled.
    pub fn last_change_ps(&self, net: NetId) -> Option<f64> {
        let t = self.last_change_ps[net.index()];
        (t >= 0.0).then_some(t)
    }

    /// Total number of transitions.
    pub fn num_toggles(&self) -> usize {
        self.events.len()
    }

    /// Rising / falling transition counts per net.
    pub fn toggle_counts(&self, num_nets: usize) -> Vec<(u32, u32)> {
        let mut counts = vec![(0u32, 0u32); num_nets];
        for e in &self.events {
            let c = &mut counts[e.net.index()];
            if e.rising {
                c.0 += 1;
            } else {
                c.1 += 1;
            }
        }
        counts
    }
}

#[derive(PartialEq)]
struct QueuedEvent {
    time_fs: u64,
    seq: u64,
    net: NetId,
    value: bool,
}

/// The latest still-pending scheduled event per net, for inertial
/// (pulse-filtering) delay semantics.
#[derive(Clone, Copy)]
struct Pending {
    time_fs: u64,
    value: bool,
    seq: u64,
}

impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversal.
        other
            .time_fs
            .cmp(&self.time_fs)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Event-driven simulator bound to a netlist + delay annotation.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::{Netlist, FlopId};
/// # use scap_timing::DelayAnnotation;
/// # fn demo(netlist: &Netlist, ann: &DelayAnnotation, frame1: Vec<bool>) {
/// use scap_sim::EventSim;
/// let sim = EventSim::new(netlist, ann);
/// // ff0 launches a rising edge 450 ps after the root clock edge:
/// let trace = sim.run(&frame1, &[(FlopId::new(0), true, 450.0)]);
/// println!("STW = {} ps, {} toggles", trace.stw_ps(), trace.num_toggles());
/// # }
/// ```
#[derive(Debug)]
pub struct EventSim<'a> {
    netlist: &'a Netlist,
    annotation: &'a DelayAnnotation,
    /// Hard cap on processed events, to bound pathological reconvergence.
    max_events: usize,
    /// Inertial-delay semantics: output pulses narrower than the driving
    /// gate's propagation delay are swallowed, as real gates do. Transport
    /// semantics (every glitch propagates) are available for analysis.
    inertial: bool,
}

impl<'a> EventSim<'a> {
    /// Creates a simulator with inertial delays and a default event budget
    /// of `64 × nets`.
    pub fn new(netlist: &'a Netlist, annotation: &'a DelayAnnotation) -> Self {
        EventSim {
            netlist,
            annotation,
            max_events: netlist.num_nets().saturating_mul(64).max(1 << 16),
            inertial: true,
        }
    }

    /// Overrides the event budget.
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// Selects transport-delay semantics (every pulse propagates, however
    /// narrow). Useful to expose worst-case glitch activity.
    pub fn with_transport_delays(mut self) -> Self {
        self.inertial = false;
        self
    }

    /// Runs the launch-to-capture window.
    ///
    /// * `frame1` — stable pre-launch value of every net,
    /// * `launches` — `(flop, new Q value, Q transition time in ps)` for
    ///   every flop whose Q changes at the launch edge (typically
    ///   clock-arrival + clock-to-Q of the active domain's flops whose
    ///   frame-2 state differs from the load).
    ///
    /// Launches whose value equals the current Q value are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `frame1.len()` differs from the net count.
    pub fn run(&self, frame1: &[bool], launches: &[(FlopId, bool, f64)]) -> ToggleTrace {
        let n = self.netlist;
        assert_eq!(frame1.len(), n.num_nets(), "one value per net");
        let mut value = frame1.to_vec();
        let mut last_change = vec![-1.0f64; n.num_nets()];
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        let mut pending: Vec<Option<Pending>> = vec![None; n.num_nets()];
        let mut cancelled: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for &(flop, val, t_ps) in launches {
            let q = n.flop(flop).q;
            heap.push(QueuedEvent {
                time_fs: ps_to_fs(t_ps),
                seq,
                net: q,
                value: val,
            });
            pending[q.index()] = Some(Pending {
                time_fs: ps_to_fs(t_ps),
                value: val,
                seq,
            });
            seq += 1;
        }
        let mut events = Vec::new();
        let mut processed = 0usize;
        while let Some(ev) = heap.pop() {
            if processed >= self.max_events {
                break;
            }
            if self.inertial && cancelled.remove(&ev.seq) {
                continue; // swallowed pulse edge
            }
            processed += 1;
            let idx = ev.net.index();
            if pending[idx].is_some_and(|p| p.seq == ev.seq) {
                pending[idx] = None;
            }
            if value[idx] == ev.value {
                continue; // no change
            }
            value[idx] = ev.value;
            let t_ps = fs_to_ps(ev.time_fs);
            last_change[idx] = t_ps;
            events.push(ToggleEvent {
                time_ps: t_ps,
                net: ev.net,
                rising: ev.value,
            });
            for &g in n.fanout_gates(ev.net) {
                let gate = n.gate(g);
                let mut ins = [false; 4];
                for (k, &inp) in gate.inputs.iter().enumerate() {
                    ins[k] = value[inp.index()];
                }
                let out = gate.kind.eval_bool(&ins[..gate.inputs.len()]);
                let delay_ps = if out {
                    self.annotation.gate_rise_ps(g)
                } else {
                    self.annotation.gate_fall_ps(g)
                };
                let at = ev.time_fs + ps_to_fs(delay_ps);
                let out_idx = gate.output.index();
                if self.inertial {
                    if let Some(p) = pending[out_idx] {
                        if p.time_fs >= ev.time_fs {
                            if p.value == out {
                                continue; // already heading to this value
                            }
                            if at.saturating_sub(p.time_fs) < ps_to_fs(delay_ps) {
                                // The pulse between the pending edge and
                                // this one is narrower than the gate can
                                // pass: swallow both edges.
                                cancelled.insert(p.seq);
                                pending[out_idx] = None;
                                continue;
                            }
                        }
                    }
                }
                heap.push(QueuedEvent {
                    time_fs: at,
                    seq,
                    net: gate.output,
                    value: out,
                });
                pending[out_idx] = Some(Pending {
                    time_fs: at,
                    value: out,
                    seq,
                });
                seq += 1;
            }
        }
        scap_obs::counter!("sim.event_runs").incr();
        scap_obs::counter!("sim.toggle_events").add(events.len() as u64);
        // The heap pops in time order but pushes during processing keep it
        // correct; events are therefore already time-sorted.
        ToggleTrace {
            events,
            last_change_ps: last_change,
        }
    }
}

#[inline]
fn ps_to_fs(ps: f64) -> u64 {
    (ps * 1000.0).round().max(0.0) as u64
}

#[inline]
fn fs_to_ps(fs: u64) -> f64 {
    fs as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loc::loc_frames_batch, BatchSim};
    use scap_netlist::{CellKind, ClockEdge, ClockId, GateId, NetlistBuilder};

    /// ff0 -> inv -> inv -> ff1 (chain of 2 inverters).
    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("c");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q0 = b.add_net("q0");
        let w = b.add_net("w");
        let d1 = b.add_net("d1");
        let q1 = b.add_net("q1");
        let d0 = b.add_net("d0");
        b.add_gate(CellKind::Inv, &[q0], w, blk).unwrap();
        b.add_gate(CellKind::Inv, &[w], d1, blk).unwrap();
        b.add_gate(CellKind::Buf, &[q0], d0, blk).unwrap();
        b.add_flop("ff0", d0, q0, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ff1", d1, q1, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.finish().unwrap()
    }

    fn stable_frame1(n: &Netlist, q0: bool) -> Vec<bool> {
        let batch = BatchSim::new(n);
        let frames = loc_frames_batch(&batch, &[q0 as u64, 0], &[], ClockId::new(0));
        (0..n.num_nets())
            .map(|i| frames.frame1[i] & 1 == 1)
            .collect()
    }

    #[test]
    fn transition_ripples_down_the_chain() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let sim = EventSim::new(&n, &ann);
        let frame1 = stable_frame1(&n, false);
        let trace = sim.run(&frame1, &[(FlopId::new(0), true, 500.0)]);
        // q0, w, d1 and d0 all toggle: 4 events.
        assert_eq!(trace.num_toggles(), 4);
        let q0 = n.flop(FlopId::new(0)).q;
        let d1 = n.flop(FlopId::new(1)).d;
        assert_eq!(trace.last_change_ps(q0), Some(500.0));
        let t_d1 = trace.last_change_ps(d1).unwrap();
        let expect = 500.0 + ann.gate_fall_ps(GateId::new(0)) + ann.gate_rise_ps(GateId::new(1));
        assert!((t_d1 - expect).abs() < 1e-6, "{t_d1} vs {expect}");
        assert_eq!(
            trace.stw_ps(),
            t_d1.max(trace.last_change_ps(n.flop(FlopId::new(0)).d).unwrap())
        );
    }

    #[test]
    fn no_launch_means_quiescent_trace() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let sim = EventSim::new(&n, &ann);
        let frame1 = stable_frame1(&n, false);
        let trace = sim.run(&frame1, &[]);
        assert_eq!(trace.num_toggles(), 0);
        assert_eq!(trace.stw_ps(), 0.0);
        assert_eq!(trace.last_change_ps(n.flop(FlopId::new(1)).d), None);
    }

    #[test]
    fn launch_to_current_value_is_ignored() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let sim = EventSim::new(&n, &ann);
        let frame1 = stable_frame1(&n, true);
        // q0 is already 1; "launching" 1 changes nothing.
        let trace = sim.run(&frame1, &[(FlopId::new(0), true, 500.0)]);
        assert_eq!(trace.num_toggles(), 0);
    }

    #[test]
    fn glitches_are_counted() {
        // y = a XOR b with different path delays: launch a and b together
        // through paths of different length to y -> glitch on y.
        let mut b = NetlistBuilder::new("g");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q0 = b.add_net("q0");
        let q1 = b.add_net("q1");
        let slow = b.add_net("slow");
        let slow2 = b.add_net("slow2");
        let y = b.add_net("y");
        let d0 = b.add_net("d0");
        let d1 = b.add_net("d1");
        b.add_gate(CellKind::Buf, &[q0], slow, blk).unwrap();
        b.add_gate(CellKind::Buf, &[slow], slow2, blk).unwrap();
        b.add_gate(CellKind::Xor2, &[slow2, q1], y, blk).unwrap();
        b.add_gate(CellKind::Buf, &[q0], d0, blk).unwrap();
        b.add_gate(CellKind::Buf, &[q1], d1, blk).unwrap();
        b.add_flop("ff0", d0, q0, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ff1", d1, q1, clk, ClockEdge::Rising, blk)
            .unwrap();
        let n = b.finish().unwrap();
        let ann = DelayAnnotation::unit_wire(&n);
        let sim = EventSim::new(&n, &ann);
        // frame1: q0 = 0, q1 = 0 -> y = 0. Launch both rising at t = 500.
        let frame1 = vec![false; n.num_nets()];
        let trace = sim.run(
            &frame1,
            &[(FlopId::new(0), true, 500.0), (FlopId::new(1), true, 500.0)],
        );
        // y rises when q1 arrives, then falls when the slow path arrives:
        // two toggles on y despite identical start/end value.
        let y_toggles = trace.events.iter().filter(|e| e.net == y).count();
        assert_eq!(y_toggles, 2, "glitch must be visible");
        let (rise, fall) = trace.toggle_counts(n.num_nets())[y.index()];
        assert_eq!((rise, fall), (1, 1));
    }

    /// A pulse narrower than the consuming gate's propagation delay is
    /// swallowed under inertial semantics but passes under transport.
    #[test]
    fn narrow_pulse_is_swallowed_inertially() {
        // Two launches on the same flop in quick succession create a
        // 40 ps pulse on q0, far below the buffer delay.
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let frame1 = stable_frame1(&n, false);
        let pulse = [
            (FlopId::new(0), true, 500.0),
            (FlopId::new(0), false, 540.0),
        ];
        let inertial = EventSim::new(&n, &ann).run(&frame1, &pulse);
        let transport = EventSim::new(&n, &ann)
            .with_transport_delays()
            .run(&frame1, &pulse);
        let w = n.gate(GateId::new(0)).output;
        let count = |t: &ToggleTrace, net| t.events.iter().filter(|e| e.net == net).count();
        // Both see the q0 pulse itself (it is an input, not gate-driven)…
        assert_eq!(count(&inertial, n.flop(FlopId::new(0)).q), 2);
        // …but only transport lets it through the first inverter.
        assert_eq!(count(&transport, w), 2);
        assert_eq!(count(&inertial, w), 0, "pulse must be swallowed");
    }

    #[test]
    fn event_budget_caps_runaway() {
        let n = chain();
        let ann = DelayAnnotation::unit_wire(&n);
        let sim = EventSim::new(&n, &ann).with_max_events(1);
        let frame1 = stable_frame1(&n, false);
        let trace = sim.run(&frame1, &[(FlopId::new(0), true, 0.0)]);
        assert!(trace.num_toggles() <= 1);
    }
}
