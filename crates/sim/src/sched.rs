//! Epoch-stamped levelized bucket scheduler.
//!
//! The fault-propagation and ATPG event kernels both need the same
//! discipline: evaluate each touched gate exactly once, in ascending
//! level order, restarting from scratch many millions of times per run.
//! A `BinaryHeap<Reverse<(level, gate)>>` plus a `HashSet` dedup does the
//! job but pays `O(log n)` per push/pop, hashes every enqueue and clears
//! both structures on every restart. [`LevelQueue`] replaces that with
//! one `Vec<u32>` bucket per level and a `u32` epoch stamp per item:
//! enqueue and pop are O(1), dedup is a single array compare, and a
//! restart is a single epoch increment — no clearing proportional to the
//! previous run.

/// A restartable priority queue over `(level, item)` pairs where levels
/// are small dense integers (logic depth) and items are dense ids
/// (gates).
///
/// Invariant: once popping has drained past level `L`, pushes at levels
/// `< L` are a caller bug (levelized propagation only ever schedules
/// strictly deeper successors). Debug builds assert this.
#[derive(Debug, Default)]
pub struct LevelQueue {
    buckets: Vec<Vec<u32>>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Levels whose bucket is non-empty in the current epoch.
    touched: Vec<u32>,
    cursor_level: usize,
    cursor_pos: usize,
    draining: bool,
    /// Scheduled-but-not-popped count; lets the final pop return in O(1)
    /// instead of scanning every remaining level bucket.
    remaining: usize,
}

impl LevelQueue {
    /// An empty queue; size it with [`LevelQueue::ensure`].
    pub fn new() -> Self {
        LevelQueue::default()
    }

    /// Grows the queue to cover `num_levels` levels and `num_items` item
    /// ids. Idempotent and cheap when already large enough.
    pub fn ensure(&mut self, num_levels: usize, num_items: usize) {
        if self.buckets.len() < num_levels {
            self.buckets.resize_with(num_levels, Vec::new);
        }
        if self.stamp.len() < num_items {
            self.stamp.resize(num_items, 0);
        }
    }

    /// Starts a new run: conceptually clears the queue in O(touched
    /// levels) and invalidates all stamps in O(1) by bumping the epoch.
    pub fn begin(&mut self) {
        for &lv in &self.touched {
            self.buckets[lv as usize].clear();
        }
        self.touched.clear();
        if self.epoch == u32::MAX {
            // Epoch wrap: stamps from 4 billion runs ago could alias the
            // new epoch, so pay one full clear and restart from 1.
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.cursor_level = usize::MAX;
        self.cursor_pos = 0;
        self.draining = false;
        self.remaining = 0;
    }

    /// Enqueues `item` at `level` unless it is already scheduled in this
    /// run.
    #[inline]
    pub fn push(&mut self, level: u32, item: u32) {
        if self.stamp[item as usize] == self.epoch {
            return;
        }
        self.stamp[item as usize] = self.epoch;
        let lv = level as usize;
        debug_assert!(
            !self.draining || lv >= self.cursor_level,
            "push at level {lv} below the drain cursor {}",
            self.cursor_level
        );
        let bucket = &mut self.buckets[lv];
        if bucket.is_empty() {
            self.touched.push(level);
        }
        bucket.push(item);
        self.remaining += 1;
        if lv < self.cursor_level {
            self.cursor_level = lv;
        }
    }

    /// Pops the next item in ascending level order (insertion order
    /// within a level).
    #[inline]
    pub fn pop(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        while self.cursor_level < self.buckets.len() {
            let bucket = &self.buckets[self.cursor_level];
            if self.cursor_pos < bucket.len() {
                let item = bucket[self.cursor_pos];
                self.cursor_pos += 1;
                self.remaining -= 1;
                self.draining = true;
                return Some(item);
            }
            self.cursor_level += 1;
            self.cursor_pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_level_order_with_dedup() {
        let mut q = LevelQueue::new();
        q.ensure(4, 10);
        q.begin();
        q.push(2, 7);
        q.push(0, 3);
        q.push(2, 7); // duplicate, dropped
        q.push(1, 5);
        assert_eq!(q.pop(), Some(3));
        q.push(3, 9); // push while draining, deeper level
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn begin_resets_without_clearing_stamps() {
        let mut q = LevelQueue::new();
        q.ensure(2, 4);
        for _ in 0..3 {
            q.begin();
            q.push(0, 1);
            q.push(1, 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ensure_grows_idempotently() {
        let mut q = LevelQueue::new();
        q.ensure(1, 1);
        q.ensure(8, 16);
        q.ensure(2, 2); // shrinking request is a no-op
        q.begin();
        q.push(7, 15);
        assert_eq!(q.pop(), Some(15));
    }
}
