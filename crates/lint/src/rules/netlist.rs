//! Netlist-layer rules (`NET00x`).
//!
//! These re-derive connectivity from the gate and flop tables instead of
//! trusting the netlist's precomputed fanout lists, so they still catch
//! corruption introduced through the invariant-breaking mutation
//! accessors (`Netlist::net_mut` and friends), after which the cached
//! lists are stale by design.

use crate::context::LintContext;
use crate::diag::{Finding, Severity, Span};
use crate::registry::Rule;
use scap_netlist::{GateId, NetId, NetSource, Netlist};

/// The structural driver count of every net, recomputed from scratch:
/// gate outputs, flop Q pins, primary inputs and constant ties.
fn driver_counts(n: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; n.num_nets()];
    for g in n.gates() {
        counts[g.output.index()] += 1;
    }
    for f in n.flops() {
        counts[f.q.index()] += 1;
    }
    for &pi in n.primary_inputs() {
        counts[pi.index()] += 1;
    }
    for (i, net) in n.nets().iter().enumerate() {
        if let Some(NetSource::Const(_)) = net.source {
            counts[i] += 1;
        }
    }
    counts
}

/// `NET001` — every net must have exactly one structural driver, and the
/// recorded `source` must agree with it.
#[derive(Debug)]
pub struct FloatingNet;

impl Rule for FloatingNet {
    fn id(&self) -> &'static str {
        "NET001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "netlist"
    }
    fn description(&self) -> &'static str {
        "floating net: no structural driver, or a recorded source that no longer drives the net"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.net001"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        let counts = driver_counts(n);
        for (i, net) in n.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            if counts[i] == 0 {
                out.push(self.finding(Span::Net(id), format!("net '{}' has no driver", net.name)));
                continue;
            }
            // A recorded source that points at an instance which no longer
            // drives this net is a floating net in disguise: simulation
            // trusts `source` and would read a stale or absent value.
            let stale = match net.source {
                Some(NetSource::Gate(g)) => n.gate(g).output != id,
                Some(NetSource::Flop(f)) => n.flop(f).q != id,
                Some(NetSource::PrimaryInput) => !n.primary_inputs().contains(&id),
                Some(NetSource::Const(_)) => false,
                None => true,
            };
            if stale {
                out.push(self.finding(
                    Span::Net(id),
                    format!(
                        "net '{}' records source {:?} which does not drive it",
                        net.name, net.source
                    ),
                ));
            }
        }
    }
}

/// `NET002` — no net may have more than one structural driver.
#[derive(Debug)]
pub struct MultiDrivenNet;

impl Rule for MultiDrivenNet {
    fn id(&self) -> &'static str {
        "NET002"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "netlist"
    }
    fn description(&self) -> &'static str {
        "multi-driven net: more than one gate output, flop Q, primary input or constant tie"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.net002"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        for (i, &count) in driver_counts(n).iter().enumerate() {
            if count > 1 {
                let id = NetId::new(i as u32);
                out.push(self.finding(
                    Span::Net(id),
                    format!("net '{}' has {} drivers", n.net(id).name, count),
                ));
            }
        }
    }
}

/// `NET003` — the combinational core must be acyclic.
///
/// Backs the `debug_assert!` in `Levelization::build`: release builds no
/// longer abort on a loop, this rule reports it instead.
#[derive(Debug)]
pub struct CombinationalLoop;

impl Rule for CombinationalLoop {
    fn id(&self) -> &'static str {
        "NET003"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "netlist"
    }
    fn description(&self) -> &'static str {
        "combinational loop: a gate feeds its own input cone without an intervening flop"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.net003"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        // Kahn over gate→gate edges, recomputed from the gate table.
        let mut driving_gate = vec![None; n.num_nets()];
        for (i, g) in n.gates().iter().enumerate() {
            driving_gate[g.output.index()] = Some(i);
        }
        let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n.num_gates()];
        let mut indeg = vec![0u32; n.num_gates()];
        for (i, g) in n.gates().iter().enumerate() {
            for &inp in &g.inputs {
                if let Some(src) = driving_gate[inp.index()] {
                    readers[src].push(i as u32);
                    indeg[i] += 1;
                }
            }
        }
        let mut queue: std::collections::VecDeque<u32> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut processed = 0usize;
        while let Some(g) = queue.pop_front() {
            processed += 1;
            for &r in &readers[g as usize] {
                indeg[r as usize] -= 1;
                if indeg[r as usize] == 0 {
                    queue.push_back(r);
                }
            }
        }
        if processed == n.num_gates() {
            return;
        }
        for (i, &d) in indeg.iter().enumerate() {
            if d > 0 {
                let id = GateId::new(i as u32);
                out.push(self.finding(
                    Span::Gate(id),
                    format!(
                        "gate {:?} ({:?}) is part of a combinational cycle",
                        id,
                        n.gate(id).kind
                    ),
                ));
            }
        }
    }
}

/// `NET004` — every gate's output must (transitively) reach a flop D pin
/// or a primary output; anything else is dead logic the fault model and
/// power model silently disagree about.
#[derive(Debug)]
pub struct UnreachableGate;

impl Rule for UnreachableGate {
    fn id(&self) -> &'static str {
        "NET004"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn layer(&self) -> &'static str {
        "netlist"
    }
    fn description(&self) -> &'static str {
        "unreachable gate: output never reaches a flop D pin or primary output"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.net004"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        let mut driving_gate = vec![None; n.num_nets()];
        for (i, g) in n.gates().iter().enumerate() {
            driving_gate[g.output.index()] = Some(i as u32);
        }
        // Reverse BFS from observed nets: PO nets and flop D nets.
        let mut reachable = vec![false; n.num_gates()];
        let mut stack: Vec<u32> = Vec::new();
        let seed = |net: NetId, stack: &mut Vec<u32>, reachable: &mut Vec<bool>| {
            if let Some(g) = driving_gate[net.index()] {
                if !std::mem::replace(&mut reachable[g as usize], true) {
                    stack.push(g);
                }
            }
        };
        for &po in n.primary_outputs() {
            seed(po, &mut stack, &mut reachable);
        }
        for f in n.flops() {
            seed(f.d, &mut stack, &mut reachable);
        }
        while let Some(g) = stack.pop() {
            for &inp in &n.gate(GateId::new(g)).inputs {
                seed(inp, &mut stack, &mut reachable);
            }
        }
        for (i, &ok) in reachable.iter().enumerate() {
            if !ok {
                let id = GateId::new(i as u32);
                out.push(self.finding(
                    Span::Gate(id),
                    format!(
                        "gate {:?} ({:?}) output '{}' never reaches a flop or primary output",
                        id,
                        n.gate(id).kind,
                        n.net(n.gate(id).output).name
                    ),
                ));
            }
        }
    }
}

/// `NET005` — fanout outliers: a net read by far more pins than the rest
/// of the design suggests a stitching bug (or a missing buffer tree).
#[derive(Debug)]
pub struct FanoutOutlier;

impl Rule for FanoutOutlier {
    fn id(&self) -> &'static str {
        "NET005"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn layer(&self) -> &'static str {
        "netlist"
    }
    fn description(&self) -> &'static str {
        "fanout outlier: reader count far above both the absolute floor and the design average"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.net005"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        let mut readers = vec![0u32; n.num_nets()];
        for g in n.gates() {
            for &inp in &g.inputs {
                readers[inp.index()] += 1;
            }
        }
        for f in n.flops() {
            readers[f.d.index()] += 1;
        }
        let read_nets: Vec<u32> = readers.iter().copied().filter(|&r| r > 0).collect();
        if read_nets.is_empty() {
            return;
        }
        let avg = read_nets.iter().map(|&r| r as f64).sum::<f64>() / read_nets.len() as f64;
        let threshold =
            (ctx.config.fanout_warn_floor as f64).max(avg * ctx.config.fanout_warn_factor);
        for (i, &r) in readers.iter().enumerate() {
            if r as f64 > threshold {
                let id = NetId::new(i as u32);
                out.push(self.finding(
                    Span::Net(id),
                    format!(
                        "net '{}' has {} readers (design average {:.1}, threshold {:.0})",
                        n.net(id).name,
                        r,
                        avg,
                        threshold
                    ),
                ));
            }
        }
    }
}

/// `NET006` — block-level combinational dependencies must be acyclic.
///
/// The generator only exports bus nets from earlier blocks to later ones,
/// so a cycle between blocks means a combinational path crosses block
/// boundaries in both directions — the staged noise-aware flow then can't
/// keep an untargeted block quiet, because its logic sits inside another
/// block's launch path.
#[derive(Debug)]
pub struct CrossBlockCycle;

impl Rule for CrossBlockCycle {
    fn id(&self) -> &'static str {
        "NET006"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "netlist"
    }
    fn description(&self) -> &'static str {
        "combinational paths cross block boundaries in a cycle between blocks"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.net006"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        let nb = n.blocks().len();
        if nb < 2 {
            return;
        }
        // Block-level digraph over combinational arcs only: an edge a→b
        // when a gate in block b reads a net driven by a gate in block a.
        let mut driving_block = vec![None; n.num_nets()];
        for g in n.gates() {
            driving_block[g.output.index()] = Some(g.block);
        }
        let mut edges = vec![false; nb * nb];
        for g in n.gates() {
            for &inp in &g.inputs {
                if let Some(src) = driving_block[inp.index()] {
                    if src != g.block {
                        edges[src.index() * nb + g.block.index()] = true;
                    }
                }
            }
        }
        // Kahn over blocks; whatever survives sits in a cycle.
        let mut indeg = vec![0u32; nb];
        for a in 0..nb {
            for b in 0..nb {
                if edges[a * nb + b] {
                    indeg[b] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..nb).filter(|&b| indeg[b] == 0).collect();
        let mut remaining = nb;
        while let Some(a) = queue.pop() {
            remaining -= 1;
            for b in 0..nb {
                if edges[a * nb + b] {
                    indeg[b] -= 1;
                    if indeg[b] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        if remaining == 0 {
            return;
        }
        for (b, &d) in indeg.iter().enumerate() {
            if d > 0 {
                let id = scap_netlist::BlockId::new(b as u32);
                out.push(self.finding(
                    Span::Block(id),
                    format!(
                        "block '{}' is part of a cross-block combinational cycle",
                        n.block(id).name
                    ),
                ));
            }
        }
    }
}
