//! Power-grid-layer rules (`GRID00x`).
//!
//! All three rules iterate over every [`MeshSpec`](crate::MeshSpec) in the
//! context — for the case study that is the VDD and the VSS mesh — and
//! re-derive connectivity and the stamped matrix independently of the CG
//! solver.

use crate::context::{LintContext, MeshSpec};
use crate::diag::{Finding, Severity, Span};
use crate::registry::Rule;
use std::collections::BTreeMap;

/// `GRID001` — every mesh node must reach at least one pad through
/// branches of positive conductance; an island's IR-drop is undefined
/// (the pinned solve would report whatever the reduced system happens to
/// contain for it).
#[derive(Debug)]
pub struct PadReachability;

impl PadReachability {
    fn check(&self, mesh: &MeshSpec, out: &mut Vec<Finding>) {
        if mesh.num_nodes == 0 {
            return;
        }
        if !mesh.pads.iter().any(|&p| p) {
            out.push(self.finding(
                Span::GridNode(mesh.kind, 0),
                format!("{} mesh has no pads at all", mesh.kind.label()),
            ));
            return;
        }
        // Union-find over conducting branches.
        let mut parent: Vec<u32> = (0..mesh.num_nodes as u32).collect();
        fn root(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(a, b, g) in &mesh.branches {
            if !g.is_finite() || g <= 0.0 {
                continue; // non-conducting; GRID002 reports the value
            }
            if (a as usize) < mesh.num_nodes && (b as usize) < mesh.num_nodes {
                let (ra, rb) = (root(&mut parent, a), root(&mut parent, b));
                parent[ra as usize] = rb;
            }
        }
        let mut pad_component = vec![false; mesh.num_nodes];
        for (i, &is_pad) in mesh.pads.iter().enumerate() {
            if is_pad {
                let r = root(&mut parent, i as u32);
                pad_component[r as usize] = true;
            }
        }
        // One finding per island, anchored at its smallest node id.
        let mut island_size: BTreeMap<u32, usize> = BTreeMap::new();
        for i in 0..mesh.num_nodes as u32 {
            let r = root(&mut parent, i);
            if !pad_component[r as usize] {
                *island_size.entry(r).or_insert(0) += 1;
            }
        }
        let mut island_anchor: BTreeMap<u32, u32> = BTreeMap::new();
        for i in 0..mesh.num_nodes as u32 {
            let r = root(&mut parent, i);
            if !pad_component[r as usize] {
                island_anchor.entry(r).or_insert(i);
            }
        }
        for (r, anchor) in island_anchor {
            out.push(self.finding(
                Span::GridNode(mesh.kind, anchor),
                format!(
                    "{} mesh island of {} node(s) cannot reach any pad",
                    mesh.kind.label(),
                    island_size[&r]
                ),
            ));
        }
    }
}

impl Rule for PadReachability {
    fn id(&self) -> &'static str {
        "GRID001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "grid"
    }
    fn description(&self) -> &'static str {
        "mesh island: a grid node cannot reach any supply pad (on either the VDD or VSS mesh)"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.grid001"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        for mesh in &ctx.meshes {
            self.check(mesh, out);
        }
    }
}

/// `GRID002` — every branch conductance must be finite and positive, and
/// every branch endpoint in range.
#[derive(Debug)]
pub struct ConductanceSanity;

impl Rule for ConductanceSanity {
    fn id(&self) -> &'static str {
        "GRID002"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "grid"
    }
    fn description(&self) -> &'static str {
        "non-positive, non-finite or out-of-range mesh branch"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.grid002"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        for mesh in &ctx.meshes {
            for &(a, b, g) in &mesh.branches {
                if a as usize >= mesh.num_nodes || b as usize >= mesh.num_nodes {
                    out.push(self.finding(
                        Span::GridNode(mesh.kind, a.min(b)),
                        format!(
                            "{} branch ({a}, {b}) references a node outside the {}-node mesh",
                            mesh.kind.label(),
                            mesh.num_nodes
                        ),
                    ));
                } else if !g.is_finite() || g <= 0.0 {
                    out.push(self.finding(
                        Span::GridNode(mesh.kind, a),
                        format!(
                            "{} branch ({a}, {b}) has conductance {g} S",
                            mesh.kind.label()
                        ),
                    ));
                }
            }
        }
    }
}

/// `GRID003` — the assembled reduced Laplacian must be symmetric with a
/// positive, (weakly) dominant diagonal: the preconditions Jacobi-CG
/// needs to converge to the right answer.
#[derive(Debug)]
pub struct MatrixShape;

impl MatrixShape {
    fn check(&self, mesh: &MeshSpec, out: &mut Vec<Finding>) {
        let Some((dim, triplets)) = &mesh.matrix else {
            return;
        };
        let dim = *dim;
        let mut entries: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        for &(r, c, v) in triplets {
            if r as usize >= dim || c as usize >= dim {
                out.push(self.finding(
                    Span::GridNode(mesh.kind, r),
                    format!(
                        "{} matrix entry ({r}, {c}) outside the {dim}-row system",
                        mesh.kind.label()
                    ),
                ));
                continue;
            }
            if !v.is_finite() {
                out.push(self.finding(
                    Span::GridNode(mesh.kind, r),
                    format!("{} matrix entry ({r}, {c}) is {v}", mesh.kind.label()),
                ));
            }
            *entries.entry((r, c)).or_insert(0.0) += v;
        }
        // Symmetry: every (r, c) must match (c, r).
        for (&(r, c), &v) in &entries {
            if r >= c {
                continue;
            }
            let mirror = entries.get(&(c, r)).copied().unwrap_or(0.0);
            let scale = v.abs().max(mirror.abs()).max(1e-12);
            if (v - mirror).abs() > 1e-9 * scale {
                out.push(self.finding(
                    Span::GridNode(mesh.kind, r),
                    format!(
                        "{} matrix is asymmetric at ({r}, {c}): {v} vs {mirror}",
                        mesh.kind.label()
                    ),
                ));
            }
        }
        // Positive diagonal and weak row dominance.
        for row in 0..dim as u32 {
            let diag = entries.get(&(row, row)).copied().unwrap_or(0.0);
            if diag <= 0.0 {
                out.push(self.finding(
                    Span::GridNode(mesh.kind, row),
                    format!(
                        "{} matrix row {row} has non-positive diagonal {diag}",
                        mesh.kind.label()
                    ),
                ));
                continue;
            }
            let off: f64 = entries
                .range((row, 0)..=(row, u32::MAX))
                .filter(|(&(_, c), _)| c != row)
                .map(|(_, &v)| v.abs())
                .sum();
            if off > diag * (1.0 + 1e-9) {
                out.push(self.finding(
                    Span::GridNode(mesh.kind, row),
                    format!(
                        "{} matrix row {row} is not diagonally dominant: |off-diag| {off} > diag {diag}",
                        mesh.kind.label()
                    ),
                ));
            }
        }
    }
}

impl Rule for MatrixShape {
    fn id(&self) -> &'static str {
        "GRID003"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "grid"
    }
    fn description(&self) -> &'static str {
        "stamped matrix not symmetric / diagonally dominant — CG preconditions violated"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.grid003"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        for mesh in &ctx.meshes {
            self.check(mesh, out);
        }
    }
}
