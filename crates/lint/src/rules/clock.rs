//! Clock/timing-layer rules (`CLK00x`).

use crate::context::LintContext;
use crate::diag::{Finding, Severity, Span};
use crate::registry::Rule;
use scap_netlist::ClockId;

/// `CLK001` — the clock tree must be a forest with parents stored before
/// children; `arrivals_with_drop` accumulates delays in one forward pass
/// and silently mis-times every sink below a violation.
#[derive(Debug)]
pub struct TreeStructure;

impl Rule for TreeStructure {
    fn id(&self) -> &'static str {
        "CLK001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "clock"
    }
    fn description(&self) -> &'static str {
        "clock-tree cycle: a buffer's parent does not precede it (forward-pass order broken)"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.clk001"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(tree) = ctx.clock_tree else { return };
        let len = tree.buffers().len() as u32;
        for (i, b) in tree.buffers().iter().enumerate() {
            let i = i as u32;
            if let Some(p) = b.parent {
                if p >= len {
                    out.push(self.finding(
                        Span::Buffer(i),
                        format!("buffer {i} has out-of-range parent {p} (tree has {len})"),
                    ));
                } else if p >= i {
                    out.push(self.finding(
                        Span::Buffer(i),
                        format!(
                            "buffer {i} has parent {p} at or after itself — cycle or reordered tree"
                        ),
                    ));
                }
            }
        }
    }
}

/// `CLK002` — every clock-buffer delay must be finite and non-negative;
/// `arrivals_with_drop` trusts them without checks. (Gate and flop
/// clock-to-Q delays are the timing layer's `TIM002`.)
#[derive(Debug)]
pub struct DelaySanity;

impl Rule for DelaySanity {
    fn id(&self) -> &'static str {
        "CLK002"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "clock"
    }
    fn description(&self) -> &'static str {
        "negative or non-finite clock-buffer delay"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.clk002"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let bad = |v: f64| !v.is_finite() || v < 0.0;
        if let Some(tree) = ctx.clock_tree {
            for (i, b) in tree.buffers().iter().enumerate() {
                if bad(b.delay_ps) {
                    out.push(self.finding(
                        Span::Buffer(i as u32),
                        format!("clock buffer {i} has delay {} ps", b.delay_ps),
                    ));
                }
            }
        }
    }
}

/// `CLK003` — clock-domain frequencies must be sane: finite, positive,
/// and within the range the picosecond period math can represent.
#[derive(Debug)]
pub struct DomainPeriodSanity;

impl Rule for DomainPeriodSanity {
    fn id(&self) -> &'static str {
        "CLK003"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "clock"
    }
    fn description(&self) -> &'static str {
        "clock domain with a non-finite, non-positive or unrepresentable frequency"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.clk003"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        for (i, clk) in ctx.netlist.clocks().iter().enumerate() {
            let id = ClockId::new(i as u32);
            let f = clk.frequency_hz;
            if !f.is_finite() || f <= 0.0 {
                out.push(self.finding(
                    Span::Clock(id),
                    format!("clock '{}' has frequency {f} Hz", clk.name),
                ));
            } else if !(1.0e3..=1.0e12).contains(&f) {
                // Outside 1 kHz … 1 THz the period in ps is degenerate
                // (sub-picosecond or larger than any test window).
                out.push(self.finding(
                    Span::Clock(id),
                    format!(
                        "clock '{}' frequency {f:.3e} Hz is outside the representable 1 kHz-1 THz range",
                        clk.name
                    ),
                ));
            }
        }
    }
}
