//! The shipped rule set, one module per layer.

pub mod clock;
pub mod grid;
pub mod netlist;
pub mod pattern;
pub mod scan;
pub mod timing;
