//! Static-timing-layer rules (`TIM00x`).
//!
//! The first lint layer that looks at *analysis results* rather than
//! structure: `TIM001`/`TIM004`/`TIM005` read the precomputed
//! [`TimingSpec`](crate::context::TimingSpec) (nominal and IR-drop-derated
//! slacks from `scap_timing::SlackSta`), `TIM002` validates the raw
//! [`DelayAnnotation`](scap_timing::DelayAnnotation) those analyses trust,
//! and `TIM003` flags endpoints no launch transition can ever reach.

use crate::context::LintContext;
use crate::diag::{Finding, Severity, Span};
use crate::registry::Rule;
use scap_netlist::{FlopId, GateId};

/// `TIM001` — no endpoint may have negative *nominal* slack: the design
/// fails timing before any noise is considered, so every measured
/// "noise-induced" failure on such a path is an artifact.
#[derive(Debug)]
pub struct NominalSlack;

impl Rule for NominalSlack {
    fn id(&self) -> &'static str {
        "TIM001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "timing"
    }
    fn description(&self) -> &'static str {
        "endpoint with negative nominal slack (fails timing before any supply noise)"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.tim001"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(spec) = &ctx.sta else { return };
        for &(flop, slack) in &spec.nominal_slack_ps {
            if slack < 0.0 {
                out.push(self.finding(
                    Span::Flop(flop),
                    format!("endpoint flop {flop:?} has nominal slack {slack:.1} ps"),
                ));
            }
        }
    }
}

/// `TIM002` — every annotated cell delay must be finite and non-negative:
/// gate rise/fall and flop clock-to-Q. STA, the event simulator and the
/// SCAP window math all trust these without checks. (Clock-*buffer*
/// delays are the clock layer's `CLK002`.)
#[derive(Debug)]
pub struct AnnotationDelaySanity;

impl Rule for AnnotationDelaySanity {
    fn id(&self) -> &'static str {
        "TIM002"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "timing"
    }
    fn description(&self) -> &'static str {
        "negative or non-finite annotated delay (gate rise/fall or flop clock-to-Q)"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.tim002"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(ann) = ctx.annotation else { return };
        let bad = |v: f64| !v.is_finite() || v < 0.0;
        for i in 0..ann.num_gates() {
            let id = GateId::new(i as u32);
            let (r, f) = (ann.gate_rise_ps(id), ann.gate_fall_ps(id));
            if bad(r) || bad(f) {
                out.push(self.finding(
                    Span::Gate(id),
                    format!("gate {id:?} has rise {r} ps / fall {f} ps"),
                ));
            }
        }
        for i in 0..ann.num_flops() {
            let id = FlopId::new(i as u32);
            let d = ann.flop_clk_to_q_ps(id);
            if bad(d) {
                out.push(
                    self.finding(Span::Flop(id), format!("flop {id:?} has clock-to-Q {d} ps")),
                );
            }
        }
    }
}

/// `TIM003` — every endpoint must be reachable from at least one launch
/// flop or primary input; an endpoint fed only by constants can never
/// capture a transition, so transition faults in its cone are dead weight
/// in the fault universe.
#[derive(Debug)]
pub struct EndpointReachability;

impl Rule for EndpointReachability {
    fn id(&self) -> &'static str {
        "TIM003"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn layer(&self) -> &'static str {
        "timing"
    }
    fn description(&self) -> &'static str {
        "endpoint unreachable from any launch flop or primary input (constants only)"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.tim003"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(spec) = &ctx.sta else { return };
        for &flop in &spec.unreachable_endpoints {
            out.push(self.finding(
                Span::Flop(flop),
                format!("endpoint flop {flop:?} is fed only by constants — no launch can reach it"),
            ));
        }
    }
}

/// `TIM004` — an endpoint whose IR-drop-*derated* slack falls below the
/// configured margin still passes nominal signoff but is one droop away
/// from the paper's "false failure" region; it should be screened or
/// re-timed.
#[derive(Debug)]
pub struct DeratedSlackMargin;

impl Rule for DeratedSlackMargin {
    fn id(&self) -> &'static str {
        "TIM004"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn layer(&self) -> &'static str {
        "timing"
    }
    fn description(&self) -> &'static str {
        "endpoint slack under IR-drop derating below the configured margin"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.tim004"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(spec) = &ctx.sta else { return };
        let Some(derated) = &spec.derated_slack_ps else {
            return;
        };
        let margin = ctx.config.derated_slack_margin_ps;
        for &(flop, slack) in derated {
            if slack < margin {
                out.push(self.finding(
                    Span::Flop(flop),
                    format!(
                        "endpoint flop {flop:?} has derated slack {slack:.1} ps \
                         (margin {margin:.1} ps)"
                    ),
                ));
            }
        }
    }
}

/// `TIM005` — the domain period must cover the *derated* critical path:
/// if the worst path under IR-drop-scaled delays is longer than the
/// tester cycle, at-speed capture fails structurally (every pattern
/// through that path is a false failure), not per-pattern.
#[derive(Debug)]
pub struct PeriodCoversDeratedCritical;

impl Rule for PeriodCoversDeratedCritical {
    fn id(&self) -> &'static str {
        "TIM005"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "timing"
    }
    fn description(&self) -> &'static str {
        "clock-domain period shorter than the IR-drop-derated critical path"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.tim005"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(spec) = &ctx.sta else { return };
        let Some(critical) = spec.derated_critical_path_ps else {
            return;
        };
        if critical > spec.period_ps {
            out.push(self.finding(
                Span::Clock(spec.clock),
                format!(
                    "derated critical path {critical:.1} ps exceeds the {:.1} ps domain period",
                    spec.period_ps
                ),
            ));
        }
    }
}
