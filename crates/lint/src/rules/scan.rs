//! Scan-layer rules (`SCAN00x`).
//!
//! All four rules read the [`ScanRole`](scap_netlist::ScanRole)s stored
//! on the flops, so they apply to any design that went through
//! `insert_scan` (or claims to have). They no-op on a pre-scan netlist
//! (no flop carries a role).

use crate::context::LintContext;
use crate::diag::{Finding, Severity, Span};
use crate::registry::Rule;
use scap_netlist::{ClockEdge, ClockId, FlopId, Netlist};

/// `(chain, members)` with members in position order, derived from roles.
fn chains_of(n: &Netlist) -> Vec<(u16, Vec<FlopId>)> {
    let mut chains: Vec<(u16, Vec<FlopId>)> = Vec::new();
    for (i, f) in n.flops().iter().enumerate() {
        let Some(role) = f.scan else { continue };
        let id = FlopId::new(i as u32);
        match chains.iter_mut().find(|(c, _)| *c == role.chain) {
            Some((_, members)) => members.push(id),
            None => chains.push((role.chain, vec![id])),
        }
    }
    chains.sort_by_key(|(c, _)| *c);
    for (_, members) in &mut chains {
        members.sort_by_key(|&f| n.flop(f).scan.map(|r| r.position));
    }
    chains
}

fn scan_inserted(n: &Netlist) -> bool {
    n.flops().iter().any(|f| f.scan.is_some())
}

/// `SCAN001` — chain positions must be dense: exactly `0..len`, no
/// duplicates, no gaps. A broken chain shifts every downstream load bit.
#[derive(Debug)]
pub struct ChainContinuity;

impl Rule for ChainContinuity {
    fn id(&self) -> &'static str {
        "SCAN001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "scan"
    }
    fn description(&self) -> &'static str {
        "broken chain: positions are not a dense 0..len sequence (duplicate or gap)"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.scan001"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        for (chain, members) in chains_of(ctx.netlist) {
            let mut positions: Vec<u32> = members
                .iter()
                .filter_map(|&f| ctx.netlist.flop(f).scan)
                .map(|r| r.position)
                .collect();
            positions.sort_unstable();
            for (expect, &got) in positions.iter().enumerate() {
                if expect as u32 != got {
                    let what = if positions[..expect].last() == Some(&got) {
                        format!("duplicate position {got}")
                    } else {
                        format!("gap before position {got} (expected {expect})")
                    };
                    out.push(self.finding(
                        Span::Chain(chain),
                        format!("chain {chain} is discontinuous: {what}"),
                    ));
                    break;
                }
            }
        }
    }
}

/// `SCAN002` — chains serving the same `(clock, edge)` group should be
/// balanced; one long chain sets the shift time of the whole test.
#[derive(Debug)]
pub struct ChainBalance;

impl Rule for ChainBalance {
    fn id(&self) -> &'static str {
        "SCAN002"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn layer(&self) -> &'static str {
        "scan"
    }
    fn description(&self) -> &'static str {
        "unbalanced chain: far longer than the average of its clock-domain group"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.scan002"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        // Group chains by the (clock, edge) of their first member; mixed
        // chains are SCAN003's problem, not a balance problem.
        type DomainGroup = ((ClockId, ClockEdge), Vec<(u16, usize)>);
        let chains = chains_of(n);
        let mut groups: Vec<DomainGroup> = Vec::new();
        for (chain, members) in &chains {
            let first = n.flop(members[0]);
            let key = (first.clock, first.edge);
            let entry = (*chain, members.len());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, list)) => list.push(entry),
                None => groups.push((key, vec![entry])),
            }
        }
        for (_, list) in groups {
            if list.len() < 2 {
                continue;
            }
            let avg = list.iter().map(|&(_, l)| l as f64).sum::<f64>() / list.len() as f64;
            let threshold = ctx.config.balance_factor * avg + 1.0;
            for (chain, len) in list {
                if len as f64 > threshold {
                    out.push(self.finding(
                        Span::Chain(chain),
                        format!(
                            "chain {chain} holds {len} cells; its clock-domain group averages {avg:.1}"
                        ),
                    ));
                }
            }
        }
    }
}

/// `SCAN003` — a chain must hold flops of exactly one clock domain and
/// edge, so one shift-clock waveform drives the whole chain.
#[derive(Debug)]
pub struct ChainDomainConsistency;

impl Rule for ChainDomainConsistency {
    fn id(&self) -> &'static str {
        "SCAN003"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "scan"
    }
    fn description(&self) -> &'static str {
        "mixed chain: flops of more than one clock domain or edge share a chain"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.scan003"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        for (chain, members) in chains_of(n) {
            let mut kinds: Vec<(ClockId, ClockEdge)> = members
                .iter()
                .map(|&f| (n.flop(f).clock, n.flop(f).edge))
                .collect();
            kinds.sort_unstable_by_key(|&(c, e)| (c, e == ClockEdge::Falling));
            kinds.dedup();
            if kinds.len() > 1 {
                let names: Vec<String> = kinds
                    .iter()
                    .map(|&(c, e)| {
                        format!(
                            "{}/{}",
                            n.clock(c).name,
                            match e {
                                ClockEdge::Rising => "rise",
                                ClockEdge::Falling => "fall",
                            }
                        )
                    })
                    .collect();
                out.push(self.finding(
                    Span::Chain(chain),
                    format!("chain {chain} mixes {}", names.join(", ")),
                ));
            }
        }
    }
}

/// `SCAN004` — in a full-scan design every flop must sit in a chain; a
/// flop without a role is unreachable from any scan-out and its state can
/// be neither loaded nor observed.
#[derive(Debug)]
pub struct UnscannedFlop;

impl Rule for UnscannedFlop {
    fn id(&self) -> &'static str {
        "SCAN004"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "scan"
    }
    fn description(&self) -> &'static str {
        "non-scan flop in a scanned design: not reachable from any scan-out"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.scan004"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let n = ctx.netlist;
        if !scan_inserted(n) {
            return;
        }
        for (i, f) in n.flops().iter().enumerate() {
            if f.scan.is_none() {
                let id = FlopId::new(i as u32);
                out.push(self.finding(
                    Span::Flop(id),
                    format!("flop '{}' has no scan role", f.name),
                ));
            }
        }
    }
}
