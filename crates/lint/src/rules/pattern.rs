//! Pattern-layer rules (`PAT00x`).

use crate::context::LintContext;
use crate::diag::{Finding, Severity, Span};
use crate::registry::Rule;

/// `PAT001` — every pattern must be fully specified and consistent with
/// its pre-fill source: same widths as the netlist, a filled form for
/// every source, and every care bit preserved by fill. A violation means
/// an X (or a silently flipped care bit) reaches the tester.
#[derive(Debug)]
pub struct FillConsistency;

impl Rule for FillConsistency {
    fn id(&self) -> &'static str {
        "PAT001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "pattern"
    }
    fn description(&self) -> &'static str {
        "residual X after fill: pattern without a filled form, width mismatch, or dropped care bit"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.pat001"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(set) = ctx.patterns else { return };
        let n = ctx.netlist;
        let (flops, pis) = (n.num_flops(), n.primary_inputs().len());
        if set.source.len() != set.filled.len() {
            out.push(self.finding(
                Span::Design,
                format!(
                    "{} source pattern(s) but {} filled — X bits of the unfilled tail reach the tester",
                    set.source.len(),
                    set.filled.len()
                ),
            ));
        }
        for (p, filled) in set.filled.iter().enumerate() {
            if filled.load.len() != flops || filled.pi.len() != pis {
                out.push(self.finding(
                    Span::Pattern(p),
                    format!(
                        "filled widths {}x{} do not match the design's {flops} flops / {pis} PIs",
                        filled.load.len(),
                        filled.pi.len()
                    ),
                ));
                continue;
            }
            let Some(source) = set.source.get(p) else {
                continue;
            };
            if source.load.len() != flops || source.pi.len() != pis {
                out.push(self.finding(
                    Span::Pattern(p),
                    format!(
                        "source widths {}x{} do not match the design's {flops} flops / {pis} PIs",
                        source.load.len(),
                        source.pi.len()
                    ),
                ));
                continue;
            }
            let dropped_load = source
                .load
                .iter()
                .zip(&filled.load)
                .filter(|(s, &f)| s.to_bool().is_some_and(|b| b != f))
                .count();
            let dropped_pi = source
                .pi
                .iter()
                .zip(&filled.pi)
                .filter(|(s, &f)| s.to_bool().is_some_and(|b| b != f))
                .count();
            if dropped_load + dropped_pi > 0 {
                out.push(self.finding(
                    Span::Pattern(p),
                    format!(
                        "fill changed {} care bit(s) ({} load, {} PI)",
                        dropped_load + dropped_pi,
                        dropped_load,
                        dropped_pi
                    ),
                ));
            }
        }
    }
}

/// `PAT002` — blocks a staged flow declared quiet must actually be quiet:
/// the aggregate ones-fraction of their scan-load bits over the stage's
/// patterns stays under the declared tolerance (fill-0 keeps untargeted
/// blocks near all-zero, which is what bounds their launch-window SCAP).
#[derive(Debug)]
pub struct QuietBlocks;

impl Rule for QuietBlocks {
    fn id(&self) -> &'static str {
        "PAT002"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "pattern"
    }
    fn description(&self) -> &'static str {
        "quiet-block violation: toggles loaded into a block the staged flow declared quiet"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.pat002"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let (Some(set), Some(quiet)) = (ctx.patterns, &ctx.quiet) else {
            return;
        };
        let n = ctx.netlist;
        for stage in &quiet.stages {
            let (start, end) = stage.range;
            let end = end.min(set.filled.len());
            if start >= end || end - start < quiet.min_patterns {
                continue;
            }
            for &block in &stage.quiet_blocks {
                let cells: Vec<usize> = n.flops_in_block(block).map(|f| f.index()).collect();
                if cells.is_empty() {
                    continue;
                }
                let mut ones = 0usize;
                for filled in &set.filled[start..end] {
                    ones += cells
                        .iter()
                        .filter(|&&c| filled.load.get(c).copied().unwrap_or(false))
                        .count();
                }
                let fraction = ones as f64 / (cells.len() * (end - start)) as f64;
                if fraction > quiet.max_ones_fraction {
                    out.push(self.finding(
                        Span::Block(block),
                        format!(
                            "'{}' ({} patterns) loads {:.1} % ones into quiet block '{}' (tolerance {:.0} %)",
                            stage.label,
                            end - start,
                            100.0 * fraction,
                            n.block(block).name,
                            100.0 * quiet.max_ones_fraction
                        ),
                    ));
                }
            }
        }
    }
}

/// `PAT003` — SCAP-screen consistency: a flow that declares its output
/// screened must not emit a pattern whose per-block SCAP exceeds the
/// block's threshold. (The paper's procedure drops or regenerates such
/// patterns; emitting one re-introduces the very noise event the screen
/// exists to prevent.)
#[derive(Debug)]
pub struct ScreenConsistency;

impl Rule for ScreenConsistency {
    fn id(&self) -> &'static str {
        "PAT003"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn layer(&self) -> &'static str {
        "pattern"
    }
    fn description(&self) -> &'static str {
        "screened set emits a pattern above a block's SCAP threshold"
    }
    fn metric(&self) -> &'static str {
        "lint.rule.pat003"
    }
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>) {
        let Some(screen) = &ctx.screen else { return };
        let n = ctx.netlist;
        for &p in &screen.emitted {
            let Some(row) = screen.pattern_block_mw.get(p) else {
                out.push(self.finding(
                    Span::Pattern(p),
                    format!(
                        "emitted pattern {p} has no SCAP measurement (only {} measured)",
                        screen.pattern_block_mw.len()
                    ),
                ));
                continue;
            };
            for (b, &mw) in row.iter().enumerate() {
                let Some(&threshold) = screen.thresholds_mw.get(b) else {
                    continue;
                };
                if mw > threshold * (1.0 + 1e-9) {
                    let name = n
                        .blocks()
                        .get(b)
                        .map(|blk| blk.name.as_str())
                        .unwrap_or("?");
                    out.push(self.finding(
                        Span::Pattern(p),
                        format!(
                            "emitted pattern {p} draws {mw:.3} mW in block '{name}', above the {threshold:.3} mW screen threshold"
                        ),
                    ));
                }
            }
        }
    }
}
