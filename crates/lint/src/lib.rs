//! Cross-layer design-rule checker (DRC) for the noise-aware ATPG flow.
//!
//! The paper's flow rests on structural preconditions that nothing used
//! to check after construction: scan chains must be continuous and
//! per-clock-domain, "quiet" blocks really 0-filled, the VDD/VSS meshes
//! fully pad-connected, the stamped Laplacian symmetric and dominant.
//! This crate makes each of those an explicit **rule** with a stable ID
//! (`NET001` … `TIM005`), a severity, and a [`Span`] naming the offending
//! object, so a bad generator or refactor fails as a diagnostic instead
//! of as wrong Table-3 numbers.
//!
//! * [`LintContext`] — the input bundle; everything beyond the netlist is
//!   optional, and rules skip absent layers.
//! * [`run_all`] — runs the full registry in parallel (via `scap-exec`)
//!   with per-rule counters and span timers (via `scap-obs`).
//! * [`LintReport`] — findings in stable order plus per-rule stats, with
//!   text and JSON rendering.
//!
//! # Example
//!
//! ```
//! use scap_netlist::{CellKind, NetlistBuilder};
//!
//! # fn main() -> Result<(), scap_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("d");
//! let blk = b.add_block("B1");
//! let a = b.add_primary_input("a");
//! let y = b.add_net("y");
//! b.add_gate(CellKind::Inv, &[a], y, blk)?;
//! b.add_primary_output(y);
//! let netlist = b.finish()?;
//!
//! let report = scap_lint::run_all(&scap_lint::LintContext::new(&netlist));
//! assert_eq!(report.errors(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod context;
mod diag;
mod registry;
pub mod rules;

pub use context::{
    LintConfig, LintContext, MeshSpec, QuietSpec, QuietStage, ScreenSpec, TimingSpec,
};
pub use diag::{Finding, LintReport, MeshKind, RuleStat, Severity, Span};
pub use registry::{all_rules, rules_matching, run_all, run_rules, Rule};
