//! The rule trait, the registry of all shipped rules, and the parallel
//! runner.

use crate::context::LintContext;
use crate::diag::{Finding, LintReport, RuleStat, Severity};
use crate::rules;
use scap_exec::Executor;
use std::time::Instant;

/// One design rule.
///
/// Rules are pure functions of the [`LintContext`]: they push findings
/// and must not mutate shared state, so the registry can run them in
/// parallel. A rule whose input layer is absent from the context (no
/// clock tree, no meshes, …) produces no findings.
pub trait Rule: Send + Sync {
    /// Stable identifier, e.g. `"NET001"`.
    fn id(&self) -> &'static str;
    /// Severity of every finding this rule produces.
    fn severity(&self) -> Severity;
    /// Which layer the rule checks: `netlist`, `scan`, `clock`, `timing`,
    /// `grid` or `pattern`.
    fn layer(&self) -> &'static str;
    /// One-line description for catalogs and `--help`-style output.
    fn description(&self) -> &'static str;
    /// Metric name for the per-rule span timer (must be `'static` for the
    /// obs interner), e.g. `"lint.rule.net001"`.
    fn metric(&self) -> &'static str;
    /// Runs the check, pushing findings.
    fn run(&self, ctx: &LintContext, out: &mut Vec<Finding>);

    /// Convenience constructor stamping this rule's id and severity.
    fn finding(&self, span: crate::diag::Span, message: String) -> Finding {
        Finding::new(self.id(), self.severity(), span, message)
    }
}

/// Every shipped rule, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(rules::netlist::FloatingNet),
        Box::new(rules::netlist::MultiDrivenNet),
        Box::new(rules::netlist::CombinationalLoop),
        Box::new(rules::netlist::UnreachableGate),
        Box::new(rules::netlist::FanoutOutlier),
        Box::new(rules::netlist::CrossBlockCycle),
        Box::new(rules::scan::ChainContinuity),
        Box::new(rules::scan::ChainBalance),
        Box::new(rules::scan::ChainDomainConsistency),
        Box::new(rules::scan::UnscannedFlop),
        Box::new(rules::clock::TreeStructure),
        Box::new(rules::clock::DelaySanity),
        Box::new(rules::clock::DomainPeriodSanity),
        Box::new(rules::timing::NominalSlack),
        Box::new(rules::timing::AnnotationDelaySanity),
        Box::new(rules::timing::EndpointReachability),
        Box::new(rules::timing::DeratedSlackMargin),
        Box::new(rules::timing::PeriodCoversDeratedCritical),
        Box::new(rules::grid::PadReachability),
        Box::new(rules::grid::ConductanceSanity),
        Box::new(rules::grid::MatrixShape),
        Box::new(rules::pattern::FillConsistency),
        Box::new(rules::pattern::QuietBlocks),
        Box::new(rules::pattern::ScreenConsistency),
    ]
}

/// Runs every registered rule against `ctx`, in parallel, and returns the
/// report with findings in stable order.
pub fn run_all(ctx: &LintContext) -> LintReport {
    run_rules(ctx, all_rules())
}

/// The registered rules whose id starts with `prefix` (case-insensitive),
/// e.g. `"TIM"` for the timing layer or `"TIM004"` for one rule. Empty
/// when nothing matches — callers should treat that as a usage error.
pub fn rules_matching(prefix: &str) -> Vec<Box<dyn Rule>> {
    let prefix = prefix.to_ascii_uppercase();
    all_rules()
        .into_iter()
        .filter(|r| r.id().starts_with(&prefix))
        .collect()
}

/// Runs an explicit rule list (used by focused tests).
pub fn run_rules(ctx: &LintContext, rules: Vec<Box<dyn Rule>>) -> LintReport {
    let per_rule: Vec<(RuleStat, Vec<Finding>)> = Executor::new().parallel_map(&rules, |rule| {
        let _span = scap_obs::Span::enter(scap_obs::span_stats(rule.metric()));
        let started = Instant::now();
        let mut found = Vec::new();
        rule.run(ctx, &mut found);
        scap_obs::counter!("lint.rules_run").incr();
        scap_obs::counter!("lint.findings").add(found.len() as u64);
        let stat = RuleStat {
            rule: rule.id(),
            findings: found.len(),
            micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        };
        (stat, found)
    });
    let mut stats = Vec::with_capacity(per_rule.len());
    let mut findings = Vec::new();
    for (stat, found) in per_rule {
        stats.push(stat);
        findings.extend(found);
    }
    stats.sort_by_key(|s| s.rule);
    findings.sort_by(|a, b| (a.rule, &a.span, &a.message).cmp(&(b.rule, &b.span, &b.message)));
    LintReport {
        findings,
        rules: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rule_ids_are_unique_and_well_formed() {
        let rules = all_rules();
        let ids: HashSet<&str> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), rules.len(), "duplicate rule id");
        for r in &rules {
            assert!(
                r.id().len() >= 6 && r.id().chars().rev().take(3).all(|c| c.is_ascii_digit()),
                "bad id {}",
                r.id()
            );
            assert!(r.metric().starts_with("lint.rule."), "{}", r.metric());
            assert!(!r.description().is_empty());
        }
    }

    #[test]
    fn registry_covers_all_six_layers() {
        let layers: HashSet<&str> = all_rules().iter().map(|r| r.layer()).collect();
        for expected in ["netlist", "scan", "clock", "timing", "grid", "pattern"] {
            assert!(layers.contains(expected), "missing layer {expected}");
        }
    }

    #[test]
    fn rules_matching_filters_by_prefix() {
        let tim = rules_matching("tim");
        assert_eq!(tim.len(), 5);
        assert!(tim.iter().all(|r| r.id().starts_with("TIM")));
        assert_eq!(rules_matching("TIM004").len(), 1);
        assert!(rules_matching("ZZZ").is_empty());
    }
}
