//! Diagnostics core: severities, spans, findings and the report.

use scap_netlist::{BlockId, ClockId, FlopId, GateId, NetId};
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never affects the exit code.
    Info,
    /// Suspicious but not provably broken; fails the gate under
    /// `--deny warn`.
    Warn,
    /// A violated invariant the flow depends on.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which of the two supply meshes a grid finding refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MeshKind {
    /// The VDD (supply) network.
    Vdd,
    /// The VSS (ground) network.
    Vss,
}

impl MeshKind {
    /// Upper-case mesh name.
    pub fn label(self) -> &'static str {
        match self {
            MeshKind::Vdd => "VDD",
            MeshKind::Vss => "VSS",
        }
    }
}

/// What a finding points at: the offending design object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Span {
    /// The design as a whole (no narrower location exists).
    Design,
    /// A net.
    Net(NetId),
    /// A combinational gate.
    Gate(GateId),
    /// A flip-flop.
    Flop(FlopId),
    /// A hierarchical block.
    Block(BlockId),
    /// A clock domain.
    Clock(ClockId),
    /// A scan chain, by chain number.
    Chain(u16),
    /// A clock-tree buffer, by buffer index.
    Buffer(u32),
    /// A power-mesh node.
    GridNode(MeshKind, u32),
    /// A test pattern, by application-order index.
    Pattern(usize),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Design => write!(f, "design"),
            Span::Net(id) => write!(f, "net {id}"),
            Span::Gate(id) => write!(f, "gate {id}"),
            Span::Flop(id) => write!(f, "flop {id}"),
            Span::Block(id) => write!(f, "block {id}"),
            Span::Clock(id) => write!(f, "clock {id}"),
            Span::Chain(c) => write!(f, "chain {c}"),
            Span::Buffer(b) => write!(f, "clock buffer {b}"),
            Span::GridNode(mesh, n) => write!(f, "{} node {n}", mesh.label()),
            Span::Pattern(p) => write!(f, "pattern {p}"),
        }
    }
}

/// One rule violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `"NET001"`.
    pub rule: &'static str,
    /// Severity of the violation.
    pub severity: Severity,
    /// The offending object.
    pub span: Span,
    /// Human-readable explanation with concrete values.
    pub message: String,
}

impl Finding {
    /// Convenience constructor.
    pub fn new(rule: &'static str, severity: Severity, span: Span, message: String) -> Self {
        Finding {
            rule,
            severity,
            span,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity, self.rule, self.span, self.message
        )
    }
}

/// Per-rule execution record, one per registered rule whether or not it
/// produced findings.
#[derive(Clone, Debug)]
pub struct RuleStat {
    /// Rule identifier.
    pub rule: &'static str,
    /// Findings this rule produced.
    pub findings: usize,
    /// Wall-clock the rule spent, microseconds.
    pub micros: u64,
}

/// The outcome of one lint run: findings in stable order plus per-rule
/// statistics.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by `(rule, span, message)` — stable across
    /// runs and thread counts.
    pub findings: Vec<Finding>,
    /// One entry per rule run, sorted by rule id.
    pub rules: Vec<RuleStat>,
}

impl LintReport {
    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Warn-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Findings produced by one rule.
    pub fn by_rule(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info in {} rule(s)\n",
            self.errors(),
            self.warnings(),
            self.count(Severity::Info),
            self.rules.len()
        ));
        out
    }

    /// Renders the machine-readable report as one compact JSON object
    /// (the escaping and builders live in [`scap_obs::json`]). Schema:
    ///
    /// ```json
    /// {"summary": {"errors": 0, "warnings": 0, "info": 0, "rules_run": 19},
    ///  "findings": [{"rule": "NET001", "severity": "error",
    ///                "span": "net n12", "message": "..."}],
    ///  "rules": [{"rule": "NET001", "findings": 0, "micros": 12}]}
    /// ```
    pub fn render_json(&self) -> String {
        use scap_obs::json::{Arr, Obj};
        let mut summary = Obj::new();
        summary
            .u64("errors", self.errors() as u64)
            .u64("warnings", self.warnings() as u64)
            .u64("info", self.count(Severity::Info) as u64)
            .u64("rules_run", self.rules.len() as u64);
        let mut findings = Arr::new();
        for f in &self.findings {
            let mut o = Obj::new();
            o.str("rule", f.rule)
                .str("severity", f.severity.label())
                .str("span", &f.span.to_string())
                .str("message", &f.message);
            findings.raw(&o.finish());
        }
        let mut rules = Arr::new();
        for r in &self.rules {
            let mut o = Obj::new();
            o.str("rule", r.rule)
                .u64("findings", r.findings as u64)
                .u64("micros", r.micros);
            rules.raw(&o.finish());
        }
        let mut root = Obj::new();
        root.raw("summary", &summary.finish())
            .raw("findings", &findings.finish())
            .raw("rules", &rules.finish());
        root.finish()
    }

    /// [`LintReport::render_json`] re-indented for human readers (the
    /// CLI's `--format json` output).
    pub fn render_json_pretty(&self) -> String {
        scap_obs::json::pretty(&self.render_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn finding_renders_with_rule_and_span() {
        let f = Finding::new(
            "NET001",
            Severity::Error,
            Span::Net(NetId::new(12)),
            "no driver".into(),
        );
        assert_eq!(f.to_string(), "error: [NET001] net n12: no driver");
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let f = Finding::new(
            "NET001",
            Severity::Error,
            Span::Design,
            "a\"b\\c\nd\u{1}".into(),
        );
        let report = LintReport {
            findings: vec![f],
            rules: vec![],
        };
        let json = report.render_json();
        assert!(json.contains("a\\\"b\\\\c\\nd\\u0001"), "{json}");
    }

    #[test]
    fn empty_report_renders_valid_shapes() {
        let r = LintReport::default();
        assert!(r.render_text().contains("0 error(s)"));
        let json = r.render_json();
        assert!(json.contains("\"findings\":[]"));
        assert!(json.contains("\"rules\":[]"));
        assert!(r.render_json_pretty().ends_with("}\n"));
    }
}
