//! The input bundle a lint run checks.
//!
//! Every layer beyond the netlist is optional: rules silently skip layers
//! that are absent, so a context can be as small as one netlist (unit
//! tests) or as large as the full case study (the CLI's `scap lint`).

use crate::diag::MeshKind;
use scap_dft::PatternSet;
use scap_netlist::{BlockId, ClockId, FlopId, Netlist};
use scap_power::PowerGrid;
use scap_timing::{ClockTree, DelayAnnotation, SlackSta};

/// An assembled reduced system: `(dimension, (row, col, value) triplets)`.
pub type SystemTriplets = (usize, Vec<(u32, u32, f64)>);

/// One supply mesh in checkable form: the branch list the Laplacian was
/// stamped from, the pad flags, and (optionally) the assembled reduced
/// matrix the CG solver actually runs against.
#[derive(Clone, Debug)]
pub struct MeshSpec {
    /// Which supply network this is.
    pub kind: MeshKind,
    /// Total node count (pads included).
    pub num_nodes: usize,
    /// `(node_a, node_b, conductance_S)` branch triples.
    pub branches: Vec<(u32, u32, f64)>,
    /// Pad flag per node.
    pub pads: Vec<bool>,
    /// Assembled reduced matrix.
    pub matrix: Option<SystemTriplets>,
}

impl MeshSpec {
    /// Captures a built [`PowerGrid`] as a checkable mesh, including the
    /// assembled solver matrix.
    pub fn from_grid(kind: MeshKind, grid: &PowerGrid) -> Self {
        MeshSpec {
            kind,
            num_nodes: grid.num_nodes(),
            branches: grid.branches(),
            pads: grid.pads().to_vec(),
            matrix: Some(grid.system_triplets()),
        }
    }
}

/// One stage of a staged (noise-aware) flow with the blocks it promised
/// to keep quiet.
#[derive(Clone, Debug)]
pub struct QuietStage {
    /// Stage label, e.g. `"step1: B1-B4"`.
    pub label: String,
    /// Half-open pattern index range `[start, end)` of the stage.
    pub range: (usize, usize),
    /// Blocks that must stay (near) toggle-free while these patterns
    /// shift and launch — the blocks targeted only by later stages.
    pub quiet_blocks: Vec<BlockId>,
}

/// Declaration of which blocks each flow stage keeps quiet, with the
/// tolerance the `PAT002` rule enforces.
#[derive(Clone, Debug)]
pub struct QuietSpec {
    /// The stages in application order.
    pub stages: Vec<QuietStage>,
    /// Maximum allowed aggregate ones-fraction of a quiet block's scan
    /// load over a stage (fill-0 keeps the true fraction far below this).
    pub max_ones_fraction: f64,
    /// Stages with fewer patterns than this are skipped — a handful of
    /// patterns is not a meaningful aggregate.
    pub min_patterns: usize,
}

impl QuietSpec {
    /// A spec with the default tolerance (25 % ones, ≥ 5 patterns).
    pub fn new(stages: Vec<QuietStage>) -> Self {
        QuietSpec {
            stages,
            max_ones_fraction: 0.25,
            min_patterns: 5,
        }
    }

    /// Derives the quiet-block declaration of a staged flow from its
    /// stage plan and the per-stage pattern offsets the flow reported.
    ///
    /// `stages` is the plan (label, targeted blocks) in application
    /// order; `steps` is the matching `(label, first pattern index)`
    /// list from the flow result; `total_patterns` closes the last
    /// range. While stage `k` runs, the blocks targeted only by later
    /// stages must stay quiet — exactly the paper's staging argument.
    pub fn from_staged_flow(
        stages: &[(String, Vec<BlockId>)],
        steps: &[(String, usize)],
        total_patterns: usize,
    ) -> Self {
        let mut out = Vec::new();
        for (i, (label, start)) in steps.iter().enumerate() {
            let end = steps.get(i + 1).map_or(total_patterns, |(_, s)| *s);
            let quiet_blocks: Vec<BlockId> = stages
                .iter()
                .skip(i + 1)
                .flat_map(|(_, blocks)| blocks.iter().copied())
                .collect();
            out.push(QuietStage {
                label: label.clone(),
                range: (*start, end),
                quiet_blocks,
            });
        }
        QuietSpec::new(out)
    }
}

/// Precomputed static-timing results for the `TIM00x` rules: per-endpoint
/// nominal (and optionally IR-drop-derated) slacks for one clock domain.
///
/// The spec is plain data so rules stay pure and fast: the caller runs
/// [`SlackSta`] (nominal, and derated via
/// `scap_timing::scaling::scale_annotation`) once and captures the
/// results here, typically via [`TimingSpec::from_analyses`].
#[derive(Clone, Debug)]
pub struct TimingSpec {
    /// The analyzed clock domain.
    pub clock: ClockId,
    /// The domain's tester period, ps.
    pub period_ps: f64,
    /// Per-endpoint nominal slack, ps.
    pub nominal_slack_ps: Vec<(FlopId, f64)>,
    /// Per-endpoint slack under IR-drop-derated delays, ps (absent when
    /// no derated analysis ran).
    pub derated_slack_ps: Option<Vec<(FlopId, f64)>>,
    /// Critical-path delay under derated delays, ps.
    pub derated_critical_path_ps: Option<f64>,
    /// Endpoints unreachable from any launch flop or primary input.
    pub unreachable_endpoints: Vec<FlopId>,
}

impl TimingSpec {
    /// Captures nominal (and optionally derated) [`SlackSta`] results.
    pub fn from_analyses(
        netlist: &Netlist,
        clock: ClockId,
        nominal: &SlackSta,
        derated: Option<&SlackSta>,
    ) -> Self {
        TimingSpec {
            clock,
            period_ps: nominal.period_ps(),
            nominal_slack_ps: nominal
                .endpoints()
                .iter()
                .map(|e| (e.flop, e.slack_ps()))
                .collect(),
            derated_slack_ps: derated.map(|d| {
                d.endpoints()
                    .iter()
                    .map(|e| (e.flop, e.slack_ps()))
                    .collect()
            }),
            derated_critical_path_ps: derated.map(|d| d.critical_path_ps()),
            unreachable_endpoints: nominal.unreachable_endpoints(netlist),
        }
    }
}

/// Declaration that a pattern set was SCAP-screened: per-block thresholds,
/// the measured per-pattern per-block SCAP, and which patterns the flow
/// emits. `PAT003` checks that no emitted pattern exceeds a threshold.
#[derive(Clone, Debug)]
pub struct ScreenSpec {
    /// Screening threshold per block (mW), indexed by [`BlockId::index`].
    pub thresholds_mw: Vec<f64>,
    /// Measured SCAP per pattern per block (mW): `[pattern][block]`.
    pub pattern_block_mw: Vec<Vec<f64>>,
    /// Indices of the patterns emitted after screening.
    pub emitted: Vec<usize>,
}

/// Statistical thresholds for the outlier-style rules. The defaults are
/// deliberately generous: a clean generated design at any scale must
/// produce zero findings (the CI gate runs with `--deny warn`).
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// A net's reader count is an outlier only above this floor…
    pub fanout_warn_floor: usize,
    /// …and above this multiple of the average reader count (`NET005`).
    pub fanout_warn_factor: f64,
    /// A chain is unbalanced when longer than this multiple of its
    /// domain-group average, plus one cell of rounding slack (`SCAN002`).
    pub balance_factor: f64,
    /// An endpoint whose *derated* slack falls below this margin is
    /// flagged by `TIM004` — it still meets timing nominally, but a
    /// supply droop beyond the derating assumption would fail it. The
    /// default is 1 % of the paper's 20 ns tester cycle.
    pub derated_slack_margin_ps: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            fanout_warn_floor: 64,
            fanout_warn_factor: 16.0,
            balance_factor: 2.0,
            derated_slack_margin_ps: 200.0,
        }
    }
}

/// Everything one lint run looks at.
#[derive(Debug)]
pub struct LintContext<'a> {
    /// The netlist (required; scan rules read the roles stored on flops).
    pub netlist: &'a Netlist,
    /// Extracted delays, for `CLK002`.
    pub annotation: Option<&'a DelayAnnotation>,
    /// The synthesized clock tree, for `CLK001`/`CLK002`.
    pub clock_tree: Option<&'a ClockTree>,
    /// The supply meshes (typically VDD and VSS), for `GRID00x`.
    pub meshes: Vec<MeshSpec>,
    /// Generated patterns, for `PAT001`/`PAT002`.
    pub patterns: Option<&'a PatternSet>,
    /// Quiet-block declaration of a staged flow, for `PAT002`.
    pub quiet: Option<QuietSpec>,
    /// SCAP-screen declaration, for `PAT003`.
    pub screen: Option<ScreenSpec>,
    /// Precomputed STA results, for `TIM001`/`TIM003`-`TIM005`.
    pub sta: Option<TimingSpec>,
    /// Outlier thresholds.
    pub config: LintConfig,
}

impl<'a> LintContext<'a> {
    /// A minimal context: netlist only, every optional layer absent.
    pub fn new(netlist: &'a Netlist) -> Self {
        LintContext {
            netlist,
            annotation: None,
            clock_tree: None,
            meshes: Vec::new(),
            patterns: None,
            quiet: None,
            screen: None,
            sta: None,
            config: LintConfig::default(),
        }
    }

    /// Adds the timing layer.
    pub fn with_timing(
        mut self,
        annotation: &'a DelayAnnotation,
        clock_tree: &'a ClockTree,
    ) -> Self {
        self.annotation = Some(annotation);
        self.clock_tree = Some(clock_tree);
        self
    }

    /// Adds a supply mesh (call twice: VDD and VSS).
    pub fn with_mesh(mut self, mesh: MeshSpec) -> Self {
        self.meshes.push(mesh);
        self
    }

    /// Adds the pattern layer.
    pub fn with_patterns(mut self, patterns: &'a PatternSet) -> Self {
        self.patterns = Some(patterns);
        self
    }

    /// Adds the quiet-block declaration.
    pub fn with_quiet(mut self, quiet: QuietSpec) -> Self {
        self.quiet = Some(quiet);
        self
    }

    /// Adds the SCAP-screen declaration.
    pub fn with_screen(mut self, screen: ScreenSpec) -> Self {
        self.screen = Some(screen);
        self
    }

    /// Adds precomputed STA results.
    pub fn with_sta(mut self, sta: TimingSpec) -> Self {
        self.sta = Some(sta);
        self
    }
}
