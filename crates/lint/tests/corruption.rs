//! Defect-injection tests: each test corrupts one invariant of an
//! otherwise-clean case study and asserts that exactly the intended rule
//! fires (by ID and severity), plus a clean-design zero-findings
//! baseline — the contract the `--deny warn` CI gate relies on.

use scap::netlist::{BlockId, ClockId, FlopId, GateId, NetSource, Netlist};
use scap::power::PowerGrid;
use scap::sta::NoiseAwareSta;
use scap::{experiments, flows, CaseStudy, PatternAnalyzer};
use scap_lint::{
    run_all, LintContext, LintReport, MeshKind, MeshSpec, QuietSpec, ScreenSpec, Severity,
    TimingSpec,
};
use std::sync::OnceLock;

/// The clean fixture every test starts from, built once per binary.
struct Fixture {
    study: CaseStudy,
    flow: flows::FlowResult,
    thresholds: Vec<f64>,
    /// Measured SCAP per pattern per block, mW.
    mw: Vec<Vec<f64>>,
    grid: PowerGrid,
}

fn fx() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let study = CaseStudy::small();
        let flow = flows::noise_aware(&study);
        let thresholds = experiments::scap_thresholds(&study);
        let profile = PatternAnalyzer::new(&study).power_profile(&flow.patterns);
        let nb = study.design.netlist.blocks().len();
        let mw: Vec<Vec<f64>> = profile
            .iter()
            .map(|p| {
                (0..nb)
                    .map(|b| p.scap_vdd_mw(BlockId::new(b as u32)))
                    .collect()
            })
            .collect();
        let grid = PowerGrid::new(study.design.floorplan.die, study.grid);
        Fixture {
            study,
            flow,
            thresholds,
            mw,
            grid,
        }
    })
}

/// The patterns the screened flow emits: everything at or below every
/// block's threshold (what the CLI computes for `scap lint`).
fn emitted(f: &Fixture) -> Vec<usize> {
    f.mw.iter()
        .enumerate()
        .filter(|(_, row)| {
            row.iter()
                .zip(&f.thresholds)
                .all(|(&mw, &t)| mw <= t * (1.0 + 1e-9))
        })
        .map(|(p, _)| p)
        .collect()
}

fn quiet_spec(f: &Fixture) -> QuietSpec {
    QuietSpec::from_staged_flow(
        &flows::paper_stages(&f.study),
        &f.flow.steps,
        f.flow.patterns.len(),
    )
}

fn screen_spec(f: &Fixture) -> ScreenSpec {
    ScreenSpec {
        thresholds_mw: f.thresholds.clone(),
        pattern_block_mw: f.mw.clone(),
        emitted: emitted(f),
    }
}

/// Real nominal + worst-case-derated STA results of the clean study.
fn sta_spec(f: &Fixture) -> TimingSpec {
    let sta = NoiseAwareSta::worst_case(&f.study);
    TimingSpec::from_analyses(
        &f.study.design.netlist,
        f.study.clka(),
        &sta.nominal,
        Some(&sta.derated),
    )
}

/// A hand-built spec whose every field is comfortably clean; tests
/// corrupt exactly one field so exactly one TIM rule fires.
fn clean_hand_spec() -> TimingSpec {
    TimingSpec {
        clock: ClockId::new(0),
        period_ps: 20_000.0,
        nominal_slack_ps: vec![(FlopId::new(0), 9_000.0), (FlopId::new(1), 12_000.0)],
        derated_slack_ps: Some(vec![(FlopId::new(0), 7_500.0), (FlopId::new(1), 11_000.0)]),
        derated_critical_path_ps: Some(12_500.0),
        unreachable_endpoints: Vec::new(),
    }
}

/// Asserts every finding carries the expected rule ID and severity, and
/// that at least one fired.
fn assert_only(report: &LintReport, rule: &str, severity: Severity) {
    assert!(
        !report.findings.is_empty(),
        "expected {rule} to fire, got a clean report"
    );
    for f in &report.findings {
        assert_eq!(
            (f.rule, f.severity),
            (rule, severity),
            "unexpected finding: {f}"
        );
    }
}

/// Runs the full registry over a netlist-only context.
fn run_netlist(n: &Netlist) -> LintReport {
    run_all(&LintContext::new(n))
}

#[test]
fn clean_design_has_zero_findings() {
    let f = fx();
    let quiet = quiet_spec(f);
    let screen = screen_spec(f);
    let ctx = LintContext::new(&f.study.design.netlist)
        .with_timing(&f.study.annotation, &f.study.clock_tree)
        .with_mesh(MeshSpec::from_grid(MeshKind::Vdd, &f.grid))
        .with_mesh(MeshSpec::from_grid(MeshKind::Vss, &f.grid))
        .with_patterns(&f.flow.patterns)
        .with_quiet(quiet)
        .with_screen(screen)
        .with_sta(sta_spec(f));
    let report = run_all(&ctx);
    assert_eq!(
        report.findings.len(),
        0,
        "clean design must lint clean:\n{}",
        report.render_text()
    );
    assert_eq!(report.rules.len(), scap_lint::all_rules().len());
}

#[test]
fn dropped_net_source_is_net001() {
    let mut n = fx().study.design.netlist.clone();
    let victim = n.gates()[0].output;
    n.net_mut(victim).source = None;
    assert_only(&run_netlist(&n), "NET001", Severity::Error);
}

#[test]
fn double_driver_is_net002() {
    let mut n = fx().study.design.netlist.clone();
    // Tie a gate-driven net to a constant: two structural drivers, and
    // the recorded source still matches one of them (so NET001 is mute).
    let victim = n.gates()[0].output;
    n.net_mut(victim).source = Some(NetSource::Const(false));
    assert_only(&run_netlist(&n), "NET002", Severity::Error);
}

#[test]
fn gate_feeding_itself_is_net003() {
    let mut n = fx().study.design.netlist.clone();
    // A self-loop on a gate whose sacrificed input is flop- or PI-driven,
    // so no other gate loses its only observer.
    let mut gate_driven = vec![false; n.num_nets()];
    for g in n.gates() {
        gate_driven[g.output.index()] = true;
    }
    let victim = (0..n.num_gates())
        .map(|i| GateId::new(i as u32))
        .find(|&g| {
            n.gate(g)
                .inputs
                .first()
                .is_some_and(|i| !gate_driven[i.index()])
        })
        .expect("a gate fed by a flop or PI exists");
    let out = n.gate(victim).output;
    n.gate_mut(victim).inputs[0] = out;
    assert_only(&run_netlist(&n), "NET003", Severity::Error);
}

#[test]
fn orphaned_gate_is_net004() {
    let mut n = fx().study.design.netlist.clone();
    // Find a gate observed by exactly one other gate (no flop D, no PO),
    // then point that reader elsewhere.
    let mut gate_readers: Vec<Vec<GateId>> = vec![Vec::new(); n.num_nets()];
    let mut flop_read = vec![false; n.num_nets()];
    for (i, g) in n.gates().iter().enumerate() {
        for &inp in &g.inputs {
            gate_readers[inp.index()].push(GateId::new(i as u32));
        }
    }
    for f in n.flops() {
        flop_read[f.d.index()] = true;
    }
    for &po in n.primary_outputs() {
        flop_read[po.index()] = true;
    }
    let victim = n
        .gates()
        .iter()
        .enumerate()
        .find(|(_, g)| gate_readers[g.output.index()].len() == 1 && !flop_read[g.output.index()])
        .map(|(i, _)| GateId::new(i as u32))
        .expect("a singly-observed gate exists");
    let out = n.gate(victim).output;
    let reader = gate_readers[out.index()][0];
    let replacement = n.primary_inputs()[0];
    for inp in &mut n.gate_mut(reader).inputs {
        if *inp == out {
            *inp = replacement;
        }
    }
    let report = run_netlist(&n);
    assert_only(&report, "NET004", Severity::Warn);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.span == scap_lint::Span::Gate(victim)),
        "the orphaned gate itself must be flagged"
    );
}

#[test]
fn fanout_explosion_is_net005() {
    let mut n = fx().study.design.netlist.clone();
    let pi = n.primary_inputs()[0];
    let extra = n.num_gates().min(400);
    for i in 0..extra {
        n.gate_mut(GateId::new(i as u32)).inputs.push(pi);
    }
    let report = run_netlist(&n);
    assert_only(&report, "NET005", Severity::Warn);
    assert_eq!(report.findings.len(), 1, "only the exploded net is flagged");
}

#[test]
fn cross_block_cycle_is_net006() {
    let mut n = fx().study.design.netlist.clone();
    // Find an existing combinational arc a→b between blocks, then add the
    // reverse arc through a gate with no gate-level readers (so no
    // gate-level cycle can form and NET003 stays mute).
    let mut driving_block = vec![None; n.num_nets()];
    for g in n.gates() {
        driving_block[g.output.index()] = Some(g.block);
    }
    let (a, b) = n
        .gates()
        .iter()
        .flat_map(|g| {
            g.inputs
                .iter()
                .filter_map(|i| driving_block[i.index()])
                .filter(|&src| src != g.block)
                .map(|src| (src, g.block))
                .collect::<Vec<_>>()
        })
        .next()
        .expect("a cross-block combinational arc exists");
    let mut gate_read = vec![false; n.num_nets()];
    for g in n.gates() {
        for &inp in &g.inputs {
            gate_read[inp.index()] = true;
        }
    }
    let sink = (0..n.num_gates())
        .map(|i| GateId::new(i as u32))
        .find(|&g| n.gate(g).block == a && !gate_read[n.gate(g).output.index()])
        .expect("block a has a gate feeding only flops");
    let back_net = n
        .gates()
        .iter()
        .find(|g| g.block == b)
        .map(|g| g.output)
        .expect("block b has a gate");
    n.gate_mut(sink).inputs.push(back_net);
    let report = run_netlist(&n);
    assert_only(&report, "NET006", Severity::Error);
    let flagged: Vec<_> = report.findings.iter().map(|f| &f.span).collect();
    assert!(flagged.contains(&&scap_lint::Span::Block(a)));
    assert!(flagged.contains(&&scap_lint::Span::Block(b)));
}

/// `(chain, members in position order)` of a scanned netlist.
fn chains(n: &Netlist) -> Vec<(u16, Vec<FlopId>)> {
    let mut out: Vec<(u16, Vec<FlopId>)> = Vec::new();
    for (i, f) in n.flops().iter().enumerate() {
        let Some(role) = f.scan else { continue };
        let id = FlopId::new(i as u32);
        match out.iter_mut().find(|(c, _)| *c == role.chain) {
            Some((_, m)) => m.push(id),
            None => out.push((role.chain, vec![id])),
        }
    }
    out.sort_by_key(|(c, _)| *c);
    for (_, m) in &mut out {
        m.sort_by_key(|&f| n.flop(f).scan.map(|r| r.position));
    }
    out
}

#[test]
fn duplicate_chain_position_is_scan001() {
    let mut n = fx().study.design.netlist.clone();
    let (_, members) = chains(&n)
        .into_iter()
        .find(|(_, m)| m.len() >= 2)
        .expect("a chain with two cells exists");
    let mut role = n.flop(members[1]).scan.unwrap();
    role.position = n.flop(members[0]).scan.unwrap().position;
    n.flop_mut(members[1]).scan = Some(role);
    assert_only(&run_netlist(&n), "SCAN001", Severity::Error);
}

#[test]
fn lopsided_chains_are_scan002() {
    let mut n = fx().study.design.netlist.clone();
    // Merge three same-domain chains into one: the merged chain is ~3x
    // its group average, past the balance threshold.
    let all = chains(&n);
    let domain = |n: &Netlist, m: &[FlopId]| {
        let f = n.flop(m[0]);
        (f.clock, f.edge)
    };
    let key = domain(&n, &all[0].1);
    let group: Vec<_> = all
        .iter()
        .filter(|(_, m)| domain(&n, m) == key)
        .take(3)
        .cloned()
        .collect();
    assert!(group.len() == 3, "need three chains in one clock domain");
    let target = group[0].0;
    let mut next = group[0].1.len() as u32;
    for (_, members) in &group[1..] {
        for &f in members {
            n.flop_mut(f).scan = Some(scap::netlist::ScanRole {
                chain: target,
                position: next,
            });
            next += 1;
        }
    }
    assert_only(&run_netlist(&n), "SCAN002", Severity::Warn);
}

#[test]
fn mixed_clock_domains_in_chain_is_scan003() {
    let mut n = fx().study.design.netlist.clone();
    assert!(n.clocks().len() >= 2, "case study has multiple domains");
    let (_, members) = chains(&n)
        .into_iter()
        .find(|(_, m)| m.len() >= 3)
        .expect("a chain with three cells exists");
    // Re-clock a middle cell so the chain's first member (and with it the
    // SCAN002 grouping) is untouched.
    let victim = members[1];
    let old = n.flop(victim).clock;
    let other = (0..n.clocks().len() as u32)
        .map(ClockId::new)
        .find(|&c| c != old)
        .unwrap();
    n.flop_mut(victim).clock = other;
    assert_only(&run_netlist(&n), "SCAN003", Severity::Error);
}

#[test]
fn unscanned_flop_is_scan004() {
    let mut n = fx().study.design.netlist.clone();
    // Drop the *last* cell of a chain so the remaining positions stay
    // dense and SCAN001 stays mute.
    let (_, members) = chains(&n)
        .into_iter()
        .find(|(_, m)| m.len() >= 2)
        .expect("a chain with two cells exists");
    n.flop_mut(*members.last().unwrap()).scan = None;
    assert_only(&run_netlist(&n), "SCAN004", Severity::Error);
}

#[test]
fn clock_tree_cycle_is_clk001() {
    let f = fx();
    let mut tree = f.study.clock_tree.clone();
    let last = tree.buffers().len() as u32 - 1;
    tree.buffer_mut(last).parent = Some(last);
    let ctx = LintContext::new(&f.study.design.netlist).with_timing(&f.study.annotation, &tree);
    assert_only(&run_all(&ctx), "CLK001", Severity::Error);
}

#[test]
fn cut_clock_buffer_delay_is_clk002() {
    let f = fx();
    let mut tree = f.study.clock_tree.clone();
    tree.buffer_mut(0).delay_ps = f64::NAN;
    let ctx = LintContext::new(&f.study.design.netlist).with_timing(&f.study.annotation, &tree);
    let report = run_all(&ctx);
    assert_only(&report, "CLK002", Severity::Error);
    assert_eq!(report.findings[0].span, scap_lint::Span::Buffer(0));
}

#[test]
fn negative_annotated_delay_is_tim002() {
    let f = fx();
    let mut ann = f.study.annotation.clone();
    ann.delays_mut().0[3] = -12.0;
    let ctx = LintContext::new(&f.study.design.netlist).with_timing(&ann, &f.study.clock_tree);
    let report = run_all(&ctx);
    assert_only(&report, "TIM002", Severity::Error);
    assert_eq!(
        report.findings[0].span,
        scap_lint::Span::Gate(GateId::new(3))
    );
}

#[test]
fn nan_clk_to_q_is_tim002() {
    let f = fx();
    let mut ann = f.study.annotation.clone();
    ann.delays_mut().2[0] = f64::NAN;
    let ctx = LintContext::new(&f.study.design.netlist).with_timing(&ann, &f.study.clock_tree);
    let report = run_all(&ctx);
    assert_only(&report, "TIM002", Severity::Error);
    assert_eq!(
        report.findings[0].span,
        scap_lint::Span::Flop(FlopId::new(0))
    );
}

#[test]
fn negative_nominal_slack_is_tim001() {
    let f = fx();
    let mut spec = clean_hand_spec();
    spec.nominal_slack_ps[1].1 = -340.0;
    let ctx = LintContext::new(&f.study.design.netlist).with_sta(spec);
    let report = run_all(&ctx);
    assert_only(&report, "TIM001", Severity::Error);
    assert_eq!(
        report.findings[0].span,
        scap_lint::Span::Flop(FlopId::new(1))
    );
}

#[test]
fn unreachable_endpoint_is_tim003() {
    let f = fx();
    let mut spec = clean_hand_spec();
    spec.unreachable_endpoints.push(FlopId::new(0));
    let ctx = LintContext::new(&f.study.design.netlist).with_sta(spec);
    let report = run_all(&ctx);
    assert_only(&report, "TIM003", Severity::Warn);
    assert_eq!(
        report.findings[0].span,
        scap_lint::Span::Flop(FlopId::new(0))
    );
}

#[test]
fn thin_derated_slack_is_tim004() {
    let f = fx();
    let mut spec = clean_hand_spec();
    spec.derated_slack_ps.as_mut().unwrap()[0].1 = 50.0;
    let ctx = LintContext::new(&f.study.design.netlist).with_sta(spec);
    let report = run_all(&ctx);
    assert_only(&report, "TIM004", Severity::Warn);
    assert_eq!(
        report.findings[0].span,
        scap_lint::Span::Flop(FlopId::new(0))
    );
}

#[test]
fn derated_critical_path_over_period_is_tim005() {
    let f = fx();
    let mut spec = clean_hand_spec();
    // Slacks stay comfortably positive so TIM001/TIM004 are mute; only
    // the recorded critical-path length contradicts the period.
    spec.derated_critical_path_ps = Some(spec.period_ps + 1_250.0);
    let clock = spec.clock;
    let ctx = LintContext::new(&f.study.design.netlist).with_sta(spec);
    let report = run_all(&ctx);
    assert_only(&report, "TIM005", Severity::Error);
    assert_eq!(report.findings[0].span, scap_lint::Span::Clock(clock));
}

#[test]
fn zero_frequency_clock_is_clk003() {
    let mut n = fx().study.design.netlist.clone();
    n.clock_mut(ClockId::new(0)).frequency_hz = 0.0;
    assert_only(&run_netlist(&n), "CLK003", Severity::Error);
}

#[test]
fn grid_island_is_grid001() {
    let f = fx();
    let mut mesh = MeshSpec::from_grid(MeshKind::Vdd, &f.grid);
    // Cut every branch around the first non-pad node; keep the (clean)
    // matrix so GRID003 stays mute.
    let island = (0..mesh.num_nodes as u32)
        .find(|&i| !mesh.pads[i as usize])
        .expect("a non-pad node exists");
    mesh.branches
        .retain(|&(a, b, _)| a != island && b != island);
    let ctx = LintContext::new(&f.study.design.netlist).with_mesh(mesh);
    let report = run_all(&ctx);
    assert_only(&report, "GRID001", Severity::Error);
    assert_eq!(
        report.findings[0].span,
        scap_lint::Span::GridNode(MeshKind::Vdd, island)
    );
}

#[test]
fn negative_conductance_is_grid002() {
    let f = fx();
    let mut mesh = MeshSpec::from_grid(MeshKind::Vss, &f.grid);
    mesh.branches.push((0, 1, -2.0));
    let ctx = LintContext::new(&f.study.design.netlist).with_mesh(mesh);
    assert_only(&run_all(&ctx), "GRID002", Severity::Error);
}

#[test]
fn asymmetric_matrix_is_grid003() {
    let f = fx();
    let mut mesh = MeshSpec::from_grid(MeshKind::Vdd, &f.grid);
    let (_, triplets) = mesh.matrix.as_mut().unwrap();
    let entry = triplets
        .iter_mut()
        .find(|(r, c, _)| r != c)
        .expect("an off-diagonal entry exists");
    entry.2 *= 2.0;
    let ctx = LintContext::new(&f.study.design.netlist).with_mesh(mesh);
    assert_only(&run_all(&ctx), "GRID003", Severity::Error);
}

#[test]
fn dropped_care_bit_is_pat001() {
    let f = fx();
    let mut set = f.flow.patterns.clone();
    let (p, i) = set
        .source
        .iter()
        .enumerate()
        .find_map(|(p, s)| {
            s.load
                .iter()
                .position(|b| b.to_bool().is_some())
                .map(|i| (p, i))
        })
        .expect("a load care bit exists");
    let care = set.source[p].load[i].to_bool().unwrap();
    set.filled[p].load[i] = !care;
    let ctx = LintContext::new(&f.study.design.netlist).with_patterns(&set);
    let report = run_all(&ctx);
    assert_only(&report, "PAT001", Severity::Error);
    assert_eq!(report.findings[0].span, scap_lint::Span::Pattern(p));
}

#[test]
fn noisy_quiet_block_is_pat002() {
    let f = fx();
    let quiet = quiet_spec(f);
    let stage = quiet
        .stages
        .iter()
        .find(|s| !s.quiet_blocks.is_empty() && s.range.1 - s.range.0 >= quiet.min_patterns)
        .expect("a stage with quiet blocks exists");
    let block = stage.quiet_blocks[0];
    let mut set = f.flow.patterns.clone();
    // Blast ones into the block's don't-care load bits only, so every
    // source care bit survives and PAT001 stays mute.
    let cells: Vec<usize> = f
        .study
        .design
        .netlist
        .flops_in_block(block)
        .map(|fl| fl.index())
        .collect();
    for p in stage.range.0..stage.range.1 {
        for &c in &cells {
            if set.source[p].load[c].to_bool().is_none() {
                set.filled[p].load[c] = true;
            }
        }
    }
    let ctx = LintContext::new(&f.study.design.netlist)
        .with_patterns(&set)
        .with_quiet(quiet.clone());
    let report = run_all(&ctx);
    assert_only(&report, "PAT002", Severity::Error);
    assert_eq!(report.findings[0].span, scap_lint::Span::Block(block));
}

#[test]
fn emitting_an_over_threshold_pattern_is_pat003() {
    let f = fx();
    let mut screen = screen_spec(f);
    let p = screen.emitted[0];
    screen.pattern_block_mw[p][0] = screen.thresholds_mw[0] * 2.0;
    let ctx = LintContext::new(&f.study.design.netlist).with_screen(screen);
    let report = run_all(&ctx);
    assert_only(&report, "PAT003", Severity::Error);
    assert_eq!(report.findings[0].span, scap_lint::Span::Pattern(p));
}

#[test]
fn emitting_an_unmeasured_pattern_is_pat003() {
    let f = fx();
    let mut screen = screen_spec(f);
    screen.emitted.push(screen.pattern_block_mw.len());
    let ctx = LintContext::new(&f.study.design.netlist).with_screen(screen);
    assert_only(&run_all(&ctx), "PAT003", Severity::Error);
}
