//! Three-valued logic used across simulation and test generation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// A three-valued logic value: `0`, `1` or unknown (`X`).
///
/// `X` is absorbing for every operation that cannot be decided by a
/// controlling value; e.g. `AND(0, X) = 0` but `AND(1, X) = X`.
///
/// # Example
///
/// ```
/// use scap_netlist::Logic;
///
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(!Logic::X, Logic::X);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / don't-care.
    #[default]
    X,
}

impl Logic {
    /// Converts a `bool` into `Zero` / `One`.
    #[inline]
    pub const fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for a known value, `None` for `X`.
    #[inline]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// Returns `true` when the value is `0` or `1`.
    #[inline]
    pub const fn is_known(self) -> bool {
        !matches!(self, Logic::X)
    }

    /// Three-valued AND.
    #[inline]
    pub const fn and(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Three-valued OR.
    #[inline]
    pub const fn or(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Three-valued XOR.
    #[inline]
    pub const fn xor(self, rhs: Self) -> Self {
        match (self, rhs) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) => Logic::from_bool(!matches!(
                (a, b),
                (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One)
            )),
        }
    }

    /// Three-valued inversion.
    #[inline]
    pub const fn invert(self) -> Self {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    #[inline]
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl Not for Logic {
    type Output = Logic;
    #[inline]
    fn not(self) -> Logic {
        self.invert()
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    #[inline]
    fn bitand(self, rhs: Self) -> Logic {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    #[inline]
    fn bitor(self, rhs: Self) -> Logic {
        self.or(rhs)
    }
}

impl std::ops::BitXor for Logic {
    type Output = Logic;
    #[inline]
    fn bitxor(self, rhs: Self) -> Logic {
        self.xor(rhs)
    }
}

impl fmt::Debug for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    #[test]
    fn and_truth_table() {
        assert_eq!(Logic::One & Logic::One, Logic::One);
        assert_eq!(Logic::One & Logic::Zero, Logic::Zero);
        assert_eq!(Logic::X & Logic::Zero, Logic::Zero);
        assert_eq!(Logic::X & Logic::One, Logic::X);
        assert_eq!(Logic::X & Logic::X, Logic::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Logic::Zero | Logic::Zero, Logic::Zero);
        assert_eq!(Logic::Zero | Logic::One, Logic::One);
        assert_eq!(Logic::X | Logic::One, Logic::One);
        assert_eq!(Logic::X | Logic::Zero, Logic::X);
    }

    #[test]
    fn xor_is_unknown_with_any_x() {
        for v in ALL {
            assert_eq!(v ^ Logic::X, Logic::X);
            assert_eq!(Logic::X ^ v, Logic::X);
        }
        assert_eq!(Logic::One ^ Logic::One, Logic::Zero);
        assert_eq!(Logic::One ^ Logic::Zero, Logic::One);
    }

    #[test]
    fn de_morgan_holds_for_known_values() {
        for a in [Logic::Zero, Logic::One] {
            for b in [Logic::Zero, Logic::One] {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from(true).to_bool(), Some(true));
        assert_eq!(Logic::from(false).to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(!Logic::X.is_known());
        assert!(Logic::One.is_known());
    }

    #[test]
    fn double_negation() {
        for v in ALL {
            assert_eq!(!!v, v);
        }
    }
}
