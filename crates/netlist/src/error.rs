//! Error type for netlist construction.

use crate::{FlopId, GateId, NetId};
use std::error::Error;
use std::fmt;

/// Errors reported while building or validating a [`Netlist`](crate::Netlist).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A net was driven by more than one source.
    MultipleDrivers {
        /// The doubly-driven net.
        net: NetId,
    },
    /// A gate was created with the wrong number of input nets.
    ArityMismatch {
        /// The offending gate.
        gate: GateId,
        /// Inputs the cell kind expects.
        expected: usize,
        /// Inputs that were supplied.
        got: usize,
    },
    /// A net has no driver at `finish()` time.
    UndrivenNet {
        /// The floating net.
        net: NetId,
    },
    /// The combinational portion of the netlist contains a cycle.
    CombinationalLoop {
        /// A net on the cycle.
        net: NetId,
    },
    /// A referenced net id is out of range.
    UnknownNet {
        /// The invalid id.
        net: NetId,
    },
    /// Two flops drive the same Q net or share a D net illegally.
    FlopConflict {
        /// The offending flop.
        flop: FlopId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MultipleDrivers { net } => {
                write!(f, "net {net} has multiple drivers")
            }
            BuildError::ArityMismatch {
                gate,
                expected,
                got,
            } => {
                write!(f, "gate {gate} expects {expected} inputs, got {got}")
            }
            BuildError::UndrivenNet { net } => write!(f, "net {net} has no driver"),
            BuildError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net}")
            }
            BuildError::UnknownNet { net } => write!(f, "unknown net id {net}"),
            BuildError::FlopConflict { flop } => {
                write!(f, "flop {flop} conflicts with an existing driver")
            }
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            BuildError::MultipleDrivers { net: NetId::new(1) },
            BuildError::ArityMismatch {
                gate: GateId::new(2),
                expected: 2,
                got: 3,
            },
            BuildError::UndrivenNet { net: NetId::new(3) },
            BuildError::CombinationalLoop { net: NetId::new(4) },
            BuildError::UnknownNet { net: NetId::new(5) },
            BuildError::FlopConflict {
                flop: FlopId::new(6),
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().is_some_and(|c| c.is_lowercase()));
        }
    }
}
