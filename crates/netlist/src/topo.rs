//! Topological levelization and cone extraction.

use crate::{FlopId, GateId, NetId, NetSource, Netlist};

/// Topological levelization of the combinational gates of a netlist.
///
/// Level 0 gates read only primary inputs, constants or flop Q outputs;
/// level *k* gates read at least one level *k−1* gate output. Iterating
/// [`Levelization::order`] visits gates in a valid evaluation order.
///
/// # Example
///
/// ```
/// use scap_netlist::{CellKind, ClockEdge, Levelization, NetlistBuilder};
///
/// # fn main() -> Result<(), scap_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("d");
/// let blk = b.add_block("B1");
/// let a = b.add_primary_input("a");
/// let y = b.add_net("y");
/// let z = b.add_net("z");
/// b.add_gate(CellKind::Inv, &[a], y, blk)?;
/// b.add_gate(CellKind::Inv, &[y], z, blk)?;
/// let n = b.finish()?;
/// let lv = Levelization::build(&n);
/// assert_eq!(lv.max_level(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Levelization {
    level: Vec<u32>,
    order: Vec<GateId>,
}

impl Levelization {
    /// Computes the levelization of `netlist`.
    ///
    /// Acyclicity is a precondition, not a runtime check: netlists produced
    /// by [`NetlistBuilder::finish`](crate::NetlistBuilder::finish) are
    /// loop-free by construction, and designs mutated afterwards (see
    /// [`Netlist::gate_mut`](crate::Netlist::gate_mut)) are covered by the
    /// `NET003` combinational-loop lint rule in `scap-lint`. Debug builds
    /// still assert; in release a loop would leave the looped gates out of
    /// [`Levelization::order`] instead of aborting mid-flow.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.num_gates();
        let mut level = vec![0u32; n];
        let mut indeg = vec![0u32; n];
        for (gi, g) in netlist.gates().iter().enumerate() {
            for &inp in &g.inputs {
                if let Some(NetSource::Gate(_)) = netlist.net(inp).source {
                    indeg[gi] += 1;
                }
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<u32> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i as u32)
            .collect();
        while let Some(gi) = queue.pop_front() {
            order.push(GateId::new(gi));
            let out = netlist.gate(GateId::new(gi)).output;
            for &succ in netlist.fanout_gates(out) {
                let s = succ.index();
                level[s] = level[s].max(level[gi as usize] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(succ.raw());
                }
            }
        }
        debug_assert_eq!(order.len(), n, "combinational loop in levelization");
        Levelization { level, order }
    }

    /// Topological level of a gate.
    #[inline]
    pub fn level(&self, gate: GateId) -> u32 {
        self.level[gate.index()]
    }

    /// Gates in a valid (level-consistent) evaluation order.
    #[inline]
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Maximum level (logic depth − 1), or 0 for an empty netlist.
    pub fn max_level(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }
}

/// A transitive fanin or fanout cone of a net.
#[derive(Clone, Debug, Default)]
pub struct Cone {
    /// Gates in the cone.
    pub gates: Vec<GateId>,
    /// Flops at the cone boundary (fanin: Q sources; fanout: D readers).
    pub flops: Vec<FlopId>,
    /// Primary inputs reached (fanin cones only).
    pub primary_inputs: Vec<NetId>,
}

impl Cone {
    /// Transitive fanin cone of `net`, stopping at flop Q outputs, primary
    /// inputs and constants.
    pub fn fanin(netlist: &Netlist, net: NetId) -> Self {
        let mut cone = Cone::default();
        let mut seen_net = vec![false; netlist.num_nets()];
        let mut stack = vec![net];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen_net[n.index()], true) {
                continue;
            }
            match netlist.net(n).source {
                Some(NetSource::Gate(g)) => {
                    cone.gates.push(g);
                    stack.extend(netlist.gate(g).inputs.iter().copied());
                }
                Some(NetSource::Flop(f)) => cone.flops.push(f),
                Some(NetSource::PrimaryInput) => cone.primary_inputs.push(n),
                Some(NetSource::Const(_)) | None => {}
            }
        }
        cone
    }

    /// Transitive fanout cone of `net`, stopping at flop D inputs and
    /// primary outputs.
    pub fn fanout(netlist: &Netlist, net: NetId) -> Self {
        let mut cone = Cone::default();
        let mut seen_net = vec![false; netlist.num_nets()];
        let mut stack = vec![net];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen_net[n.index()], true) {
                continue;
            }
            cone.flops.extend_from_slice(netlist.fanout_flops(n));
            for &g in netlist.fanout_gates(n) {
                cone.gates.push(g);
                stack.push(netlist.gate(g).output);
            }
        }
        // A net with heavy reconvergence can push duplicate gates: dedup.
        cone.gates.sort_unstable();
        cone.gates.dedup();
        cone.flops.sort_unstable();
        cone.flops.dedup();
        cone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, ClockEdge, NetlistBuilder};

    /// a --inv--> y --inv--> d --ff--> q --inv--> z(po)
    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let d = b.add_net("d");
        let q = b.add_net("q");
        let z = b.add_net("z");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_gate(CellKind::Inv, &[y], d, blk).unwrap();
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        b.add_gate(CellKind::Inv, &[q], z, blk).unwrap();
        b.add_primary_output(z);
        b.finish().unwrap()
    }

    #[test]
    fn levels_increase_along_paths() {
        let n = chain();
        let lv = Levelization::build(&n);
        assert_eq!(lv.level(GateId::new(0)), 0);
        assert_eq!(lv.level(GateId::new(1)), 1);
        // Gate after the flop restarts at level 0.
        assert_eq!(lv.level(GateId::new(2)), 0);
        assert_eq!(lv.max_level(), 1);
    }

    #[test]
    fn order_respects_dependencies() {
        let n = chain();
        let lv = Levelization::build(&n);
        let pos: Vec<usize> = (0..n.num_gates())
            .map(|g| {
                lv.order()
                    .iter()
                    .position(|&x| x == GateId::new(g as u32))
                    .unwrap()
            })
            .collect();
        assert!(pos[0] < pos[1]);
    }

    #[test]
    fn fanin_cone_stops_at_flop() {
        let n = chain();
        let z = n.primary_outputs()[0];
        let cone = Cone::fanin(&n, z);
        assert_eq!(cone.gates.len(), 1); // just the inverter after the flop
        assert_eq!(cone.flops.len(), 1);
        assert!(cone.primary_inputs.is_empty());
    }

    #[test]
    fn fanin_cone_reaches_primary_inputs() {
        let n = chain();
        let d = n.flop(FlopId::new(0)).d;
        let cone = Cone::fanin(&n, d);
        assert_eq!(cone.gates.len(), 2);
        assert_eq!(cone.primary_inputs.len(), 1);
    }

    #[test]
    fn fanout_cone_collects_downstream() {
        let n = chain();
        let a = n.primary_inputs()[0];
        let cone = Cone::fanout(&n, a);
        assert_eq!(cone.gates.len(), 2); // two inverters before the flop
        assert_eq!(cone.flops.len(), 1); // the flop D pin
    }
}
