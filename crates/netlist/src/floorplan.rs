//! Die geometry, block rectangles and cell placement.
//!
//! Stands in for the Cadence SOC Encounter place-and-route database the
//! paper uses: every gate and flop gets a physical location inside its
//! block's rectangle, and the power crate maps locations onto power-grid
//! nodes.

use crate::{BlockId, FlopId, GateId, Netlist};
use serde::{Deserialize, Serialize};

/// A point on the die, in microns.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate, µm.
    pub x: f64,
    /// Y coordinate, µm.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Manhattan distance to another point, µm.
    #[inline]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// An axis-aligned rectangle on the die, in microns.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    pub const fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            min: Point::new(x0, y0),
            max: Point::new(x1, y1),
        }
    }

    /// Width in µm.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in µm.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in µm².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }

    /// Whether the point lies inside (inclusive of edges).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

/// The die outline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Die {
    /// Die boundary rectangle.
    pub outline: Rect,
}

impl Die {
    /// A square die of the given side length in µm.
    pub const fn square(side_um: f64) -> Self {
        Die {
            outline: Rect::new(0.0, 0.0, side_um, side_um),
        }
    }
}

/// Per-instance placement coordinates.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Placement {
    gate_xy: Vec<Point>,
    flop_xy: Vec<Point>,
}

impl Placement {
    /// Creates a placement from per-gate and per-flop coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with the netlist (checked by
    /// [`Floorplan::new`]).
    pub fn new(gate_xy: Vec<Point>, flop_xy: Vec<Point>) -> Self {
        Placement { gate_xy, flop_xy }
    }

    /// Location of a gate.
    #[inline]
    pub fn gate(&self, id: GateId) -> Point {
        self.gate_xy[id.index()]
    }

    /// Location of a flop.
    #[inline]
    pub fn flop(&self, id: FlopId) -> Point {
        self.flop_xy[id.index()]
    }

    /// Number of placed gates.
    pub fn num_gates(&self) -> usize {
        self.gate_xy.len()
    }

    /// Number of placed flops.
    pub fn num_flops(&self) -> usize {
        self.flop_xy.len()
    }
}

/// Die + block rectangles + instance placement.
///
/// # Example
///
/// ```
/// use scap_netlist::{Die, Floorplan, Placement, Point, Rect};
/// # use scap_netlist::{CellKind, NetlistBuilder};
///
/// # fn main() -> Result<(), scap_netlist::BuildError> {
/// # let mut b = NetlistBuilder::new("d");
/// # let blk = b.add_block("B1");
/// # let a = b.add_primary_input("a");
/// # let y = b.add_net("y");
/// # b.add_gate(CellKind::Inv, &[a], y, blk)?;
/// # let netlist = b.finish()?;
/// let die = Die::square(1000.0);
/// let blocks = vec![Rect::new(0.0, 0.0, 1000.0, 1000.0)];
/// let placement = Placement::new(vec![Point::new(10.0, 20.0)], vec![]);
/// let fp = Floorplan::new(&netlist, die, blocks, placement);
/// assert!(fp.die.outline.contains(fp.placement.gate(scap_netlist::GateId::new(0))));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Floorplan {
    /// The die outline.
    pub die: Die,
    /// Rectangle of each block, indexed by [`BlockId::index`].
    pub block_rects: Vec<Rect>,
    /// Instance locations.
    pub placement: Placement,
}

impl Floorplan {
    /// Assembles a floorplan, validating that placement covers the netlist.
    ///
    /// # Panics
    ///
    /// Panics if `placement` does not have exactly one coordinate per gate
    /// and per flop, or if `block_rects` does not cover every block id.
    pub fn new(netlist: &Netlist, die: Die, block_rects: Vec<Rect>, placement: Placement) -> Self {
        assert_eq!(
            placement.num_gates(),
            netlist.num_gates(),
            "placement must cover every gate"
        );
        assert_eq!(
            placement.num_flops(),
            netlist.num_flops(),
            "placement must cover every flop"
        );
        assert_eq!(
            block_rects.len(),
            netlist.blocks().len(),
            "one rectangle per block"
        );
        Floorplan {
            die,
            block_rects,
            placement,
        }
    }

    /// Rectangle of a block.
    #[inline]
    pub fn block_rect(&self, block: BlockId) -> Rect {
        self.block_rects[block.index()]
    }

    /// Estimated wire length of a net: Manhattan half-perimeter over the
    /// driver and reader pins, µm.
    pub fn net_wirelength_um(&self, netlist: &Netlist, net: crate::NetId) -> f64 {
        use crate::NetSource;
        let mut pts: Vec<Point> = Vec::new();
        match netlist.net(net).source {
            Some(NetSource::Gate(g)) => pts.push(self.placement.gate(g)),
            Some(NetSource::Flop(f)) => pts.push(self.placement.flop(f)),
            _ => {}
        }
        for &g in netlist.fanout_gates(net) {
            pts.push(self.placement.gate(g));
        }
        for &f in netlist.fanout_flops(net) {
            pts.push(self.placement.flop(f));
        }
        if pts.len() < 2 {
            return 0.0;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for p in &pts {
            x0 = x0.min(p.x);
            x1 = x1.max(p.x);
            y0 = y0.min(p.y);
            y1 = y1.max(p.y);
        }
        (x1 - x0) + (y1 - y0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, ClockEdge, NetlistBuilder};

    #[test]
    fn rect_geometry() {
        let r = Rect::new(0.0, 0.0, 10.0, 20.0);
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 20.0);
        assert_eq!(r.area(), 200.0);
        assert_eq!(r.center(), Point::new(5.0, 10.0));
        assert!(r.contains(Point::new(10.0, 0.0)));
        assert!(!r.contains(Point::new(10.1, 0.0)));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Point::new(1.0, 2.0).manhattan(Point::new(4.0, 6.0)), 7.0);
    }

    #[test]
    fn wirelength_is_half_perimeter() {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let q = b.add_net("q");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_flop("ff", y, q, clk, ClockEdge::Rising, blk).unwrap();
        let n = b.finish().unwrap();
        let placement = Placement::new(vec![Point::new(0.0, 0.0)], vec![Point::new(30.0, 40.0)]);
        let fp = Floorplan::new(
            &n,
            Die::square(100.0),
            vec![Rect::new(0.0, 0.0, 100.0, 100.0)],
            placement,
        );
        // Net y: driver gate at (0,0), flop at (30,40) -> HPWL 70.
        assert_eq!(fp.net_wirelength_um(&n, y), 70.0);
        // Primary input a has a single pin reader and no placed driver.
        assert_eq!(fp.net_wirelength_um(&n, a), 0.0);
    }

    #[test]
    #[should_panic(expected = "placement must cover every gate")]
    fn floorplan_validates_counts() {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        let n = b.finish().unwrap();
        let _ = Floorplan::new(
            &n,
            Die::square(10.0),
            vec![Rect::new(0.0, 0.0, 10.0, 10.0)],
            Placement::default(),
        );
    }
}
