//! Strongly-typed index newtypes for netlist entities.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index, suitable for indexing dense vectors.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(v: $name) -> u32 {
                v.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a net (a single-driver wire).
    NetId,
    "n"
);
id_type!(
    /// Identifier of a combinational gate instance.
    GateId,
    "g"
);
id_type!(
    /// Identifier of a flip-flop instance.
    FlopId,
    "ff"
);
id_type!(
    /// Identifier of a hierarchical block (e.g. `B5`).
    BlockId,
    "blk"
);
id_type!(
    /// Identifier of a clock domain (e.g. `clka`).
    ClockId,
    "clk"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_raw_value() {
        let id = NetId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NetId::from(42u32), id);
        assert_eq!(u32::from(id), 42);
    }

    #[test]
    fn debug_and_display_are_tagged() {
        assert_eq!(format!("{:?}", GateId::new(7)), "g7");
        assert_eq!(format!("{}", BlockId::new(3)), "blk3");
        assert_eq!(format!("{}", ClockId::new(0)), "clk0");
        assert_eq!(format!("{}", FlopId::new(9)), "ff9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId::new(1) < NetId::new(2));
    }
}
