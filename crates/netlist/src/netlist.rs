//! The flat gate-level netlist data structure.

use crate::{BlockId, CellKind, ClockId, FlopId, GateId, Library, NetId};
use serde::{Deserialize, Serialize};

/// What drives a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetSource {
    /// Driven by a combinational gate output.
    Gate(GateId),
    /// Driven by a flip-flop Q output.
    Flop(FlopId),
    /// A primary input pin.
    PrimaryInput,
    /// Tied to a constant value.
    Const(bool),
}

/// A single-driver wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Hierarchical net name.
    pub name: String,
    /// The driver; `None` only transiently during building.
    pub source: Option<NetSource>,
}

/// A combinational gate instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Cell function.
    pub kind: CellKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
    /// Owning hierarchical block.
    pub block: BlockId,
}

/// Active clock edge of a flop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockEdge {
    /// Rising-edge triggered (the common case).
    Rising,
    /// Falling-edge triggered; the paper's design has 22 such flops on a
    /// dedicated scan chain.
    Falling,
}

/// Scan configuration of a flop, assigned by scan insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanRole {
    /// Which scan chain the cell is stitched into.
    pub chain: u16,
    /// Position within the chain, 0 = closest to scan-in.
    pub position: u32,
}

/// A (scan-able) D flip-flop instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Flop {
    /// Instance name.
    pub name: String,
    /// Functional data input net.
    pub d: NetId,
    /// Data output net.
    pub q: NetId,
    /// Clock domain driving this flop.
    pub clock: ClockId,
    /// Active clock edge.
    pub edge: ClockEdge,
    /// Owning hierarchical block.
    pub block: BlockId,
    /// Scan-chain membership, once scan has been inserted.
    pub scan: Option<ScanRole>,
}

/// A hierarchical block (the paper's B1…B6).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Block name, e.g. `"B5"`.
    pub name: String,
}

/// A clock domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Domain name, e.g. `"clka"`.
    pub name: String,
    /// Functional (at-speed) frequency in Hz.
    pub frequency_hz: f64,
}

impl ClockDomain {
    /// Clock period in picoseconds.
    #[inline]
    pub fn period_ps(&self) -> f64 {
        1.0e12 / self.frequency_hz
    }
}

/// A flat gate-level netlist with blocks and clock domains.
///
/// Construct via [`NetlistBuilder`](crate::NetlistBuilder); the structure is
/// immutable afterwards except for scan-role annotation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// Technology library the design is mapped to.
    pub library: Library,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    flops: Vec<Flop>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    blocks: Vec<Block>,
    clocks: Vec<ClockDomain>,
    /// Fanout lists per net: gates that read it.
    fanout_gates: Vec<Vec<GateId>>,
    /// Fanout lists per net: flop D pins that read it.
    fanout_flops: Vec<Vec<FlopId>>,
}

impl Netlist {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        library: Library,
        nets: Vec<Net>,
        gates: Vec<Gate>,
        flops: Vec<Flop>,
        primary_inputs: Vec<NetId>,
        primary_outputs: Vec<NetId>,
        blocks: Vec<Block>,
        clocks: Vec<ClockDomain>,
    ) -> Self {
        let mut fanout_gates = vec![Vec::new(); nets.len()];
        let mut fanout_flops = vec![Vec::new(); nets.len()];
        for (i, g) in gates.iter().enumerate() {
            for &inp in &g.inputs {
                fanout_gates[inp.index()].push(GateId::new(i as u32));
            }
        }
        for (i, ff) in flops.iter().enumerate() {
            fanout_flops[ff.d.index()].push(FlopId::new(i as u32));
        }
        Netlist {
            name,
            library,
            nets,
            gates,
            flops,
            primary_inputs,
            primary_outputs,
            blocks,
            clocks,
            fanout_gates,
            fanout_flops,
        }
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of combinational gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    #[inline]
    pub fn num_flops(&self) -> usize {
        self.flops.len()
    }

    /// A net by id.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// A gate by id.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// A flop by id.
    #[inline]
    pub fn flop(&self, id: FlopId) -> &Flop {
        &self.flops[id.index()]
    }

    /// A block by id.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// A clock domain by id.
    #[inline]
    pub fn clock(&self, id: ClockId) -> &ClockDomain {
        &self.clocks[id.index()]
    }

    /// All gates, indexable by [`GateId::index`].
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All flops, indexable by [`FlopId::index`].
    #[inline]
    pub fn flops(&self) -> &[Flop] {
        &self.flops
    }

    /// All nets, indexable by [`NetId::index`].
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All blocks.
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All clock domains.
    #[inline]
    pub fn clocks(&self) -> &[ClockDomain] {
        &self.clocks
    }

    /// Primary input nets.
    #[inline]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets.
    #[inline]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Gates whose inputs include `net`.
    #[inline]
    pub fn fanout_gates(&self, net: NetId) -> &[GateId] {
        &self.fanout_gates[net.index()]
    }

    /// Flops whose D pin reads `net`.
    #[inline]
    pub fn fanout_flops(&self, net: NetId) -> &[FlopId] {
        &self.fanout_flops[net.index()]
    }

    /// Iterator over flop ids in a given clock domain.
    pub fn flops_in_clock(&self, clock: ClockId) -> impl Iterator<Item = FlopId> + '_ {
        self.flops
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.clock == clock)
            .map(|(i, _)| FlopId::new(i as u32))
    }

    /// Iterator over flop ids owned by a block.
    pub fn flops_in_block(&self, block: BlockId) -> impl Iterator<Item = FlopId> + '_ {
        self.flops
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.block == block)
            .map(|(i, _)| FlopId::new(i as u32))
    }

    /// Iterator over gate ids owned by a block.
    pub fn gates_in_block(&self, block: BlockId) -> impl Iterator<Item = GateId> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(move |(_, g)| g.block == block)
            .map(|(i, _)| GateId::new(i as u32))
    }

    /// Total load capacitance seen by a net's driver: the sum of reader pin
    /// capacitances plus the driver's own output capacitance (wire cap is
    /// added by the timing crate, which knows placement).
    pub fn pin_load_ff(&self, net: NetId) -> f64 {
        let lib = &self.library;
        let mut cap = match self.net(net).source {
            Some(NetSource::Gate(g)) => lib.cell(self.gate(g).kind).output_cap_ff,
            Some(NetSource::Flop(_)) => lib.flop().output_cap_ff,
            _ => 0.0,
        };
        for &g in self.fanout_gates(net) {
            cap += lib.cell(self.gate(g).kind).input_cap_ff;
        }
        cap += self.fanout_flops(net).len() as f64 * lib.flop().input_cap_ff;
        cap
    }

    /// Assigns scan roles; used by the DFT crate after stitching.
    pub fn set_scan_role(&mut self, flop: FlopId, role: ScanRole) {
        self.flops[flop.index()].scan = Some(role);
    }

    /// Mutable access to a net — **invariant-breaking**.
    ///
    /// Exists so defect-injection tests (and lint fixtures) can corrupt a
    /// built design; nothing in the production flow calls it. Mutating a
    /// net's `source` can violate the single-driver / no-floating-net
    /// invariants the rest of the workspace assumes, and the precomputed
    /// [`Netlist::fanout_gates`] / [`Netlist::fanout_flops`] lists are
    /// **not** updated. `scap-lint` deliberately recomputes connectivity
    /// from the gate/flop tables so it still sees such corruption.
    pub fn net_mut(&mut self, id: NetId) -> &mut Net {
        &mut self.nets[id.index()]
    }

    /// Mutable access to a gate — **invariant-breaking**; see
    /// [`Netlist::net_mut`] for the caveats.
    pub fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.index()]
    }

    /// Mutable access to a flop — **invariant-breaking**; see
    /// [`Netlist::net_mut`] for the caveats.
    pub fn flop_mut(&mut self, id: FlopId) -> &mut Flop {
        &mut self.flops[id.index()]
    }

    /// Mutable access to a clock domain — **invariant-breaking**; see
    /// [`Netlist::net_mut`] for the caveats.
    pub fn clock_mut(&mut self, id: ClockId) -> &mut ClockDomain {
        &mut self.clocks[id.index()]
    }

    /// The id of the dominant clock domain: the one controlling the most
    /// scan flops (the paper's `clka`).
    pub fn dominant_clock(&self) -> Option<ClockId> {
        let mut counts = vec![0usize; self.clocks.len()];
        for f in &self.flops {
            counts[f.clock.index()] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| ClockId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100.0e6);
        let a = b.add_primary_input("a");
        let bb = b.add_primary_input("b");
        let q = b.add_net("q");
        let d = b.add_net("d");
        b.add_gate(CellKind::Nand2, &[a, bb], d, blk).unwrap();
        b.add_flop("ff0", d, q, clk, ClockEdge::Rising, blk)
            .unwrap();
        let out = b.add_net("out");
        b.add_gate(CellKind::Inv, &[q], out, blk).unwrap();
        b.add_primary_output(out);
        b.finish().unwrap()
    }

    #[test]
    fn fanout_lists_are_consistent() {
        let n = tiny();
        let q = n.flop(FlopId::new(0)).q;
        assert_eq!(n.fanout_gates(q).len(), 1);
        let d = n.flop(FlopId::new(0)).d;
        assert_eq!(n.fanout_flops(d), &[FlopId::new(0)]);
    }

    #[test]
    fn pin_load_accumulates_reader_caps() {
        let n = tiny();
        let q = n.flop(FlopId::new(0)).q;
        let inv_cin = n.library.cell(CellKind::Inv).input_cap_ff;
        let ff_cout = n.library.flop().output_cap_ff;
        assert!((n.pin_load_ff(q) - (inv_cin + ff_cout)).abs() < 1e-12);
    }

    #[test]
    fn dominant_clock_of_single_domain() {
        let n = tiny();
        assert_eq!(n.dominant_clock(), Some(ClockId::new(0)));
    }

    #[test]
    fn clock_period_conversion() {
        let d = ClockDomain {
            name: "clka".into(),
            frequency_hz: 50.0e6,
        };
        // The paper's clka patterns run on a 20 ns cycle.
        assert!((d.period_ps() - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn block_and_clock_iterators() {
        let n = tiny();
        assert_eq!(n.flops_in_block(BlockId::new(0)).count(), 1);
        assert_eq!(n.flops_in_clock(ClockId::new(0)).count(), 1);
        assert_eq!(n.gates_in_block(BlockId::new(0)).count(), 2);
    }
}
