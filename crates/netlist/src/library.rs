//! A 180 nm-class standard-cell library model.
//!
//! The numbers here stand in for the vendor library the paper uses
//! (Cadence GSCLib 0.18 µm, 1.8 V nominal). Downstream crates only consume
//! the *relationships* (pin capacitance, drive resistance, intrinsic
//! delay), so the absolute values need only be plausible for the node.

use crate::cell::{CellKind, ALL_KINDS};
use serde::{Deserialize, Serialize};

/// Electrical and physical parameters of one combinational cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Capacitance of each input pin, in femtofarads.
    pub input_cap_ff: f64,
    /// Self-capacitance at the output (drain/parasitic), in femtofarads.
    pub output_cap_ff: f64,
    /// Intrinsic (unloaded) rise delay, in picoseconds.
    pub rise_delay_ps: f64,
    /// Intrinsic (unloaded) fall delay, in picoseconds.
    pub fall_delay_ps: f64,
    /// Equivalent drive resistance, in kΩ. Delay grows by
    /// `drive_res_kohm × C_load_ff` picoseconds (kΩ·fF = ps).
    pub drive_res_kohm: f64,
    /// Cell area in µm².
    pub area_um2: f64,
}

/// Parameters of the scan flip-flop (SDFFX1-class cell).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlopParams {
    /// D-pin (and SI-pin) capacitance, fF.
    pub input_cap_ff: f64,
    /// Clock pin capacitance, fF.
    pub clock_cap_ff: f64,
    /// Output self-capacitance, fF.
    pub output_cap_ff: f64,
    /// Clock-to-Q delay, ps.
    pub clk_to_q_ps: f64,
    /// Setup time, ps.
    pub setup_ps: f64,
    /// Drive resistance of the Q output, kΩ.
    pub drive_res_kohm: f64,
    /// Cell area, µm².
    pub area_um2: f64,
}

/// A technology library: per-cell parameters plus global constants.
///
/// # Example
///
/// ```
/// use scap_netlist::{CellKind, Library};
///
/// let lib = Library::gsclib180();
/// assert_eq!(lib.vdd, 1.8);
/// assert!(lib.cell(CellKind::Nand2).input_cap_ff > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Library {
    /// Library name.
    pub name: String,
    /// Nominal supply voltage, volts.
    pub vdd: f64,
    /// Wire capacitance per micron of estimated length, fF/µm.
    pub wire_cap_ff_per_um: f64,
    /// Wire resistance per micron, Ω/µm (used by the grid model).
    pub wire_res_ohm_per_um: f64,
    /// Maximum load (wire + pins) a driver sees for *delay* purposes, fF.
    /// Long and high-fanout nets are assumed buffered by the physical-
    /// design flow, which bounds the RC any single stage drives; the full
    /// wire + pin charge still counts toward switching power.
    pub wire_cap_delay_limit_ff: f64,
    /// Non-linear delay-scaling factor `k_volt` from the vendor library:
    /// a ΔV volt supply droop scales cell delay by `1 + k_volt·ΔV`.
    /// The paper uses 0.9 (5 % voltage decrease → 9 % delay increase).
    pub k_volt_per_volt: f64,
    cells: Vec<CellParams>,
    flop: FlopParams,
}

impl Library {
    /// Builds the default 180 nm / 1.8 V library used by the case study.
    pub fn gsclib180() -> Self {
        let mut cells = Vec::with_capacity(ALL_KINDS.len());
        for kind in ALL_KINDS {
            cells.push(default_params(kind));
        }
        Library {
            name: "gsclib180-model".to_owned(),
            vdd: 1.8,
            wire_cap_ff_per_um: 0.2,
            wire_res_ohm_per_um: 0.08,
            wire_cap_delay_limit_ff: 40.0,
            // Paper §3.2: k_volt = 0.9, so ΔV = 0.1 V → 9 % delay increase.
            k_volt_per_volt: 0.9,
            cells,
            flop: FlopParams {
                input_cap_ff: 4.0,
                clock_cap_ff: 3.0,
                output_cap_ff: 5.0,
                clk_to_q_ps: 320.0,
                setup_ps: 180.0,
                drive_res_kohm: 6.0,
                area_um2: 120.0,
            },
        }
    }

    /// Parameters of a combinational cell.
    #[inline]
    pub fn cell(&self, kind: CellKind) -> &CellParams {
        &self.cells[kind_index(kind)]
    }

    /// Parameters of the scan flip-flop cell.
    #[inline]
    pub fn flop(&self) -> &FlopParams {
        &self.flop
    }

    /// Unloaded propagation delay of a cell (max of rise/fall), ps.
    #[inline]
    pub fn intrinsic_delay_ps(&self, kind: CellKind) -> f64 {
        let p = self.cell(kind);
        p.rise_delay_ps.max(p.fall_delay_ps)
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::gsclib180()
    }
}

fn kind_index(kind: CellKind) -> usize {
    ALL_KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("every CellKind is present in ALL_KINDS")
}

/// Plausible 180 nm X1-drive numbers; delays in the 60–250 ps range,
/// input caps of a few fF, drive resistances of a few kΩ.
fn default_params(kind: CellKind) -> CellParams {
    let (rise, fall, cin, res, area) = match kind {
        CellKind::Buf => (95.0, 90.0, 3.2, 4.0, 35.0),
        CellKind::Inv => (55.0, 45.0, 3.5, 5.0, 20.0),
        CellKind::And2 => (140.0, 130.0, 3.6, 5.5, 45.0),
        CellKind::And3 => (165.0, 155.0, 3.6, 5.8, 55.0),
        CellKind::Nand2 => (75.0, 60.0, 4.0, 5.2, 30.0),
        CellKind::Nand3 => (100.0, 85.0, 4.4, 5.6, 40.0),
        CellKind::Or2 => (150.0, 140.0, 3.6, 5.5, 45.0),
        CellKind::Or3 => (180.0, 165.0, 3.6, 5.9, 55.0),
        CellKind::Nor2 => (95.0, 65.0, 4.1, 5.4, 30.0),
        CellKind::Nor3 => (135.0, 80.0, 4.5, 6.0, 40.0),
        CellKind::Xor2 => (190.0, 185.0, 5.2, 6.2, 60.0),
        CellKind::Xnor2 => (195.0, 190.0, 5.2, 6.2, 60.0),
        CellKind::Mux2 => (170.0, 160.0, 4.8, 6.0, 65.0),
        CellKind::Aoi22 => (150.0, 110.0, 4.6, 6.4, 50.0),
        CellKind::Oai22 => (155.0, 115.0, 4.6, 6.4, 50.0),
    };
    CellParams {
        input_cap_ff: cin,
        output_cap_ff: cin * 0.8,
        rise_delay_ps: rise,
        fall_delay_ps: fall,
        drive_res_kohm: res,
        area_um2: area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_positive_params() {
        let lib = Library::gsclib180();
        for kind in ALL_KINDS {
            let p = lib.cell(kind);
            assert!(p.input_cap_ff > 0.0, "{kind:?}");
            assert!(p.rise_delay_ps > 0.0, "{kind:?}");
            assert!(p.fall_delay_ps > 0.0, "{kind:?}");
            assert!(p.drive_res_kohm > 0.0, "{kind:?}");
            assert!(p.area_um2 > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn operating_point_matches_paper() {
        let lib = Library::default();
        assert_eq!(lib.vdd, 1.8);
        // k_volt: 0.1 V droop → 9 % delay increase.
        let scale = 1.0 + lib.k_volt_per_volt * 0.1;
        assert!((scale - 1.09).abs() < 1e-9);
    }

    #[test]
    fn flop_params_are_plausible() {
        let lib = Library::gsclib180();
        let f = lib.flop();
        assert!(f.clk_to_q_ps > 0.0 && f.setup_ps > 0.0);
        assert!(f.area_um2 > lib.cell(CellKind::Inv).area_um2);
    }

    #[test]
    fn complex_cells_are_slower_than_inverter() {
        let lib = Library::gsclib180();
        assert!(lib.intrinsic_delay_ps(CellKind::Xor2) > lib.intrinsic_delay_ps(CellKind::Inv));
    }
}
