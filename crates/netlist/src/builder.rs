//! Incremental, validated netlist construction.

use crate::netlist::{Block, ClockDomain, Flop, Gate, Net};
use crate::{
    BlockId, BuildError, CellKind, ClockEdge, ClockId, FlopId, GateId, Library, NetId, NetSource,
    Netlist,
};

/// Builds a [`Netlist`] incrementally, enforcing single-driver nets,
/// correct gate arity and (at [`finish`](NetlistBuilder::finish) time)
/// full connectivity and acyclicity of the combinational graph.
///
/// # Example
///
/// ```
/// use scap_netlist::{CellKind, ClockEdge, NetlistBuilder};
///
/// # fn main() -> Result<(), scap_netlist::BuildError> {
/// let mut b = NetlistBuilder::new("d");
/// let blk = b.add_block("B1");
/// let clk = b.add_clock_domain("clka", 100.0e6);
/// let a = b.add_primary_input("a");
/// let y = b.add_net("y");
/// b.add_gate(CellKind::Inv, &[a], y, blk)?;
/// b.add_primary_output(y);
/// let n = b.finish()?;
/// assert_eq!(n.num_gates(), 1);
/// # let _ = clk;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    library: Library,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    flops: Vec<Flop>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    blocks: Vec<Block>,
    clocks: Vec<ClockDomain>,
}

impl NetlistBuilder {
    /// Creates an empty builder with the default 180 nm library.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_library(name, Library::default())
    }

    /// Creates an empty builder with an explicit library.
    pub fn with_library(name: impl Into<String>, library: Library) -> Self {
        NetlistBuilder {
            name: name.into(),
            library,
            nets: Vec::new(),
            gates: Vec::new(),
            flops: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            blocks: Vec::new(),
            clocks: Vec::new(),
        }
    }

    /// Registers a hierarchical block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.blocks.push(Block { name: name.into() });
        BlockId::new(self.blocks.len() as u32 - 1)
    }

    /// Registers a clock domain and returns its id.
    pub fn add_clock_domain(&mut self, name: impl Into<String>, frequency_hz: f64) -> ClockId {
        self.clocks.push(ClockDomain {
            name: name.into(),
            frequency_hz,
        });
        ClockId::new(self.clocks.len() as u32 - 1)
    }

    /// Creates an undriven net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.nets.push(Net {
            name: name.into(),
            source: None,
        });
        NetId::new(self.nets.len() as u32 - 1)
    }

    /// Creates a primary-input net.
    pub fn add_primary_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].source = Some(NetSource::PrimaryInput);
        self.primary_inputs.push(id);
        id
    }

    /// Creates a constant net tied to `value`.
    pub fn add_const(&mut self, name: impl Into<String>, value: bool) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].source = Some(NetSource::Const(value));
        id
    }

    /// Marks an existing net as a primary output.
    pub fn add_primary_output(&mut self, net: NetId) {
        self.primary_outputs.push(net);
    }

    /// Number of nets created so far.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates created so far.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of flops created so far.
    pub fn num_flops(&self) -> usize {
        self.flops.len()
    }

    /// Instantiates a combinational gate driving `output`.
    ///
    /// # Errors
    ///
    /// * [`BuildError::ArityMismatch`] if `inputs.len()` disagrees with
    ///   `kind`,
    /// * [`BuildError::UnknownNet`] if any net id is out of range,
    /// * [`BuildError::MultipleDrivers`] if `output` already has a driver.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
        block: BlockId,
    ) -> Result<GateId, BuildError> {
        let id = GateId::new(self.gates.len() as u32);
        if inputs.len() != kind.num_inputs() {
            return Err(BuildError::ArityMismatch {
                gate: id,
                expected: kind.num_inputs(),
                got: inputs.len(),
            });
        }
        for &n in inputs.iter().chain(std::iter::once(&output)) {
            if n.index() >= self.nets.len() {
                return Err(BuildError::UnknownNet { net: n });
            }
        }
        let slot = &mut self.nets[output.index()].source;
        if slot.is_some() {
            return Err(BuildError::MultipleDrivers { net: output });
        }
        *slot = Some(NetSource::Gate(id));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            block,
        });
        Ok(id)
    }

    /// Instantiates a D flip-flop with data input `d` and output `q`.
    ///
    /// # Errors
    ///
    /// * [`BuildError::UnknownNet`] for out-of-range nets,
    /// * [`BuildError::MultipleDrivers`] if `q` already has a driver.
    pub fn add_flop(
        &mut self,
        name: impl Into<String>,
        d: NetId,
        q: NetId,
        clock: ClockId,
        edge: ClockEdge,
        block: BlockId,
    ) -> Result<FlopId, BuildError> {
        for &n in &[d, q] {
            if n.index() >= self.nets.len() {
                return Err(BuildError::UnknownNet { net: n });
            }
        }
        let id = FlopId::new(self.flops.len() as u32);
        let slot = &mut self.nets[q.index()].source;
        if slot.is_some() {
            return Err(BuildError::MultipleDrivers { net: q });
        }
        *slot = Some(NetSource::Flop(id));
        self.flops.push(Flop {
            name: name.into(),
            d,
            q,
            clock,
            edge,
            block,
            scan: None,
        });
        Ok(id)
    }

    /// Validates connectivity and acyclicity and produces the immutable
    /// [`Netlist`].
    ///
    /// # Errors
    ///
    /// * [`BuildError::UndrivenNet`] if any net lacks a driver,
    /// * [`BuildError::CombinationalLoop`] if gates form a cycle (paths
    ///   through flops are legal and expected).
    pub fn finish(self) -> Result<Netlist, BuildError> {
        for (i, net) in self.nets.iter().enumerate() {
            if net.source.is_none() {
                return Err(BuildError::UndrivenNet {
                    net: NetId::new(i as u32),
                });
            }
        }
        // Kahn's algorithm over gates only; flop Q / PI / const nets are
        // sources. Detects combinational cycles.
        let mut indeg = vec![0u32; self.gates.len()];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                if let Some(NetSource::Gate(src)) = self.nets[inp.index()].source {
                    indeg[gi] += 1;
                    fanout[src.index()].push(gi as u32);
                }
            }
        }
        let mut queue: Vec<u32> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i as u32)
            .collect();
        let mut seen = 0usize;
        while let Some(g) = queue.pop() {
            seen += 1;
            for &succ in &fanout[g as usize] {
                indeg[succ as usize] -= 1;
                if indeg[succ as usize] == 0 {
                    queue.push(succ);
                }
            }
        }
        if seen != self.gates.len() {
            let culprit = indeg
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a gate with leftover in-degree");
            return Err(BuildError::CombinationalLoop {
                net: self.gates[culprit].output,
            });
        }
        Ok(Netlist::from_parts(
            self.name,
            self.library,
            self.nets,
            self.gates,
            self.flops,
            self.primary_inputs,
            self.primary_outputs,
            self.blocks,
            self.clocks,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (NetlistBuilder, BlockId, ClockId) {
        let mut b = NetlistBuilder::new("t");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100.0e6);
        (b, blk, clk)
    }

    #[test]
    fn rejects_double_driver() {
        let (mut b, blk, _) = base();
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        let err = b.add_gate(CellKind::Buf, &[a], y, blk).unwrap_err();
        assert!(matches!(err, BuildError::MultipleDrivers { .. }));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let (mut b, blk, _) = base();
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let err = b.add_gate(CellKind::Nand2, &[a], y, blk).unwrap_err();
        assert!(matches!(
            err,
            BuildError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejects_undriven_net_at_finish() {
        let (mut b, blk, _) = base();
        let floating = b.add_net("floating");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[floating], y, blk).unwrap();
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BuildError::UndrivenNet { .. }));
    }

    #[test]
    fn rejects_combinational_loop() {
        let (mut b, blk, _) = base();
        let x = b.add_net("x");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[x], y, blk).unwrap();
        b.add_gate(CellKind::Inv, &[y], x, blk).unwrap();
        let err = b.finish().unwrap_err();
        assert!(matches!(err, BuildError::CombinationalLoop { .. }));
    }

    #[test]
    fn loop_through_flop_is_legal() {
        let (mut b, blk, clk) = base();
        let q = b.add_net("q");
        let d = b.add_net("d");
        b.add_gate(CellKind::Inv, &[q], d, blk).unwrap();
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rejects_unknown_net_ids() {
        let (mut b, blk, clk) = base();
        let bogus = NetId::new(999);
        let y = b.add_net("y");
        assert!(matches!(
            b.add_gate(CellKind::Inv, &[bogus], y, blk),
            Err(BuildError::UnknownNet { .. })
        ));
        assert!(matches!(
            b.add_flop("f", bogus, y, clk, ClockEdge::Rising, blk),
            Err(BuildError::UnknownNet { .. })
        ));
    }

    #[test]
    fn const_nets_count_as_driven() {
        let (mut b, blk, _) = base();
        let one = b.add_const("tie1", true);
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[one], y, blk).unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.net(one).source, Some(NetSource::Const(true)));
    }

    #[test]
    fn flop_q_conflicts_with_gate_driver() {
        let (mut b, blk, clk) = base();
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        let err = b
            .add_flop("ff", a, y, clk, ClockEdge::Rising, blk)
            .unwrap_err();
        assert!(matches!(err, BuildError::MultipleDrivers { .. }));
    }
}
