//! Gate-level netlist infrastructure for the `scap-atpg` suite.
//!
//! This crate provides the structural substrate every other crate in the
//! workspace builds on:
//!
//! * [`Logic`] — three-valued (`0`/`1`/`X`) signal values and cell
//!   evaluation ([`CellKind::eval`]),
//! * [`Library`] — a 180 nm-class standard-cell library model (pin
//!   capacitance, intrinsic delay, drive resistance, area),
//! * [`Netlist`] — a flat gate-level netlist with combinational gates,
//!   scan-able flip-flops, hierarchical blocks and clock domains,
//! * [`NetlistBuilder`] — incremental, validated construction,
//! * [`Levelization`] — topological levels and cone extraction,
//! * [`Floorplan`] — die geometry, block rectangles and cell placement.
//!
//! # Example
//!
//! ```
//! use scap_netlist::{CellKind, Library, NetlistBuilder, ClockEdge, Logic};
//!
//! # fn main() -> Result<(), scap_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("demo");
//! let blk = b.add_block("B1");
//! let clk = b.add_clock_domain("clka", 100.0e6);
//! let a = b.add_primary_input("a");
//! let q = b.add_net("ff_q");
//! let d = b.add_net("ff_d");
//! let g = b.add_gate(CellKind::Nand2, &[a, q], d, blk)?;
//! let _ff = b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk)?;
//! let netlist = b.finish()?;
//! assert_eq!(netlist.gate(g).output, d);
//! assert_eq!(CellKind::Nand2.eval(&[Logic::One, Logic::Zero]), Logic::One);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod cell;
mod error;
mod floorplan;
mod ids;
mod library;
mod netlist;
mod topo;
mod value;
pub mod verilog;

pub use builder::NetlistBuilder;
pub use cell::CellKind;
pub use error::BuildError;
pub use floorplan::{Die, Floorplan, Placement, Point, Rect};
pub use ids::{BlockId, ClockId, FlopId, GateId, NetId};
pub use library::{CellParams, Library};
pub use netlist::{Block, ClockDomain, ClockEdge, Flop, Gate, Net, NetSource, Netlist, ScanRole};
pub use topo::{Cone, Levelization};
pub use value::Logic;
