//! Combinational cell kinds and their evaluation semantics.

use crate::Logic;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The function of a combinational standard cell.
///
/// Sequential cells (flip-flops) are *not* represented here; they are
/// first-class [`Flop`](crate::Flop) instances on the netlist so that scan
/// and clocking can be modeled explicitly.
///
/// # Example
///
/// ```
/// use scap_netlist::{CellKind, Logic};
///
/// assert_eq!(CellKind::Mux2.eval(&[Logic::One, Logic::Zero, Logic::One]), Logic::One);
/// assert_eq!(CellKind::Nor2.num_inputs(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CellKind {
    Buf,
    Inv,
    And2,
    And3,
    Nand2,
    Nand3,
    Or2,
    Or3,
    Nor2,
    Nor3,
    Xor2,
    Xnor2,
    /// 2:1 multiplexer; inputs are `[sel, a, b]`, output is `a` when
    /// `sel = 0`, `b` when `sel = 1`.
    Mux2,
    /// AND-OR-invert (2-2): `!((i0 & i1) | (i2 & i3))`.
    Aoi22,
    /// OR-AND-invert (2-2): `!((i0 | i1) & (i2 | i3))`.
    Oai22,
}

/// All cell kinds, for library construction and enumeration tests.
pub(crate) const ALL_KINDS: [CellKind; 15] = [
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And2,
    CellKind::And3,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Aoi22,
    CellKind::Oai22,
];

impl CellKind {
    /// Number of input pins of the cell.
    #[inline]
    pub const fn num_inputs(self) -> usize {
        match self {
            CellKind::Buf | CellKind::Inv => 1,
            CellKind::And2
            | CellKind::Nand2
            | CellKind::Or2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::And3 | CellKind::Nand3 | CellKind::Or3 | CellKind::Nor3 | CellKind::Mux2 => 3,
            CellKind::Aoi22 | CellKind::Oai22 => 4,
        }
    }

    /// Returns `true` when the cell output is the complement of its
    /// underlying monotone function (INV, NAND, NOR, XNOR, AOI, OAI).
    #[inline]
    pub const fn is_inverting(self) -> bool {
        matches!(
            self,
            CellKind::Inv
                | CellKind::Nand2
                | CellKind::Nand3
                | CellKind::Nor2
                | CellKind::Nor3
                | CellKind::Xnor2
                | CellKind::Aoi22
                | CellKind::Oai22
        )
    }

    /// Short library name of the cell (GSCLib-style).
    pub const fn name(self) -> &'static str {
        match self {
            CellKind::Buf => "BUFX2",
            CellKind::Inv => "INVX1",
            CellKind::And2 => "AND2X1",
            CellKind::And3 => "AND3X1",
            CellKind::Nand2 => "NAND2X1",
            CellKind::Nand3 => "NAND3X1",
            CellKind::Or2 => "OR2X1",
            CellKind::Or3 => "OR3X1",
            CellKind::Nor2 => "NOR2X1",
            CellKind::Nor3 => "NOR3X1",
            CellKind::Xor2 => "XOR2X1",
            CellKind::Xnor2 => "XNOR2X1",
            CellKind::Mux2 => "MX2X1",
            CellKind::Aoi22 => "AOI22X1",
            CellKind::Oai22 => "OAI22X1",
        }
    }

    /// Evaluates the cell under three-valued logic.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellKind::num_inputs`].
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "{self:?} expects {} inputs, got {}",
            self.num_inputs(),
            inputs.len()
        );
        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 | CellKind::And3 => inputs.iter().fold(Logic::One, |a, &b| a & b),
            CellKind::Nand2 | CellKind::Nand3 => !inputs.iter().fold(Logic::One, |a, &b| a & b),
            CellKind::Or2 | CellKind::Or3 => inputs.iter().fold(Logic::Zero, |a, &b| a | b),
            CellKind::Nor2 | CellKind::Nor3 => !inputs.iter().fold(Logic::Zero, |a, &b| a | b),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => match inputs[0] {
                Logic::Zero => inputs[1],
                Logic::One => inputs[2],
                Logic::X => {
                    // Both data inputs equal and known -> the select is
                    // irrelevant.
                    if inputs[1] == inputs[2] && inputs[1].is_known() {
                        inputs[1]
                    } else {
                        Logic::X
                    }
                }
            },
            CellKind::Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            CellKind::Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
        }
    }

    /// Evaluates the cell on fully-specified boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellKind::num_inputs`].
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 | CellKind::And3 => inputs.iter().all(|&b| b),
            CellKind::Nand2 | CellKind::Nand3 => !inputs.iter().all(|&b| b),
            CellKind::Or2 | CellKind::Or3 => inputs.iter().any(|&b| b),
            CellKind::Nor2 | CellKind::Nor3 => !inputs.iter().any(|&b| b),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            CellKind::Aoi22 => !((inputs[0] && inputs[1]) || (inputs[2] && inputs[3])),
            CellKind::Oai22 => !((inputs[0] || inputs[1]) && (inputs[2] || inputs[3])),
        }
    }

    /// Evaluates 64 patterns at once; each input is a 64-bit word carrying
    /// one pattern per bit position.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`CellKind::num_inputs`]
    /// (debug builds only; release indexes directly).
    #[inline]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        debug_assert_eq!(inputs.len(), self.num_inputs());
        match self {
            CellKind::Buf => inputs[0],
            CellKind::Inv => !inputs[0],
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Mux2 => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
            CellKind::Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            CellKind::Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
        }
    }
}

impl fmt::Debug for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks that `eval` on known values, `eval_bool` and
    /// `eval_word` agree for every cell kind.
    #[test]
    fn eval_variants_agree() {
        for kind in ALL_KINDS {
            let n = kind.num_inputs();
            for combo in 0u32..(1 << n) {
                let bools: Vec<bool> = (0..n).map(|i| combo >> i & 1 == 1).collect();
                let logics: Vec<Logic> = bools.iter().map(|&b| Logic::from(b)).collect();
                let words: Vec<u64> = bools.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let expect = kind.eval_bool(&bools);
                assert_eq!(
                    kind.eval(&logics),
                    Logic::from(expect),
                    "{kind:?} {bools:?} eval/eval_bool mismatch"
                );
                let word = kind.eval_word(&words);
                assert_eq!(
                    word,
                    if expect { !0u64 } else { 0 },
                    "{kind:?} {bools:?} eval_word mismatch"
                );
            }
        }
    }

    #[test]
    fn x_inputs_propagate_conservatively() {
        // An unknown on a non-controlling position yields X; a controlling
        // value dominates.
        assert_eq!(CellKind::And2.eval(&[Logic::X, Logic::Zero]), Logic::Zero);
        assert_eq!(CellKind::And2.eval(&[Logic::X, Logic::One]), Logic::X);
        assert_eq!(
            CellKind::Nor3.eval(&[Logic::X, Logic::One, Logic::X]),
            Logic::Zero
        );
        assert_eq!(
            CellKind::Nand3.eval(&[Logic::Zero, Logic::X, Logic::X]),
            Logic::One
        );
    }

    #[test]
    fn mux_with_unknown_select_but_equal_data() {
        assert_eq!(
            CellKind::Mux2.eval(&[Logic::X, Logic::One, Logic::One]),
            Logic::One
        );
        assert_eq!(
            CellKind::Mux2.eval(&[Logic::X, Logic::One, Logic::Zero]),
            Logic::X
        );
    }

    #[test]
    fn inverting_classification_matches_zero_input_vector() {
        // With an all-zero input every cell's output equals its "inverting"
        // nature for AND-like cells; spot-check a few identities instead of
        // a blanket rule.
        assert!(CellKind::Nand2.is_inverting());
        assert!(!CellKind::And2.is_inverting());
        assert!(CellKind::Aoi22.is_inverting());
        assert!(!CellKind::Mux2.is_inverting());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_panics_on_arity_mismatch() {
        CellKind::Xor2.eval(&[Logic::One]);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_KINDS.len());
    }
}
