//! The seeded SOC generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scap_dft::{insert_scan, ChainReport, ScanConfig};
use scap_netlist::{
    BlockId, CellKind, ClockEdge, ClockId, Die, Floorplan, NetId, Netlist, NetlistBuilder,
    Placement, Point, Rect,
};
use serde::{Deserialize, Serialize};

/// Generator parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Design size relative to the paper's chip (1.0 ≈ 23 K flops).
    pub scale: f64,
    /// RNG seed; the same seed always yields the same design.
    pub seed: u64,
    /// Combinational gates per flop (industrial designs run ~4–8).
    pub gates_per_flop: f64,
    /// Logic depth of the random clouds (levels between flops).
    pub logic_depth: u32,
    /// Scan chains to stitch.
    pub num_chains: u16,
    /// Fraction of block nets exported onto the inter-block "bus".
    pub bus_fraction: f64,
    /// Chip primary inputs.
    pub num_primary_inputs: usize,
}

impl SocConfig {
    /// The Turbo-Eagle preset at a given scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1.0`.
    pub fn turbo_eagle(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        SocConfig {
            scale,
            seed: 0x7EA61E,
            gates_per_flop: 4.5,
            logic_depth: 50,
            num_chains: 16,
            bus_fraction: 0.02,
            num_primary_inputs: (64.0 * scale.sqrt()).ceil() as usize,
        }
    }
}

/// One clock domain of a [`SocPlan`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainPlan {
    /// Domain name (e.g. `"clka"`).
    pub name: String,
    /// Functional frequency, Hz.
    pub frequency_hz: f64,
    /// Flop count at scale 1.0.
    pub flops: f64,
    /// Share of the domain's flops per block (must have one entry per
    /// block; shares should sum to ~1).
    pub block_shares: Vec<f64>,
}

/// The architectural plan a design is generated from: blocks, clock
/// domains and the falling-edge flop budget.
///
/// [`SocPlan::turbo_eagle`] is the paper's case-study chip; custom plans
/// let downstream users model their own SOC.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SocPlan {
    /// Block names, in floorplan order (the generator's floorplan expects
    /// exactly six blocks; index 4 is the hot center block).
    pub blocks: Vec<String>,
    /// Clock domains.
    pub domains: Vec<DomainPlan>,
    /// Falling-edge flops at scale 1.0 (assigned to the last block, first
    /// domain).
    pub negative_edge_flops: f64,
}

impl SocPlan {
    /// The paper's Table 2 plan: `clka` dominant at the 20 ns test cycle
    /// spanning B1–B6 (B5 the largest share), the other domains
    /// block-local, 22 falling-edge flops.
    pub fn turbo_eagle() -> Self {
        let d = |name: &str, hz: f64, flops: f64, shares: [f64; 6]| DomainPlan {
            name: name.to_owned(),
            frequency_hz: hz,
            flops,
            block_shares: shares.to_vec(),
        };
        SocPlan {
            blocks: (1..=6).map(|i| format!("B{i}")).collect(),
            domains: vec![
                d(
                    "clka",
                    50.0e6,
                    18_000.0,
                    [0.12, 0.10, 0.12, 0.08, 0.38, 0.20],
                ),
                d("clkb", 100.0e6, 1_473.0, [1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
                d("clkc", 33.0e6, 1_100.0, [0.0, 0.0, 1.0, 0.0, 0.0, 0.0]),
                d("clkd", 25.0e6, 900.0, [0.0, 0.0, 0.0, 0.0, 0.0, 1.0]),
                d("clke", 12.5e6, 800.0, [0.0, 0.0, 0.0, 0.0, 0.0, 1.0]),
                d("clkf", 66.0e6, 700.0, [0.0, 1.0, 0.0, 0.0, 0.0, 0.0]),
            ],
            negative_edge_flops: 22.0,
        }
    }
}

/// A generated design: netlist + floorplan + scan report.
#[derive(Clone, Debug)]
pub struct SocDesign {
    /// The gate-level netlist with scan inserted.
    pub netlist: Netlist,
    /// Die, block rectangles and placement.
    pub floorplan: Floorplan,
    /// Scan-chain summary.
    pub chains: ChainReport,
    /// The configuration that produced the design.
    pub config: SocConfig,
}

impl SocDesign {
    /// Generates a design from a configuration with the Turbo-Eagle plan
    /// (deterministic per seed).
    pub fn generate(config: &SocConfig) -> Self {
        Self::generate_with_plan(config, &SocPlan::turbo_eagle())
    }

    /// Generates a design from a configuration and an explicit plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no blocks/domains, if any domain's
    /// `block_shares` length disagrees with the block count, or if the
    /// plan does not have exactly six blocks (the built-in floorplan's
    /// layout).
    pub fn generate_with_plan(config: &SocConfig, plan: &SocPlan) -> Self {
        assert!(!plan.domains.is_empty(), "plan needs at least one domain");
        assert_eq!(
            plan.blocks.len(),
            6,
            "the built-in floorplan has six block slots"
        );
        for d in &plan.domains {
            assert_eq!(
                d.block_shares.len(),
                plan.blocks.len(),
                "domain {} shares must cover every block",
                d.name
            );
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut b = NetlistBuilder::new(format!("turbo-eagle-{:.3}", config.scale));
        let blocks: Vec<BlockId> = plan.blocks.iter().map(|n| b.add_block(n.clone())).collect();
        let clocks: Vec<ClockId> = plan
            .domains
            .iter()
            .map(|d| b.add_clock_domain(d.name.clone(), d.frequency_hz))
            .collect();

        // Chip primary inputs (the paper's design holds them constant in
        // test mode; they still feed logic).
        let pis: Vec<NetId> = (0..config.num_primary_inputs.max(4))
            .map(|i| b.add_primary_input(format!("pad_in{i}")))
            .collect();

        // Flop membership per (block, clock), with Q nets pre-created so
        // logic clouds can reference any flop in their block.
        let mut membership: Vec<(BlockId, ClockId, ClockEdge)> = Vec::new();
        for (di, domain) in plan.domains.iter().enumerate() {
            let total = (domain.flops * config.scale).round().max(4.0) as usize;
            for (bi, share) in domain.block_shares.iter().enumerate() {
                let k = (total as f64 * share).round() as usize;
                for _ in 0..k {
                    membership.push((blocks[bi], clocks[di], ClockEdge::Rising));
                }
            }
        }
        let neg = (plan.negative_edge_flops * config.scale).ceil().max(2.0) as usize;
        for _ in 0..neg {
            membership.push((
                *blocks.last().expect("plan has blocks"),
                clocks[0],
                ClockEdge::Falling,
            ));
        }
        let plan = membership;

        // Pre-create Q nets per flop, grouped by block, so logic clouds
        // can reference any flop in their block before the flop exists.
        let mut q_by_block: Vec<Vec<NetId>> = vec![Vec::new(); 6];
        let mut flop_q: Vec<NetId> = Vec::with_capacity(plan.len());
        for (i, &(blk, _, _)) in plan.iter().enumerate() {
            let q = b.add_net(format!("ff{i}_q"));
            q_by_block[blk.index()].push(q);
            flop_q.push(q);
        }

        // Logic clouds per block; blocks may import bus nets exported by
        // earlier blocks only (keeps the combinational graph acyclic).
        let mut bus: Vec<NetId> = pis.clone();
        // `zero_value[net]` is the net's value when every flop holds 0 and
        // every primary input is 0 — maintained incrementally so the
        // generator can make the all-zero state an exact fixed point (a
        // reset-like quiescent state, which is what makes the paper's
        // fill-0 procedure keep untargeted blocks quiet on real designs).
        let mut zero_value: Vec<bool> = vec![false; b.num_nets()];
        let mut d_assignment: Vec<(usize, NetId)> = Vec::new(); // flop index -> driver net
        let mut flops_so_far = 0usize;
        for bi in 0..6 {
            let block = blocks[bi];
            let flops_here: Vec<usize> = plan
                .iter()
                .enumerate()
                .filter(|(_, &(blk, _, _))| blk == block)
                .map(|(i, _)| i)
                .collect();
            let n_gates = ((flops_here.len() as f64) * config.gates_per_flop)
                .round()
                .max(4.0) as usize;
            let sources: Vec<NetId> = q_by_block[bi].clone();
            let cloud = build_cloud(
                &mut b,
                &mut rng,
                block,
                bi,
                &sources,
                &bus,
                n_gates,
                config.logic_depth,
                &mut zero_value,
            );
            // Export a slice of this block's nets onto the bus. Only
            // early-level nets are exported (bus signals are registered
            // near block boundaries in practice) so combinational depth
            // does not stack up across blocks.
            let exportable = &cloud.outputs[..cloud.outputs.len() / 5 + 1];
            let n_export = ((cloud.outputs.len() as f64) * config.bus_fraction).ceil() as usize;
            for k in 0..n_export.min(exportable.len()) {
                bus.push(exportable[k * exportable.len() / n_export.max(1)]);
            }
            // Hook flop D pins: reduce leftover (unconsumed) nets with
            // compactor gates so no logic dangles, then assign.
            let mut pool = cloud.unconsumed;
            while pool.len() > flops_here.len().max(1) {
                let take = 2.min(pool.len());
                let a = pool.swap_remove(rng.gen_range(0..pool.len()));
                let c = if take == 2 && !pool.is_empty() {
                    pool.swap_remove(rng.gen_range(0..pool.len()))
                } else {
                    a
                };
                let y = b.add_net(format!("b{bi}_red{}", pool.len()));
                let kind = if rng.gen() {
                    CellKind::Xor2
                } else {
                    CellKind::Or2
                };
                b.add_gate(kind, &[a, c], y, block).expect("compactor gate");
                let zv = kind.eval_bool(&[zero_value[a.index()], zero_value[c.index()]]);
                push_zero_value(&mut zero_value, y, zv);
                pool.push(y);
            }
            for (k, &fi) in flops_here.iter().enumerate() {
                let own_q = flop_q[fi];
                let mut driver = if k < pool.len() {
                    pool[k]
                } else if !cloud.outputs.is_empty() {
                    cloud.outputs[rng.gen_range(0..cloud.outputs.len())]
                } else {
                    sources[rng.gen_range(0..sources.len())]
                };
                // Never wire a flop to its own Q: a D = Q self-loop can
                // never launch a transition, poisoning testability.
                if driver == own_q {
                    driver = if !cloud.outputs.is_empty() {
                        cloud.outputs[rng.gen_range(0..cloud.outputs.len())]
                    } else {
                        sources[(sources.iter().position(|&s| s == own_q).unwrap_or(0) + 1)
                            % sources.len()]
                    };
                }
                // Pin the all-zero state as a fixed point: if this D would
                // sample 1 under the quiescent state, interpose an
                // inverter so the flop reloads 0.
                if zero_value[driver.index()] {
                    let y = b.add_net(format!("ff{fi}_dz"));
                    b.add_gate(CellKind::Inv, &[driver], y, block)
                        .expect("quiescence inverter");
                    push_zero_value(&mut zero_value, y, false);
                    driver = y;
                }
                d_assignment.push((fi, driver));
            }
            flops_so_far += flops_here.len();
        }
        debug_assert_eq!(flops_so_far, plan.len());

        // Wire each flop directly to its assigned driver net.
        d_assignment.sort_unstable_by_key(|&(fi, _)| fi);
        for &(fi, driver) in &d_assignment {
            let (blk, clk, edge) = plan[fi];
            b.add_flop(format!("ff{fi}"), driver, flop_q[fi], clk, edge, blk)
                .expect("flop wiring");
        }

        // A few observable pads.
        for k in 0..(4.0 * config.scale.sqrt()).ceil() as usize {
            let src = bus[rng.gen_range(0..bus.len())];
            b.add_primary_output(src);
            let _ = k;
        }

        let mut netlist = b.finish().expect("generated netlist is well-formed");

        // Floorplan: die sized for ~70 % utilization; B5 at the center.
        let cell_area: f64 = netlist
            .gates()
            .iter()
            .map(|g| netlist.library.cell(g.kind).area_um2)
            .sum::<f64>()
            + netlist.num_flops() as f64 * netlist.library.flop().area_um2;
        let side = (cell_area / 0.70).sqrt().max(200.0);
        let rects = block_rects(side);
        let mut gate_xy = Vec::with_capacity(netlist.num_gates());
        for g in netlist.gates() {
            gate_xy.push(random_in(&rects[g.block.index()], &mut rng));
        }
        let mut flop_xy = Vec::with_capacity(netlist.num_flops());
        for f in netlist.flops() {
            flop_xy.push(random_in(&rects[f.block.index()], &mut rng));
        }
        let floorplan = Floorplan::new(
            &netlist,
            Die::square(side),
            rects,
            Placement::new(gate_xy, flop_xy),
        );

        let chains = insert_scan(
            &mut netlist,
            &ScanConfig::new(config.num_chains),
            Some(&floorplan),
        );

        SocDesign {
            netlist,
            floorplan,
            chains,
            config: config.clone(),
        }
    }

    /// The dominant clock domain (always `clka` for the preset).
    pub fn dominant_clock(&self) -> ClockId {
        self.netlist.dominant_clock().expect("design has flops")
    }

    /// Block id by name (`"B5"` → id).
    pub fn block_named(&self, name: &str) -> Option<BlockId> {
        self.netlist
            .blocks()
            .iter()
            .position(|b| b.name == name)
            .map(|i| BlockId::new(i as u32))
    }
}

struct Cloud {
    outputs: Vec<NetId>,
    unconsumed: Vec<NetId>,
}

/// Builds one block's random logic: `depth` levels, every gate's first
/// input drawn from the unconsumed outputs of the previous level so that
/// (almost) nothing dangles.
#[allow(clippy::too_many_arguments)]
fn build_cloud(
    b: &mut NetlistBuilder,
    rng: &mut StdRng,
    block: BlockId,
    bi: usize,
    sources: &[NetId],
    bus: &[NetId],
    n_gates: usize,
    depth: u32,
    zero_value: &mut Vec<bool>,
) -> Cloud {
    // The mix is biased toward zero-preserving cells (AND/OR/XOR/MUX map
    // the all-zero state to zero) so that a 0-filled scan state is close
    // to a quiescent fixed point — the property real designs have that
    // makes the paper's fill-0 procedure effective. Roughly 1 in 5 cells
    // inverts, which keeps the logic expressive without turning the
    // all-zero state into a launch storm.
    const KINDS: [CellKind; 16] = [
        CellKind::And2,
        CellKind::And2,
        CellKind::And3,
        CellKind::Xor2,
        CellKind::Or2,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Xor2,
        CellKind::Xor2,
        CellKind::Mux2,
        CellKind::Mux2,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Inv,
        CellKind::Aoi22,
    ];
    if sources.is_empty() {
        return Cloud {
            outputs: Vec::new(),
            unconsumed: Vec::new(),
        };
    }
    // Level 0 is sized to consume every source (flop Q) so the whole scan
    // state actually drives logic; the remaining gate budget is spread
    // over the deeper levels.
    let level0 = sources.len().div_ceil(2).clamp(1, n_gates.max(1));
    let deeper_levels = (depth.max(2) as usize) - 1;
    let per_level = (n_gates.saturating_sub(level0) / deeper_levels).max(1);
    let mut all: Vec<NetId> = sources.to_vec();
    let mut unconsumed: Vec<NetId> = sources.to_vec();
    let mut outputs = Vec::new();
    let mut made = 0usize;
    for level in 0..depth {
        if made >= n_gates {
            break;
        }
        let width = if level == 0 { level0 } else { per_level };
        let mut next_unconsumed = Vec::new();
        for k in 0..width {
            if made >= n_gates {
                break;
            }
            let kind = KINDS[rng.gen_range(0..KINDS.len())];
            let mut ins = Vec::with_capacity(kind.num_inputs());
            // Drain the unconsumed pool in random order so every flop Q
            // reaches logic and nothing dangles.
            while ins.len() < kind.num_inputs().min(2) && !unconsumed.is_empty() {
                let pick = rng.gen_range(0..unconsumed.len());
                ins.push(unconsumed.swap_remove(pick));
            }
            while ins.len() < kind.num_inputs() {
                // Mostly local history, occasionally the bus.
                let n = if !bus.is_empty() && rng.gen_bool(0.04) {
                    bus[rng.gen_range(0..bus.len())]
                } else {
                    all[rng.gen_range(0..all.len())]
                };
                ins.push(n);
            }
            let y = b.add_net(format!("b{bi}_l{level}_{k}"));
            b.add_gate(kind, &ins, y, block).expect("cloud gate");
            let zin: Vec<bool> = ins.iter().map(|n| zero_value[n.index()]).collect();
            let zv = kind.eval_bool(&zin);
            push_zero_value(zero_value, y, zv);
            made += 1;
            all.push(y);
            outputs.push(y);
            next_unconsumed.push(y);
        }
        // Anything the level failed to consume stays in the pool.
        unconsumed.extend(next_unconsumed);
    }
    // Parity spine: an XOR chain with one tap per level. XOR propagates
    // unconditionally, so any activity entering the spine rides it to the
    // end — giving the design deep *sensitized* paths (the paper's design
    // shows switching time windows close to half the 20 ns cycle, which a
    // purely AND/OR cloud would not reproduce). Real SOCs carry similar
    // structures (parity/CRC/ECC chains).
    if outputs.len() >= 2 {
        // Tap only the earliest ~40 % of the cloud and bound each chain's
        // length so spine endpoints still meet timing at 20 ns (their
        // arrivals land around half the cycle, mirroring the paper's
        // observed 8.34 ns switching time windows). The number of parallel
        // spines scales with the cloud so the spine share of switching
        // activity is independent of design scale.
        let cut = (outputs.len() * 2 / 5).max(2);
        let taps_per_spine = 20usize.min(cut.max(2) - 1).max(1);
        let num_spines = (cut / 500 + 1).max(1);
        let early: Vec<NetId> = outputs[..cut].to_vec();
        for sp in 0..num_spines {
            let mut spine = early[sp % early.len()];
            let step = (cut / (taps_per_spine * num_spines)).max(1);
            let taps = early
                .iter()
                .copied()
                .skip(1 + sp)
                .step_by(step)
                .take(taps_per_spine);
            for (k, tap) in taps.enumerate() {
                let y = b.add_net(format!("b{bi}_spine{sp}_{k}"));
                b.add_gate(CellKind::Xor2, &[spine, tap], y, block)
                    .expect("spine gate");
                let zv = zero_value[spine.index()] ^ zero_value[tap.index()];
                push_zero_value(zero_value, y, zv);
                spine = y;
            }
            unconsumed.push(spine);
            outputs.push(spine);
        }
    }
    Cloud {
        outputs,
        unconsumed,
    }
}

/// Records a net's value under the all-zero quiescent state.
fn push_zero_value(zero_value: &mut Vec<bool>, net: NetId, value: bool) {
    if zero_value.len() <= net.index() {
        zero_value.resize(net.index() + 1, false);
    }
    zero_value[net.index()] = value;
}

/// The Figure 1-style floorplan: B5 large at the center, the rest around
/// the periphery.
fn block_rects(s: f64) -> Vec<Rect> {
    vec![
        Rect::new(0.00 * s, 0.00 * s, 0.28 * s, 1.00 * s), // B1 left strip
        Rect::new(0.30 * s, 0.00 * s, 1.00 * s, 0.28 * s), // B2 bottom strip
        Rect::new(0.77 * s, 0.30 * s, 1.00 * s, 1.00 * s), // B3 right strip
        Rect::new(0.30 * s, 0.77 * s, 0.55 * s, 1.00 * s), // B4 top-left
        Rect::new(0.30 * s, 0.30 * s, 0.75 * s, 0.75 * s), // B5 center
        Rect::new(0.57 * s, 0.77 * s, 0.75 * s, 1.00 * s), // B6 top-right
    ]
}

fn random_in(r: &Rect, rng: &mut StdRng) -> Point {
    Point::new(
        rng.gen_range(r.min.x..r.max.x),
        rng.gen_range(r.min.y..r.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SocConfig::turbo_eagle(0.01);
        let a = SocDesign::generate(&cfg);
        let b = SocDesign::generate(&cfg);
        assert_eq!(a.netlist.num_gates(), b.netlist.num_gates());
        assert_eq!(a.netlist.num_flops(), b.netlist.num_flops());
        assert_eq!(a.chains.lengths, b.chains.lengths);
    }

    #[test]
    fn structure_matches_the_paper_shape() {
        let d = SocDesign::generate(&SocConfig::turbo_eagle(0.02));
        assert_eq!(d.netlist.blocks().len(), 6);
        assert_eq!(d.netlist.clocks().len(), 6);
        assert_eq!(d.chains.num_chains(), 16);
        // clka dominates.
        let dom = d.dominant_clock();
        assert_eq!(d.netlist.clock(dom).name, "clka");
        // Falling-edge flops isolated on the last chain.
        assert!(d.chains.negative_edge_chain.is_some());
        // B5 has the most clka flops.
        let b5 = d.block_named("B5").unwrap();
        let count = |blk| d.netlist.flops_in_block(blk).count();
        for other in 0..6 {
            let o = BlockId::new(other);
            if o != b5 {
                assert!(count(b5) >= count(o), "B5 must be the largest block");
            }
        }
    }

    #[test]
    fn scale_controls_size_roughly_linearly() {
        let small = SocDesign::generate(&SocConfig::turbo_eagle(0.01));
        let large = SocDesign::generate(&SocConfig::turbo_eagle(0.04));
        let r = large.netlist.num_flops() as f64 / small.netlist.num_flops() as f64;
        assert!(r > 2.5 && r < 6.0, "flop ratio {r}");
    }

    #[test]
    fn all_cells_are_inside_their_block_rect() {
        let d = SocDesign::generate(&SocConfig::turbo_eagle(0.01));
        for (i, g) in d.netlist.gates().iter().enumerate() {
            let p = d
                .floorplan
                .placement
                .gate(scap_netlist::GateId::new(i as u32));
            assert!(
                d.floorplan.block_rect(g.block).contains(p),
                "gate {i} outside {:?}",
                g.block
            );
        }
        for (i, f) in d.netlist.flops().iter().enumerate() {
            let p = d
                .floorplan
                .placement
                .flop(scap_netlist::FlopId::new(i as u32));
            assert!(d.floorplan.block_rect(f.block).contains(p));
        }
    }

    #[test]
    fn little_logic_dangles() {
        let d = SocDesign::generate(&SocConfig::turbo_eagle(0.02));
        let n = &d.netlist;
        let mut dangling = 0usize;
        for (i, _) in n.nets().iter().enumerate() {
            let id = NetId::new(i as u32);
            let readers = n.fanout_gates(id).len() + n.fanout_flops(id).len();
            if readers == 0 && !n.primary_outputs().contains(&id) {
                dangling += 1;
            }
        }
        // Only a handful of exported-but-unused bus nets may dangle.
        assert!(
            dangling * 20 <= n.num_nets(),
            "{dangling} dangling nets out of {}",
            n.num_nets()
        );
    }

    #[test]
    fn custom_plan_generates_matching_structure() {
        let mut plan = SocPlan::turbo_eagle();
        plan.blocks = (0..6).map(|i| format!("CORE{i}")).collect();
        plan.domains.truncate(2);
        plan.domains[0].name = "cpu_clk".to_owned();
        plan.domains[0].block_shares = vec![0.5, 0.1, 0.1, 0.1, 0.1, 0.1];
        let cfg = SocConfig::turbo_eagle(0.01);
        let d = SocDesign::generate_with_plan(&cfg, &plan);
        assert_eq!(d.netlist.clocks().len(), 2);
        assert_eq!(
            d.netlist.clock(scap_netlist::ClockId::new(0)).name,
            "cpu_clk"
        );
        assert_eq!(d.netlist.blocks()[0].name, "CORE0");
        assert!(d.netlist.num_flops() > 50);
    }

    #[test]
    #[should_panic(expected = "shares must cover every block")]
    fn plan_share_width_is_validated() {
        let mut plan = SocPlan::turbo_eagle();
        plan.domains[0].block_shares.pop();
        let _ = SocDesign::generate_with_plan(&SocConfig::turbo_eagle(0.01), &plan);
    }

    /// The generator's headline invariant: the all-zero scan state is an
    /// exact fixed point — no flop launches when everything is 0-filled.
    /// This is what makes fill-0 keep untargeted blocks quiet.
    #[test]
    fn all_zero_state_is_quiescent() {
        use scap_netlist::Logic;
        use scap_sim::{loc, LogicSim};
        let d = SocDesign::generate(&SocConfig::turbo_eagle(0.015));
        let n = &d.netlist;
        let sim = LogicSim::new(n);
        let loads = vec![Logic::Zero; n.num_flops()];
        let pis = vec![Logic::Zero; n.primary_inputs().len()];
        let frames = loc::loc_frames(&sim, &loads, &pis, d.dominant_clock());
        for (i, v) in frames.state2.iter().enumerate() {
            assert_eq!(*v, Logic::Zero, "flop {i} must reload 0");
        }
    }

    #[test]
    fn gates_per_flop_is_respected() {
        let cfg = SocConfig::turbo_eagle(0.02);
        let d = SocDesign::generate(&cfg);
        let r = d.netlist.num_gates() as f64 / d.netlist.num_flops() as f64;
        assert!(
            r > 0.7 * cfg.gates_per_flop && r < 2.0 * cfg.gates_per_flop,
            "{r}"
        );
    }
}
