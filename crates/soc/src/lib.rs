//! Synthetic SOC generation modeled on the paper's case-study chip.
//!
//! The paper evaluates on *Turbo-Eagle*, a dual-processor 180 nm SOC with
//! six blocks (B1…B6) on an AMBA bus, six clock domains, ~23 K scan flops
//! in 16 chains and 22 falling-edge flops on a dedicated chain. The
//! netlist is proprietary, so this crate generates a seeded synthetic
//! design with the same *shape*:
//!
//! * per-domain flop counts follow the paper's Table 2 ratios (`clka`
//!   dominates with ~78 % of the flops and spans every block),
//! * block B5 sits at the die center with the highest cell density — the
//!   block the paper finds to dominate switching power and IR-drop,
//! * random logic clouds of configurable depth hang between scan flops,
//!   with every gate output consumed (no dead logic), plus a sprinkling
//!   of cross-block "bus" signals,
//! * placement is uniform inside each block's floorplan rectangle,
//! * scan is stitched by [`scap_dft::insert_scan`] over the placement.
//!
//! Everything is parameterized by a single [`SocConfig::scale`] so the
//! whole evaluation can run from laptop-sized (scale ≈ 0.05) to paper-
//! sized (scale = 1.0) designs.
//!
//! # Example
//!
//! ```
//! use scap_soc::{SocConfig, SocDesign};
//!
//! let design = SocDesign::generate(&SocConfig::turbo_eagle(0.01));
//! assert_eq!(design.netlist.blocks().len(), 6);
//! assert_eq!(design.netlist.clocks().len(), 6);
//! assert!(design.netlist.num_flops() > 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generate;
mod report;

pub use generate::{DomainPlan, SocConfig, SocDesign, SocPlan};
pub use report::{ClockDomainRow, DesignReport};
