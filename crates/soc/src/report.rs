//! Design characteristic reports (the paper's Tables 1 and 2).

use crate::SocDesign;
use scap_netlist::{ClockEdge, ClockId};
use scap_sim::FaultList;
use serde::{Deserialize, Serialize};

/// One row of the clock-domain table (paper Table 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClockDomainRow {
    /// Domain name.
    pub name: String,
    /// Scan cells controlled by the domain.
    pub scan_cells: usize,
    /// Functional frequency, MHz.
    pub frequency_mhz: f64,
    /// Names of the blocks covered.
    pub blocks_covered: Vec<String>,
}

/// Design characteristics (paper Table 1) plus the per-domain breakdown
/// (paper Table 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// Number of clock domains.
    pub clock_domains: usize,
    /// Number of scan chains.
    pub scan_chains: usize,
    /// Total scan flops.
    pub total_scan_flops: usize,
    /// Falling-edge scan flops.
    pub negative_edge_flops: usize,
    /// Uncollapsed transition-delay-fault count.
    pub transition_faults: usize,
    /// Collapsed (working-set) fault count.
    pub collapsed_faults: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// Per-domain rows, `clka` first.
    pub domains: Vec<ClockDomainRow>,
}

impl DesignReport {
    /// Builds the report for a generated design.
    pub fn build(design: &SocDesign) -> Self {
        let n = &design.netlist;
        let faults = FaultList::full(n);
        let negative_edge_flops = n
            .flops()
            .iter()
            .filter(|f| f.edge == ClockEdge::Falling)
            .count();
        let domains = (0..n.clocks().len())
            .map(|ci| {
                let clock = ClockId::new(ci as u32);
                let mut blocks: Vec<String> = n
                    .flops()
                    .iter()
                    .filter(|f| f.clock == clock)
                    .map(|f| n.block(f.block).name.clone())
                    .collect();
                blocks.sort();
                blocks.dedup();
                ClockDomainRow {
                    name: n.clock(clock).name.clone(),
                    scan_cells: n.flops_in_clock(clock).count(),
                    frequency_mhz: n.clock(clock).frequency_hz / 1.0e6,
                    blocks_covered: blocks,
                }
            })
            .collect();
        DesignReport {
            clock_domains: n.clocks().len(),
            scan_chains: design.chains.num_chains(),
            total_scan_flops: n.num_flops(),
            negative_edge_flops,
            transition_faults: faults.uncollapsed_count(),
            collapsed_faults: faults.faults().len(),
            gates: n.num_gates(),
            domains,
        }
    }

    /// Renders the Table 1 rows as `(label, value)` pairs.
    pub fn table1_rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("Clock Domains", self.clock_domains.to_string()),
            ("Scan Chains", self.scan_chains.to_string()),
            ("Total Scan Flops", self.total_scan_flops.to_string()),
            (
                "Negative Edge Scan Flops",
                self.negative_edge_flops.to_string(),
            ),
            (
                "Transition Delay Faults",
                self.transition_faults.to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SocConfig;

    #[test]
    fn report_matches_the_design() {
        let d = SocDesign::generate(&SocConfig::turbo_eagle(0.01));
        let r = DesignReport::build(&d);
        assert_eq!(r.clock_domains, 6);
        assert_eq!(r.scan_chains, 16);
        assert_eq!(r.total_scan_flops, d.netlist.num_flops());
        assert!(r.negative_edge_flops >= 1);
        assert!(r.transition_faults > r.collapsed_faults);
        assert_eq!(r.domains.len(), 6);
        assert_eq!(r.table1_rows().len(), 5);
    }

    #[test]
    fn clka_covers_every_block() {
        let d = SocDesign::generate(&SocConfig::turbo_eagle(0.02));
        let r = DesignReport::build(&d);
        let clka = &r.domains[0];
        assert_eq!(clka.name, "clka");
        assert_eq!(clka.blocks_covered.len(), 6, "{:?}", clka.blocks_covered);
        // Block-local domains cover exactly one block.
        let clkb = &r.domains[1];
        assert_eq!(clkb.blocks_covered, vec!["B1".to_string()]);
    }

    #[test]
    fn domain_flop_counts_sum_to_total() {
        let d = SocDesign::generate(&SocConfig::turbo_eagle(0.015));
        let r = DesignReport::build(&d);
        let sum: usize = r.domains.iter().map(|d| d.scan_cells).sum();
        assert_eq!(sum, r.total_scan_flops);
    }
}
