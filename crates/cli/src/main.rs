//! `scap` — command-line front-end for the supply-voltage-noise-aware
//! transition-delay-fault ATPG suite.
//!
//! ```text
//! scap generate --scale 0.01 [--verilog out.v]          design + Tables 1-2
//! scap atpg     --scale 0.01 [--flow noise-aware]       run a flow
//!               [--fill fill-0] [--stil out.stil] [--compact]
//! scap profile  --scale 0.01 [--flow conventional]      per-pattern SCAP
//! scap schedule --scale 0.01 --budget <mW>              session scheduling
//! scap lint     --scale 0.01 [--format json] [--deny warn]   design-rule check
//! ```
//!
//! Everything is regenerated deterministically from `--scale` (and the
//! built-in seed), so commands compose without intermediate files.

use scap::dft::FillPolicy;
use scap::{ablation, compact_patterns, experiments, flows, schedule, CaseStudy};
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = raw
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .inspect(|_| {
                        raw.next();
                    });
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Parses `--threads` and installs it as the process-wide worker
    /// count. Exits with a clean message on a malformed value.
    fn install_threads(&self) {
        let Some(raw) = self.get("threads") else {
            return;
        };
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => {
                scap_exec::set_default_threads(n);
            }
            _ => {
                eprintln!("error: --threads expects a positive integer, got '{raw}'");
                std::process::exit(2);
            }
        }
    }

    /// Parses and validates `--scale`, exiting with a clean message on a
    /// malformed or out-of-range value.
    fn scale(&self) -> f64 {
        let Some(raw) = self.get("scale") else {
            return 0.01;
        };
        match raw.parse::<f64>() {
            Ok(s) if s > 0.0 && s <= 1.0 => s,
            Ok(s) => {
                eprintln!("error: --scale must be in (0, 1], got {s}");
                std::process::exit(2);
            }
            Err(_) => {
                eprintln!("error: --scale expects a number, got '{raw}'");
                std::process::exit(2);
            }
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: scap <generate|atpg|profile|schedule|paths|lint|evaluate> [--scale S] [--threads N] [options]\n\
         \n  generate   build the case-study SOC; Tables 1-2; --verilog FILE to dump netlist\
         \n  atpg       run a flow: --flow conventional|noise-aware (default noise-aware),\
         \n             --fill random-fill|fill-0|fill-1|fill-adjacent, --stil FILE, --compact\
         \n  profile    per-pattern B5 SCAP of a flow vs the screening threshold;\
         \n             --metrics prints the pipeline counter breakdown\
         \n  schedule   power-constrained session scheduling: --budget MILLIWATTS\
         \n  paths      report the N worst timing paths: --count N\
         \n  lint       cross-layer design-rule check of the generated design, the\
         \n             noise-aware flow's patterns and the supply meshes;\
         \n             --format text|json, --deny warn to fail on warnings\
         \n             exit 0 clean, 1 findings at or above the deny level, 2 usage\
         \n  evaluate   every table and figure of the paper (long)\
         \n\
         \n  --threads N  worker threads for the parallel hot loops; always wins\
         \n               (precedence: --threads, then SCAP_THREADS env, then cores)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    args.install_threads();
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "generate" => generate(&args),
        "atpg" => atpg(&args),
        "profile" => profile(&args),
        "schedule" => schedule_cmd(&args),
        "paths" => paths(&args),
        "lint" => lint(&args),
        "evaluate" => evaluate(&args),
        _ => usage(),
    }
}

fn generate(args: &Args) -> ExitCode {
    let study = CaseStudy::new(args.scale());
    let report = experiments::table1(&study);
    println!("{}", experiments::render_table1(&report));
    println!("{}", experiments::render_table2(&report));
    if let Some(path) = args.get("verilog") {
        let text = scap::netlist::verilog::to_verilog(&study.design.netlist);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn pick_flow(args: &Args, study: &CaseStudy) -> flows::FlowResult {
    let fill = match args.get("fill") {
        Some("random-fill") | Some("random") => Some(FillPolicy::Random),
        Some("fill-0") => Some(FillPolicy::Zero),
        Some("fill-1") => Some(FillPolicy::One),
        Some("fill-adjacent") => Some(FillPolicy::Adjacent),
        _ => None,
    };
    match args.get("flow").unwrap_or("noise-aware") {
        "conventional" => flows::conventional_with(
            study,
            flows::flow_atpg_config(fill.unwrap_or(FillPolicy::Random)),
        ),
        _ => flows::noise_aware_with(
            study,
            flows::flow_atpg_config(fill.unwrap_or(FillPolicy::Zero)),
            &flows::paper_stages(study),
        ),
    }
}

fn atpg(args: &Args) -> ExitCode {
    let study = CaseStudy::new(args.scale());
    let mut flow = pick_flow(args, &study);
    println!(
        "{} patterns, {:.2} % fault coverage",
        flow.patterns.len(),
        100.0 * flow.fault_coverage()
    );
    if args.has("compact") {
        let (kept, compacted) = compact_patterns(
            &study.design.netlist,
            study.clka(),
            &flow.faults,
            &flow.patterns,
        );
        println!(
            "static compaction: {} -> {} patterns",
            flow.patterns.len(),
            kept.len()
        );
        flow.patterns = compacted;
    }
    if let Some(path) = args.get("stil") {
        let text = scap::dft::export::to_stil(&study.design.netlist, &flow.patterns);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn profile(args: &Args) -> ExitCode {
    // Collection is enabled *before* the run so the breakdown covers
    // design build, ATPG, grading and SCAP measurement alike.
    if args.has("metrics") {
        scap_obs::set_enabled(true);
    }
    let study = CaseStudy::new(args.scale());
    let flow = pick_flow(args, &study);
    let Some(b5) = study.design.block_named("B5") else {
        eprintln!("error: the generated design has no block named 'B5' to profile");
        return ExitCode::FAILURE;
    };
    let Some(&threshold) = experiments::scap_thresholds(&study).get(b5.index()) else {
        eprintln!("error: no screening threshold for block 'B5'");
        return ExitCode::FAILURE;
    };
    let series = experiments::scap_series(&study, &flow, b5, threshold);
    println!(
        "{}",
        experiments::render_scap_series("B5 SCAP profile", &series)
    );
    let sweep = ablation::threshold_sensitivity(&study, &flow, &[0.5, 1.0, 2.0]);
    for (f, above) in sweep {
        println!("threshold x{f}: {above} patterns above");
    }
    if args.has("metrics") {
        println!("\n{}", scap_obs::render(&scap_obs::snapshot()));
    }
    ExitCode::SUCCESS
}

fn schedule_cmd(args: &Args) -> ExitCode {
    let study = CaseStudy::new(args.scale());
    let flow = pick_flow(args, &study);
    let tests = schedule::block_tests_from_flow(&study, &flow);
    let serial = schedule::serial_length(&tests);
    let budget: f64 = args
        .get("budget")
        .and_then(|b| b.parse().ok())
        .unwrap_or_else(|| 2.0 * tests.iter().map(|t| t.power_mw).fold(0.0, f64::max));
    let plan = schedule::schedule(&tests, budget);
    println!("budget {budget:.2} mW | serial length {serial} patterns");
    for (i, s) in plan.sessions.iter().enumerate() {
        let names: Vec<String> = s
            .members
            .iter()
            .map(|m| study.design.netlist.block(m.block).name.clone())
            .collect();
        println!(
            "session {i}: {:<18} {:>7.2} mW  {:>6} patterns",
            names.join("+"),
            s.power_mw(),
            s.length()
        );
    }
    println!(
        "scheduled length {} patterns ({:.0} % of serial)",
        plan.total_length(),
        100.0 * plan.total_length() as f64 / serial.max(1) as f64
    );
    ExitCode::SUCCESS
}

/// `scap lint` — runs the full design-rule registry against the generated
/// design, the noise-aware flow's patterns and both supply meshes.
///
/// Exit codes: 0 clean, 1 findings at or above the deny level (errors, or
/// warnings too under `--deny warn`), 2 usage error.
fn lint(args: &Args) -> ExitCode {
    use scap::PatternAnalyzer;
    use scap_lint::{LintContext, MeshKind, MeshSpec, QuietSpec, ScreenSpec};

    let json = match args.get("format") {
        None => false,
        Some("text") => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("error: --format expects 'text' or 'json', got '{other}'");
            return ExitCode::from(2);
        }
    };
    let deny_warn = if args.has("deny") {
        match args.get("deny") {
            Some("warn") => true,
            other => {
                eprintln!(
                    "error: --deny expects 'warn', got '{}'",
                    other.unwrap_or("nothing")
                );
                return ExitCode::from(2);
            }
        }
    } else {
        false
    };

    let study = CaseStudy::new(args.scale());
    let flow = flows::noise_aware(&study);

    // Screen declaration: the flow's output is SCAP-screened, so measure
    // every pattern and declare the within-threshold ones as emitted; the
    // PAT003 rule then re-checks the declaration against the measurements.
    let thresholds = experiments::scap_thresholds(&study);
    let profile = PatternAnalyzer::new(&study).power_profile(&flow.patterns);
    let num_blocks = study.design.netlist.blocks().len();
    let pattern_block_mw: Vec<Vec<f64>> = profile
        .iter()
        .map(|p| {
            (0..num_blocks)
                .map(|b| p.scap_vdd_mw(scap::netlist::BlockId::new(b as u32)))
                .collect()
        })
        .collect();
    let emitted: Vec<usize> = pattern_block_mw
        .iter()
        .enumerate()
        .filter(|(_, row)| {
            row.iter()
                .zip(&thresholds)
                .all(|(&mw, &t)| mw <= t * (1.0 + 1e-9))
        })
        .map(|(p, _)| p)
        .collect();

    let grid = scap::power::PowerGrid::new(study.design.floorplan.die, study.grid);
    let ctx = LintContext::new(&study.design.netlist)
        .with_timing(&study.annotation, &study.clock_tree)
        .with_mesh(MeshSpec::from_grid(MeshKind::Vdd, &grid))
        .with_mesh(MeshSpec::from_grid(MeshKind::Vss, &grid))
        .with_patterns(&flow.patterns)
        .with_quiet(QuietSpec::from_staged_flow(
            &flows::paper_stages(&study),
            &flow.steps,
            flow.patterns.len(),
        ))
        .with_screen(ScreenSpec {
            thresholds_mw: thresholds,
            pattern_block_mw,
            emitted,
        });
    let report = scap_lint::run_all(&ctx);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 || (deny_warn && report.warnings() > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn evaluate(args: &Args) -> ExitCode {
    let study = CaseStudy::new(args.scale());
    let report = experiments::table1(&study);
    println!("{}", experiments::render_table1(&report));
    let t3 = experiments::table3(&study);
    println!("{}", experiments::render_table3(&study, &t3));
    let conv = flows::conventional(&study);
    let na = flows::noise_aware(&study);
    println!(
        "{}",
        experiments::render_table4(&experiments::table4(&study, &conv))
    );
    println!(
        "{}",
        experiments::render_scap_series("Figure 2", &experiments::fig2(&study, &conv))
    );
    println!(
        "{}",
        experiments::render_scap_series("Figure 6", &experiments::fig6(&study, &na))
    );
    println!(
        "{}",
        experiments::render_fig3(&study, &experiments::fig3(&study, &conv))
    );
    println!("{}", experiments::render_fig4(&conv, &na));
    println!(
        "{}",
        experiments::render_fig7(&experiments::fig7(&study, &na))
    );
    ExitCode::SUCCESS
}

fn paths(args: &Args) -> ExitCode {
    use scap::timing::Sta;
    let study = CaseStudy::new(args.scale());
    let count = args
        .get("count")
        .and_then(|c| c.parse().ok())
        .unwrap_or(5usize);
    let sta = Sta::run(&study.design.netlist, &study.annotation, &study.arrivals);
    println!(
        "critical path {:.0} ps, worst slack {:.0} ps (cycle {:.0} ps)",
        sta.critical_path_ps(),
        sta.worst_slack_ps().unwrap_or(0.0),
        study.period_ps()
    );
    for (k, p) in sta
        .worst_paths(&study.design.netlist, count)
        .iter()
        .enumerate()
    {
        println!(
            "path {k}: endpoint {} arrival {:.0} ps slack {:.0} ps depth {}",
            p.endpoint,
            p.data_arrival_ps,
            p.slack_ps,
            p.depth()
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::Args;

    #[test]
    fn parses_flags_and_positionals() {
        let args = Args::parse(
            ["atpg", "--scale", "0.02", "--compact", "--stil", "out.stil"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.positional, vec!["atpg"]);
        assert_eq!(args.scale(), 0.02);
        assert!(args.has("compact"));
        assert_eq!(args.get("stil"), Some("out.stil"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn flag_without_value_before_another_flag() {
        let args = Args::parse(
            ["profile", "--compact", "--scale", "0.5"]
                .into_iter()
                .map(String::from),
        );
        assert!(args.has("compact"));
        assert_eq!(args.get("compact"), None);
        assert_eq!(args.scale(), 0.5);
    }

    #[test]
    fn default_scale_when_absent() {
        let args = Args::parse(["generate"].into_iter().map(String::from));
        assert_eq!(args.scale(), 0.01);
    }
}
