//! `scap` — command-line front-end for the supply-voltage-noise-aware
//! transition-delay-fault ATPG suite.
//!
//! ```text
//! scap generate --scale 0.01 [--verilog out.v]          design + Tables 1-2
//! scap atpg     --scale 0.01 [--flow noise-aware]       run a flow
//!               [--fill fill-0] [--stil out.stil] [--compact]
//! scap profile  --scale 0.01 [--flow conventional]      per-pattern SCAP
//! scap schedule --scale 0.01 --budget <mW>              session scheduling
//! scap lint     --scale 0.01 [--format json] [--deny warn]   design-rule check
//! scap serve    --addr 127.0.0.1:7878                   resident HTTP API
//! scap cluster  --workers 4 [--port 7900]               sharded serving tier
//! scap evaluate                                         every table + figure
//! ```
//!
//! Everything is regenerated deterministically from `--scale`/`--seed`,
//! so commands compose without intermediate files. Flag parsing lives in
//! `scap_serve::params` — the same parser backs the server's query
//! strings, so `--scale 0.02` here and `scale=0.02` on the wire behave
//! identically. Parse errors return `ExitCode::from(2)` (destructors
//! run; nothing calls `process::exit`).

use scap::dft::FillPolicy;
use scap::tgen::EngineKind;
use scap::{ablation, compact_patterns, experiments, flows, schedule, CaseStudy};
use scap_serve::params::Args;
use std::process::ExitCode;

/// Unwraps a flag-accessor `Result`, or prints the error and returns
/// usage exit code 2 from the enclosing function.
macro_rules! try_flag {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: scap <generate|atpg|profile|schedule|paths|sta|lint|serve|cluster|evaluate> [--scale S] [--seed N] [--threads N] [options]\n\
         \n  generate   build the case-study SOC; Tables 1-2; --verilog FILE to dump netlist\
         \n  atpg       run a flow: --flow conventional|noise-aware (default noise-aware),\
         \n             --fill random-fill|fill-0|fill-1|fill-adjacent, --stil FILE, --compact,\
         \n             --engine podem|sat|hybrid (default podem; hybrid gives PODEM\
         \n             aborts a SAT verdict: a test or an untestability proof)\
         \n  profile    per-pattern B5 SCAP of a flow vs the screening threshold;\
         \n             --metrics prints the pipeline counter breakdown\
         \n  schedule   power-constrained session scheduling: --budget MILLIWATTS\
         \n  paths      report the N worst timing paths: --count N\
         \n  sta        per-endpoint slack analysis; --derate adds the IR-drop-derated\
         \n             pass (worst-case regional droop through the delay model),\
         \n             --derate-k F scales the droop sensitivity, --paths N,\
         \n             --metrics prints the sta.* counter breakdown\
         \n  lint       cross-layer design-rule check of the generated design, the\
         \n             noise-aware flow's patterns, the supply meshes and the\
         \n             nominal/derated timing; --format text|json, --deny warn to\
         \n             fail on warnings, --only RULEPREFIX (e.g. TIM, NET002)\
         \n             exit 0 clean, 1 findings at or above the deny level, 2 usage\
         \n  serve      resident HTTP JSON API (see docs/SERVER.md):\
         \n             --addr HOST:PORT (default 127.0.0.1:7878; port 0 = ephemeral),\
         \n             --workers N, --queue-depth N, --cache-capacity N (design LRU),\
         \n             --cache-cap N (response LRU), --deadline-ms MS\
         \n  cluster    sharded serving tier: a coordinator proxy over N scap-serve\
         \n             worker processes, consistent-hash routed on (scale, seed)\
         \n             (see docs/SERVER.md): --workers N (default 2),\
         \n             --addr HOST:PORT / --port P (default 127.0.0.1:7900),\
         \n             --hedge-ms MS (default 1000), --probe-ms MS (default 500),\
         \n             plus per-worker --worker-threads, --queue-depth,\
         \n             --cache-capacity, --cache-cap\
         \n  evaluate   every table and figure of the paper (long)\
         \n\
         \n  --threads N  worker threads for the parallel hot loops; always wins\
         \n               (precedence: --threads, then SCAP_THREADS env, then cores)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    match args.threads() {
        Ok(Some(n)) => {
            scap_exec::set_default_threads(n);
        }
        Ok(None) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "generate" => generate(&args),
        "atpg" => atpg(&args),
        "profile" => profile(&args),
        "schedule" => schedule_cmd(&args),
        "paths" => paths(&args),
        "sta" => sta(&args),
        "lint" => lint(&args),
        "serve" => serve(&args),
        "cluster" => cluster(&args),
        "evaluate" => evaluate(&args),
        _ => usage(),
    }
}

/// Builds the case study from `--scale`/`--seed` (validated; never
/// exits the process).
fn build_study(args: &Args) -> Result<CaseStudy, String> {
    Ok(CaseStudy::with_seed(args.scale()?, args.seed()?))
}

fn generate(args: &Args) -> ExitCode {
    let study = try_flag!(build_study(args));
    let report = experiments::table1(&study);
    println!("{}", experiments::render_table1(&report));
    println!("{}", experiments::render_table2(&report));
    if let Some(path) = args.get("verilog") {
        let text = scap::netlist::verilog::to_verilog(&study.design.netlist);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn pick_flow(args: &Args, study: &CaseStudy) -> Result<flows::FlowResult, String> {
    let fill = match args.get("fill") {
        Some("random-fill") | Some("random") => Some(FillPolicy::Random),
        Some("fill-0") => Some(FillPolicy::Zero),
        Some("fill-1") => Some(FillPolicy::One),
        Some("fill-adjacent") => Some(FillPolicy::Adjacent),
        _ => None,
    };
    let engine = match args.get("engine") {
        None => EngineKind::Podem,
        Some(raw) => EngineKind::parse(raw)
            .ok_or_else(|| format!("--engine expects podem|sat|hybrid, got '{raw}'"))?,
    };
    Ok(match args.get("flow").unwrap_or("noise-aware") {
        "conventional" => flows::conventional_with(
            study,
            flows::flow_atpg_config_with_engine(fill.unwrap_or(FillPolicy::Random), engine),
        ),
        _ => flows::noise_aware_with(
            study,
            flows::flow_atpg_config_with_engine(fill.unwrap_or(FillPolicy::Zero), engine),
            &flows::paper_stages(study),
        ),
    })
}

fn atpg(args: &Args) -> ExitCode {
    let study = try_flag!(build_study(args));
    let mut flow = try_flag!(pick_flow(args, &study));
    println!(
        "{} patterns, {:.2} % fault coverage",
        flow.patterns.len(),
        100.0 * flow.fault_coverage()
    );
    if args.has("compact") {
        let (kept, compacted) = compact_patterns(
            &study.design.netlist,
            study.clka(),
            &flow.faults,
            &flow.patterns,
        );
        println!(
            "static compaction: {} -> {} patterns",
            flow.patterns.len(),
            kept.len()
        );
        flow.patterns = compacted;
    }
    if let Some(path) = args.get("stil") {
        let text = scap::dft::export::to_stil(&study.design.netlist, &flow.patterns);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn profile(args: &Args) -> ExitCode {
    // Collection is enabled *before* the run so the breakdown covers
    // design build, ATPG, grading and SCAP measurement alike.
    if args.has("metrics") {
        scap_obs::set_enabled(true);
    }
    let study = try_flag!(build_study(args));
    let flow = try_flag!(pick_flow(args, &study));
    let Some(b5) = study.design.block_named("B5") else {
        eprintln!("error: the generated design has no block named 'B5' to profile");
        return ExitCode::FAILURE;
    };
    let Some(&threshold) = experiments::scap_thresholds(&study).get(b5.index()) else {
        eprintln!("error: no screening threshold for block 'B5'");
        return ExitCode::FAILURE;
    };
    let series = experiments::scap_series(&study, &flow, b5, threshold);
    println!(
        "{}",
        experiments::render_scap_series("B5 SCAP profile", &series)
    );
    let sweep = ablation::threshold_sensitivity(&study, &flow, &[0.5, 1.0, 2.0]);
    for (f, above) in sweep {
        println!("threshold x{f}: {above} patterns above");
    }
    if args.has("metrics") {
        let snap = scap_obs::snapshot();
        println!("\n{}", scap_obs::render(&snap));
        // Lane utilization of the word-packed fault-sim kernel: how full
        // the 64-pattern blocks actually were (ATPG drop-simulation runs
        // one-lane blocks; grading runs full ones).
        if let (Some(blocks), Some(patterns)) = (
            snap.counter("sim.block_evals").filter(|&b| b > 0),
            snap.counter("sim.patterns_per_block"),
        ) {
            println!(
                "block kernel utilization: {:.1}% ({patterns} patterns over {blocks} blocks of 64 lanes)",
                patterns as f64 / (64 * blocks) as f64 * 100.0
            );
        }
    }
    ExitCode::SUCCESS
}

fn schedule_cmd(args: &Args) -> ExitCode {
    let study = try_flag!(build_study(args));
    let flow = try_flag!(pick_flow(args, &study));
    let tests = schedule::block_tests_from_flow(&study, &flow);
    let serial = schedule::serial_length(&tests);
    let budget: f64 = args
        .get("budget")
        .and_then(|b| b.parse().ok())
        .unwrap_or_else(|| 2.0 * tests.iter().map(|t| t.power_mw).fold(0.0, f64::max));
    let plan = schedule::schedule(&tests, budget);
    println!("budget {budget:.2} mW | serial length {serial} patterns");
    for (i, s) in plan.sessions.iter().enumerate() {
        let names: Vec<String> = s
            .members
            .iter()
            .map(|m| study.design.netlist.block(m.block).name.clone())
            .collect();
        println!(
            "session {i}: {:<18} {:>7.2} mW  {:>6} patterns",
            names.join("+"),
            s.power_mw(),
            s.length()
        );
    }
    println!(
        "scheduled length {} patterns ({:.0} % of serial)",
        plan.total_length(),
        100.0 * plan.total_length() as f64 / serial.max(1) as f64
    );
    ExitCode::SUCCESS
}

/// `scap lint` — runs the full design-rule registry against the generated
/// design, the noise-aware flow's patterns and both supply meshes. The
/// registry assembly itself lives in `scap_serve::lint_report`, shared
/// with `POST /v1/lint`.
///
/// Exit codes: 0 clean, 1 findings at or above the deny level (errors, or
/// warnings too under `--deny warn`), 2 usage error.
fn lint(args: &Args) -> ExitCode {
    let json = match args.get("format") {
        None => false,
        Some("text") => false,
        Some("json") => true,
        Some(other) => {
            eprintln!("error: --format expects 'text' or 'json', got '{other}'");
            return ExitCode::from(2);
        }
    };
    let deny_warn = if args.has("deny") {
        match args.get("deny") {
            Some("warn") => true,
            other => {
                eprintln!(
                    "error: --deny expects 'warn', got '{}'",
                    other.unwrap_or("nothing")
                );
                return ExitCode::from(2);
            }
        }
    } else {
        false
    };

    let study = try_flag!(build_study(args));
    let report = match args.get("only") {
        Some(prefix) => {
            let rules = scap_lint::rules_matching(prefix);
            if rules.is_empty() {
                eprintln!("error: --only '{prefix}' matches no registered rule");
                return ExitCode::from(2);
            }
            scap_serve::lint_report_with(&study, rules)
        }
        None => scap_serve::lint_report(&study),
    };
    if json {
        println!("{}", report.render_json_pretty());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 || (deny_warn && report.warnings() > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `scap serve` — boots the resident HTTP JSON API and blocks until a
/// `POST /v1/shutdown` drains it; the final metrics snapshot is printed
/// on the way out. See `docs/SERVER.md` for the endpoint reference.
fn serve(args: &Args) -> ExitCode {
    let cfg = scap_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_owned(),
        workers: try_flag!(args.usize_flag("workers", 2)),
        queue_depth: try_flag!(args.usize_flag("queue-depth", 16)),
        cache_capacity: try_flag!(args.usize_flag("cache-capacity", 4)),
        response_cache_capacity: try_flag!(args.usize_flag("cache-cap", 32)),
        default_deadline: std::time::Duration::from_millis(try_flag!(
            args.usize_flag("deadline-ms", 60_000)
        ) as u64),
        debug_endpoints: args.has("debug-endpoints"),
    };
    let server = match scap_serve::Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The exact line check.sh and tooling parse for the (possibly
    // ephemeral) port — keep the format stable.
    println!("scap serve listening on http://{}", server.local_addr());
    match server.run() {
        Ok(snapshot) => {
            println!("scap serve drained; final metrics:");
            print!("{}", scap_obs::render(&snapshot));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `scap cluster` — boots the sharded serving tier: this process
/// becomes the coordinator, spawning `--workers` copies of itself
/// running `scap serve` on ephemeral ports and routing requests by
/// consistent hashing on `(scale, seed)`. Blocks until
/// `POST /v1/shutdown` drains coordinator and fleet alike.
fn cluster(args: &Args) -> ExitCode {
    let addr = match (args.get("addr"), args.get("port")) {
        (Some(a), _) => a.to_owned(),
        (None, Some(p)) => format!("127.0.0.1:{p}"),
        (None, None) => "127.0.0.1:7900".to_owned(),
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot resolve own executable for worker spawning: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Workers re-run this binary's `serve` subcommand; pass the
    // per-worker knobs through verbatim.
    let mut worker_command = vec![exe.to_string_lossy().into_owned(), "serve".to_owned()];
    let worker_threads = try_flag!(args.usize_flag("worker-threads", 2));
    let queue_depth = try_flag!(args.usize_flag("queue-depth", 16));
    let cache_capacity = try_flag!(args.usize_flag("cache-capacity", 4));
    let cache_cap = try_flag!(args.usize_flag("cache-cap", 32));
    for (flag, value) in [
        ("--workers", worker_threads),
        ("--queue-depth", queue_depth),
        ("--cache-capacity", cache_capacity),
        ("--cache-cap", cache_cap),
    ] {
        worker_command.push(flag.to_owned());
        worker_command.push(value.to_string());
    }
    if args.has("debug-endpoints") {
        worker_command.push("--debug-endpoints".to_owned());
    }
    let cfg = scap_cluster::ClusterConfig {
        addr,
        workers: try_flag!(args.usize_flag("workers", 2)),
        worker_command,
        hedge: std::time::Duration::from_millis(try_flag!(args.usize_flag("hedge-ms", 1000)) as u64),
        probe_interval: std::time::Duration::from_millis(
            try_flag!(args.usize_flag("probe-ms", 500)) as u64,
        ),
        ..scap_cluster::ClusterConfig::default()
    };
    let coordinator = match scap_cluster::Coordinator::launch(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot launch cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Stable lines check.sh and tooling parse: the coordinator address
    // first, then one line per worker with pid and address.
    println!(
        "scap cluster listening on http://{} ({} workers)",
        coordinator.local_addr(),
        coordinator.worker_infos().len()
    );
    for w in coordinator.worker_infos() {
        println!(
            "scap cluster worker {} pid {} http://{}",
            w.index,
            w.pid,
            w.addr
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".to_owned())
        );
    }
    match coordinator.run() {
        Ok(snapshot) => {
            println!("scap cluster drained; final metrics:");
            print!("{}", scap_obs::render(&snapshot));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cluster failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn evaluate(args: &Args) -> ExitCode {
    let study = try_flag!(build_study(args));
    let report = experiments::table1(&study);
    println!("{}", experiments::render_table1(&report));
    let t3 = experiments::table3(&study);
    println!("{}", experiments::render_table3(&study, &t3));
    let conv = flows::conventional(&study);
    let na = flows::noise_aware(&study);
    println!(
        "{}",
        experiments::render_table4(&experiments::table4(&study, &conv))
    );
    println!(
        "{}",
        experiments::render_scap_series("Figure 2", &experiments::fig2(&study, &conv))
    );
    println!(
        "{}",
        experiments::render_scap_series("Figure 6", &experiments::fig6(&study, &na))
    );
    println!(
        "{}",
        experiments::render_fig3(&study, &experiments::fig3(&study, &conv))
    );
    println!("{}", experiments::render_fig4(&conv, &na));
    println!(
        "{}",
        experiments::render_fig7(&experiments::fig7(&study, &na))
    );
    ExitCode::SUCCESS
}

/// `scap sta` — per-endpoint slack analysis of the generated design:
/// nominal by default, with `--derate` adding the IR-drop-derated pass
/// (worst-case regional droop mapped through the delay model) plus the
/// fault risk-tier histogram ATPG prioritization consumes.
fn sta(args: &Args) -> ExitCode {
    use scap::sta::NoiseAwareSta;
    use scap::timing::{RiskTier, SlackSta};

    if args.has("metrics") {
        scap_obs::set_enabled(true);
    }
    let study = try_flag!(build_study(args));
    let n = &study.design.netlist;
    let path_count = try_flag!(args.usize_flag("paths", 5));
    let k = try_flag!(args.f64_flag("derate-k")).unwrap_or(1.0);
    if !k.is_finite() || k <= 0.0 {
        eprintln!("error: --derate-k expects a positive factor, got {k}");
        return ExitCode::from(2);
    }
    if args.has("derate") {
        let sta = NoiseAwareSta::with_derate(&study, k);
        println!(
            "cycle {:.0} ps | nominal: critical path {:.0} ps, worst slack {:.0} ps",
            study.period_ps(),
            sta.nominal.critical_path_ps(),
            sta.nominal.worst_slack_ps().unwrap_or(0.0),
        );
        println!(
            "derated (k x{k}): critical path {:.0} ps, worst slack {:.0} ps",
            sta.derated.critical_path_ps(),
            sta.derated.worst_slack_ps().unwrap_or(0.0),
        );
        for (flop, nom, der) in sta.endpoint_slacks() {
            println!(
                "endpoint {:<12} nominal {:>8.0} ps  derated {:>8.0} ps  {}",
                n.flop(flop).name,
                nom,
                der,
                RiskTier::classify(der, study.period_ps()).label()
            );
        }
        let faults = scap::sim::FaultList::full(n);
        let hist = sta.tier_histogram(n, &faults);
        let parts: Vec<String> = hist
            .iter()
            .map(|(t, c)| format!("{} {}", t.label(), c))
            .collect();
        println!("fault risk tiers: {}", parts.join(" | "));
        for (i, p) in sta.derated.worst_paths(n, path_count).iter().enumerate() {
            println!(
                "derated path {i}: endpoint {} arrival {:.0} ps slack {:.0} ps depth {}",
                n.flop(p.endpoint).name,
                p.data_arrival_ps,
                p.slack_ps,
                p.depth()
            );
        }
    } else {
        let sta = SlackSta::run(n, &study.annotation, &study.arrivals);
        println!(
            "cycle {:.0} ps | critical path {:.0} ps, worst slack {:.0} ps",
            study.period_ps(),
            sta.critical_path_ps(),
            sta.worst_slack_ps().unwrap_or(0.0),
        );
        for e in sta.endpoints() {
            println!(
                "endpoint {:<12} slack {:>8.0} ps",
                n.flop(e.flop).name,
                e.slack_ps()
            );
        }
        let unreachable = sta.unreachable_endpoints(n);
        if !unreachable.is_empty() {
            println!(
                "{} endpoint(s) unreachable from any launch",
                unreachable.len()
            );
        }
        for (i, p) in sta.worst_paths(n, path_count).iter().enumerate() {
            println!(
                "path {i}: endpoint {} arrival {:.0} ps slack {:.0} ps depth {}",
                n.flop(p.endpoint).name,
                p.data_arrival_ps,
                p.slack_ps,
                p.depth()
            );
        }
    }
    if args.has("metrics") {
        println!("\n{}", scap_obs::render(&scap_obs::snapshot()));
    }
    ExitCode::SUCCESS
}

fn paths(args: &Args) -> ExitCode {
    use scap::timing::Sta;
    let study = try_flag!(build_study(args));
    let count = args
        .get("count")
        .and_then(|c| c.parse().ok())
        .unwrap_or(5usize);
    let sta = Sta::run(&study.design.netlist, &study.annotation, &study.arrivals);
    println!(
        "critical path {:.0} ps, worst slack {:.0} ps (cycle {:.0} ps)",
        sta.critical_path_ps(),
        sta.worst_slack_ps().unwrap_or(0.0),
        study.period_ps()
    );
    for (k, p) in sta
        .worst_paths(&study.design.netlist, count)
        .iter()
        .enumerate()
    {
        println!(
            "path {k}: endpoint {} arrival {:.0} ps slack {:.0} ps depth {}",
            p.endpoint,
            p.data_arrival_ps,
            p.slack_ps,
            p.depth()
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full parser coverage (flag-before-flag, negative values, repeated
    // flags, trailing positionals, query strings) lives with the parser
    // in `scap_serve::params`; these spot-check the CLI wiring.

    fn cli(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_tokens_parse_through_the_shared_parser() {
        let args = cli(&["atpg", "--scale", "0.02", "--compact", "--stil", "out.stil"]);
        assert_eq!(args.positional, vec!["atpg"]);
        assert_eq!(args.scale().unwrap(), 0.02);
        assert!(args.has("compact"));
        assert_eq!(args.get("stil"), Some("out.stil"));
    }

    #[test]
    fn malformed_scale_is_a_recoverable_error() {
        // The old parser exited the process here; now it surfaces a
        // Result the subcommands turn into ExitCode::from(2).
        assert!(cli(&["generate", "--scale", "2.0"]).scale().is_err());
        assert!(cli(&["generate", "--scale", "x"]).scale().is_err());
        assert!(cli(&["generate", "--threads", "0"]).threads().is_err());
    }
}
