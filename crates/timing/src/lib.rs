//! Timing infrastructure: delay annotation, clock-tree modeling, static
//! timing analysis and IR-drop-aware delay scaling.
//!
//! This crate stands in for three pieces of the paper's commercial flow:
//!
//! * **Parasitic extraction** (Synopsys STAR-RCXT → SPEF):
//!   [`DelayAnnotation::extract`] derives per-instance rise/fall delays and
//!   per-net wire capacitance from the library and floorplan.
//! * **Clock-tree synthesis**: [`ClockTree`] builds a recursive-subdivision
//!   buffer tree per clock domain and reports per-flop clock arrival
//!   (insertion delay + skew).
//! * **SDF back-annotation + delay scaling under IR-drop** (paper §3.2):
//!   [`scaling::scale_annotation`] applies
//!   `scaled = delay · (1 + k_volt · ΔV)` per instance, and
//!   [`ClockTree::arrivals_with_drop`] re-times the clock network the same
//!   way — the mechanism behind the paper's Figure 7 "Region 2" endpoints.
//!
//! # Example
//!
//! ```
//! use scap_netlist::{CellKind, ClockEdge, NetlistBuilder};
//! use scap_timing::DelayAnnotation;
//!
//! # fn main() -> Result<(), scap_netlist::BuildError> {
//! let mut b = NetlistBuilder::new("d");
//! let blk = b.add_block("B1");
//! let a = b.add_primary_input("a");
//! let y = b.add_net("y");
//! b.add_gate(CellKind::Inv, &[a], y, blk)?;
//! let n = b.finish()?;
//! let ann = DelayAnnotation::unit_wire(&n);
//! assert!(ann.gate_rise_ps(scap_netlist::GateId::new(0)) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annotation;
mod clock_tree;
pub mod scaling;
mod slack;
mod sta;

pub use annotation::DelayAnnotation;
pub use clock_tree::{ClockArrivals, ClockTree, TreeBuffer};
pub use slack::{RiskTier, SlackSta};
pub use sta::{EndpointTiming, PathReport, Sta};
