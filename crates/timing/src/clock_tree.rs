//! A recursive-subdivision clock-tree model with IR-drop-aware retiming.
//!
//! Clock-tree synthesis in the paper's flow (SOC Encounter) balances
//! insertion delay; residual skew plus IR-drop-induced buffer slow-down is
//! what makes some endpoints in Figure 7 *gain* apparent slack ("Region
//! 2"). This model captures exactly that: a buffer tree over the flops of
//! one clock domain, per-flop arrival times, and a re-timing entry point
//! that scales each buffer's delay by the local supply droop.

use scap_netlist::{ClockId, Floorplan, FlopId, Netlist, Point, Rect};
use serde::{Deserialize, Serialize};

/// One buffer of the clock tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeBuffer {
    /// Physical location of the buffer.
    pub location: Point,
    /// Parent buffer index, `None` for the root.
    pub parent: Option<u32>,
    /// Nominal propagation delay of this buffer stage, ps (buffer cell +
    /// wire to its children's region).
    pub delay_ps: f64,
    /// Tree depth (root = 0).
    pub depth: u8,
}

/// Per-flop clock arrival times for one clock domain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClockArrivals {
    arrivals_ps: Vec<(FlopId, f64)>,
}

impl ClockArrivals {
    /// Arrival time at a flop's clock pin, ps, or `None` if the flop is not
    /// in this tree's domain.
    pub fn arrival_ps(&self, flop: FlopId) -> Option<f64> {
        self.arrivals_ps
            .iter()
            .find(|(f, _)| *f == flop)
            .map(|&(_, t)| t)
    }

    /// All `(flop, arrival)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FlopId, f64)> + '_ {
        self.arrivals_ps.iter().copied()
    }

    /// Worst-case skew: max − min arrival, ps (0 for fewer than 2 flops).
    pub fn skew_ps(&self) -> f64 {
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for &(_, t) in &self.arrivals_ps {
            min = min.min(t);
            max = max.max(t);
        }
        if self.arrivals_ps.len() < 2 {
            0.0
        } else {
            max - min
        }
    }
}

/// A synthesized clock tree for one clock domain.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::{Netlist, Floorplan, ClockId};
/// # fn demo(netlist: &Netlist, floorplan: &Floorplan) {
/// use scap_timing::ClockTree;
/// let tree = ClockTree::synthesize(netlist, floorplan, ClockId::new(0));
/// let nominal = tree.arrivals();
/// println!("skew = {} ps", nominal.skew_ps());
/// # }
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClockTree {
    /// The domain this tree clocks.
    pub clock: ClockId,
    buffers: Vec<TreeBuffer>,
    /// `(flop, leaf buffer index, stub delay ps)`.
    sinks: Vec<(FlopId, u32, f64)>,
}

/// Max sinks per leaf region before the region is subdivided.
const LEAF_CAPACITY: usize = 16;
/// Nominal delay of one clock buffer stage, ps.
const BUFFER_DELAY_PS: f64 = 120.0;
/// Wire delay per micron of clock stub, ps/µm (RC-ish lumped figure).
const STUB_DELAY_PS_PER_UM: f64 = 0.08;

impl ClockTree {
    /// Builds a tree over all flops of `clock` by recursive quadrant
    /// subdivision of the die, one buffer per region.
    pub fn synthesize(netlist: &Netlist, floorplan: &Floorplan, clock: ClockId) -> Self {
        let flops: Vec<FlopId> = netlist.flops_in_clock(clock).collect();
        let mut tree = ClockTree {
            clock,
            buffers: Vec::new(),
            sinks: Vec::new(),
        };
        if flops.is_empty() {
            return tree;
        }
        let root_rect = floorplan.die.outline;
        tree.subdivide(floorplan, root_rect, &flops, None, 0);
        tree
    }

    fn subdivide(
        &mut self,
        floorplan: &Floorplan,
        region: Rect,
        flops: &[FlopId],
        parent: Option<u32>,
        depth: u8,
    ) {
        let idx = self.buffers.len() as u32;
        self.buffers.push(TreeBuffer {
            location: region.center(),
            parent,
            delay_ps: BUFFER_DELAY_PS,
            depth,
        });
        if flops.len() <= LEAF_CAPACITY || depth >= 12 {
            let center = region.center();
            for &f in flops {
                let stub = floorplan.placement.flop(f).manhattan(center) * STUB_DELAY_PS_PER_UM;
                self.sinks.push((f, idx, stub));
            }
            return;
        }
        let c = region.center();
        let quads = [
            Rect::new(region.min.x, region.min.y, c.x, c.y),
            Rect::new(c.x, region.min.y, region.max.x, c.y),
            Rect::new(region.min.x, c.y, c.x, region.max.y),
            Rect::new(c.x, c.y, region.max.x, region.max.y),
        ];
        for (qi, quad) in quads.into_iter().enumerate() {
            let members: Vec<FlopId> = flops
                .iter()
                .copied()
                .filter(|&f| {
                    let p = floorplan.placement.flop(f);
                    // Assign boundary points by strict comparison against
                    // the center so each flop lands in exactly one quadrant.
                    let right = p.x > c.x;
                    let top = p.y > c.y;
                    (right as usize) + 2 * (top as usize) == qi
                })
                .collect();
            if !members.is_empty() {
                self.subdivide(floorplan, quad, &members, Some(idx), depth + 1);
            }
        }
    }

    /// Number of buffers in the tree.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// The buffers, indexable by the indices stored in sink records.
    pub fn buffers(&self) -> &[TreeBuffer] {
        &self.buffers
    }

    /// Mutable access to a buffer — **invariant-breaking**.
    ///
    /// Exists for defect-injection tests: rewriting `parent` can break the
    /// parents-precede-children ordering [`ClockTree::arrivals_with_drop`]
    /// relies on (caught by the `CLK001` lint rule), and a negative
    /// `delay_ps` is caught by `CLK002`. Nothing in the production flow
    /// calls this.
    pub fn buffer_mut(&mut self, index: u32) -> &mut TreeBuffer {
        &mut self.buffers[index as usize]
    }

    /// Nominal per-flop arrivals (no IR-drop).
    pub fn arrivals(&self) -> ClockArrivals {
        self.arrivals_with_drop(|_| 0.0, 0.0)
    }

    /// Per-flop arrivals with each buffer's delay scaled by
    /// `1 + k_volt · drop(location)` — the clock-network half of the
    /// paper's IR-drop-aware re-simulation.
    ///
    /// `drop_at` returns the local supply droop in volts at a die location.
    pub fn arrivals_with_drop(
        &self,
        drop_at: impl Fn(Point) -> f64,
        k_volt_per_volt: f64,
    ) -> ClockArrivals {
        // Accumulate root-to-buffer delays iteratively (parents always
        // precede children in `buffers` by construction).
        let mut accum = vec![0.0f64; self.buffers.len()];
        for (i, b) in self.buffers.iter().enumerate() {
            let scale = 1.0 + k_volt_per_volt * drop_at(b.location).max(0.0);
            let own = b.delay_ps * scale;
            accum[i] = own + b.parent.map_or(0.0, |p| accum[p as usize]);
        }
        let arrivals_ps = self
            .sinks
            .iter()
            .map(|&(f, buf, stub)| (f, accum[buf as usize] + stub))
            .collect();
        ClockArrivals { arrivals_ps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, Die, NetlistBuilder, Placement};

    /// Builds `n` flops scattered on a diagonal of a 1000 µm die.
    fn scattered(n: usize) -> (Netlist, Floorplan) {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut flop_xy = Vec::new();
        for i in 0..n {
            let inp = b.add_primary_input(format!("in{i}"));
            let q = b.add_net(format!("q{i}"));
            b.add_flop(format!("ff{i}"), inp, q, clk, ClockEdge::Rising, blk)
                .unwrap();
            let t = i as f64 / n.max(2) as f64;
            flop_xy.push(Point::new(10.0 + 980.0 * t, 10.0 + 980.0 * (1.0 - t)));
        }
        // One dummy gate so the netlist is non-trivial.
        let y = b.add_net("y");
        let a0 = b.add_primary_input("pi");
        b.add_gate(CellKind::Inv, &[a0], y, blk).unwrap();
        let netlist = b.finish().unwrap();
        let fp = Floorplan::new(
            &netlist,
            Die::square(1000.0),
            vec![Rect::new(0.0, 0.0, 1000.0, 1000.0)],
            Placement::new(vec![Point::new(500.0, 500.0)], flop_xy),
        );
        (netlist, fp)
    }

    #[test]
    fn covers_every_flop_exactly_once() {
        let (n, fp) = scattered(100);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let arr = tree.arrivals();
        assert_eq!(arr.iter().count(), 100);
        for f in n.flops_in_clock(ClockId::new(0)) {
            assert!(arr.arrival_ps(f).is_some());
        }
    }

    #[test]
    fn deep_trees_for_many_sinks() {
        let (n, fp) = scattered(200);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        assert!(tree.num_buffers() > 4);
        assert!(tree.buffers().iter().any(|b| b.depth >= 2));
    }

    #[test]
    fn skew_is_bounded_and_nonnegative() {
        let (n, fp) = scattered(64);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let arr = tree.arrivals();
        let skew = arr.skew_ps();
        assert!(skew >= 0.0);
        // Balanced subdivision keeps skew within a couple of buffer stages.
        assert!(skew < 6.0 * BUFFER_DELAY_PS, "skew {skew}");
    }

    #[test]
    fn ir_drop_slows_the_clock_path() {
        let (n, fp) = scattered(32);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let nominal = tree.arrivals();
        let dropped = tree.arrivals_with_drop(|_| 0.2, 0.9);
        for (f, t) in nominal.iter() {
            let td = dropped.arrival_ps(f).unwrap();
            assert!(td > t, "flop {f}: {td} !> {t}");
        }
    }

    #[test]
    fn localized_drop_skews_only_nearby_sinks() {
        let (n, fp) = scattered(64);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let nominal = tree.arrivals();
        // Droop only in the lower-right quadrant.
        let dropped =
            tree.arrivals_with_drop(|p| if p.x > 500.0 && p.y < 500.0 { 0.3 } else { 0.0 }, 0.9);
        let mut delayed = 0;
        let mut unchanged = 0;
        for (f, t) in nominal.iter() {
            let td = dropped.arrival_ps(f).unwrap();
            if (td - t).abs() < 1e-9 {
                unchanged += 1;
            } else {
                delayed += 1;
            }
        }
        assert!(delayed > 0, "some sinks must slow down");
        assert!(unchanged > 0, "far sinks must be unaffected");
    }

    #[test]
    fn empty_domain_yields_empty_tree() {
        let (n, fp) = scattered(4);
        // ClockId 1 does not exist in the netlist's flops.
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(1));
        assert_eq!(tree.num_buffers(), 0);
        assert_eq!(tree.arrivals().iter().count(), 0);
        assert_eq!(tree.arrivals().skew_ps(), 0.0);
    }
}
