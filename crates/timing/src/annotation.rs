//! Per-instance delay annotation — the SPEF/SDF substitute.

use scap_netlist::{Floorplan, FlopId, GateId, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Per-instance rise/fall delays and per-net wire capacitance.
///
/// Produced either by [`DelayAnnotation::extract`] (floorplan-aware, the
/// STAR-RCXT substitute) or [`DelayAnnotation::unit_wire`] (no placement,
/// fixed wire load — handy for tests).
///
/// Delays are in picoseconds, capacitance in femtofarads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DelayAnnotation {
    gate_rise_ps: Vec<f64>,
    gate_fall_ps: Vec<f64>,
    flop_clk_to_q_ps: Vec<f64>,
    net_wire_cap_ff: Vec<f64>,
    /// Total switched capacitance per net (pin loads + wire), fF. This is
    /// the `C_i` of the paper's CAP/SCAP formulas.
    net_total_cap_ff: Vec<f64>,
    /// Capacitance the driver sees for delay purposes: like
    /// `net_total_cap_ff` but with the wire portion clamped to the
    /// library's buffered-wire limit.
    net_delay_cap_ff: Vec<f64>,
}

impl DelayAnnotation {
    /// Extracts delays from the netlist, library and floorplan.
    ///
    /// Wire capacitance is estimated as half-perimeter wirelength × the
    /// library's per-micron capacitance. Cell delay is
    /// `intrinsic + R_drive · (pin load + wire cap)`.
    pub fn extract(netlist: &Netlist, floorplan: &Floorplan) -> Self {
        Self::build(netlist, |net| {
            floorplan.net_wirelength_um(netlist, net) * netlist.library.wire_cap_ff_per_um
        })
    }

    /// Annotation with a fixed per-net wire capacitance of 2 fF —
    /// placement-free, for unit tests and quick experiments.
    pub fn unit_wire(netlist: &Netlist) -> Self {
        Self::build(netlist, |_| 2.0)
    }

    fn build(netlist: &Netlist, wire_cap: impl Fn(NetId) -> f64) -> Self {
        let lib = &netlist.library;
        let num_nets = netlist.num_nets();
        let mut net_wire_cap_ff = vec![0.0; num_nets];
        let mut net_total_cap_ff = vec![0.0; num_nets];
        let mut net_delay_cap_ff = vec![0.0; num_nets];
        for i in 0..num_nets {
            let id = NetId::new(i as u32);
            let wire = wire_cap(id);
            let pins = netlist.pin_load_ff(id);
            net_wire_cap_ff[i] = wire;
            net_total_cap_ff[i] = wire + pins;
            net_delay_cap_ff[i] = (wire + pins).min(lib.wire_cap_delay_limit_ff);
        }
        let mut gate_rise_ps = Vec::with_capacity(netlist.num_gates());
        let mut gate_fall_ps = Vec::with_capacity(netlist.num_gates());
        for g in netlist.gates() {
            let p = lib.cell(g.kind);
            let load = net_delay_cap_ff[g.output.index()];
            gate_rise_ps.push(p.rise_delay_ps + p.drive_res_kohm * load);
            gate_fall_ps.push(p.fall_delay_ps + p.drive_res_kohm * load);
        }
        let fp = lib.flop();
        let mut flop_clk_to_q_ps = Vec::with_capacity(netlist.num_flops());
        for f in netlist.flops() {
            let load = net_delay_cap_ff[f.q.index()];
            flop_clk_to_q_ps.push(fp.clk_to_q_ps + fp.drive_res_kohm * load);
        }
        DelayAnnotation {
            gate_rise_ps,
            gate_fall_ps,
            flop_clk_to_q_ps,
            net_wire_cap_ff,
            net_total_cap_ff,
            net_delay_cap_ff,
        }
    }

    /// Rise delay of a gate, ps.
    #[inline]
    pub fn gate_rise_ps(&self, g: GateId) -> f64 {
        self.gate_rise_ps[g.index()]
    }

    /// Fall delay of a gate, ps.
    #[inline]
    pub fn gate_fall_ps(&self, g: GateId) -> f64 {
        self.gate_fall_ps[g.index()]
    }

    /// Worst-case (max of rise/fall) delay of a gate, ps.
    #[inline]
    pub fn gate_delay_ps(&self, g: GateId) -> f64 {
        self.gate_rise_ps[g.index()].max(self.gate_fall_ps[g.index()])
    }

    /// Clock-to-Q delay of a flop, ps.
    #[inline]
    pub fn flop_clk_to_q_ps(&self, f: FlopId) -> f64 {
        self.flop_clk_to_q_ps[f.index()]
    }

    /// Wire capacitance of a net, fF.
    #[inline]
    pub fn net_wire_cap_ff(&self, n: NetId) -> f64 {
        self.net_wire_cap_ff[n.index()]
    }

    /// Total switched capacitance of a net (wire + pins), fF — the `C_i`
    /// consumed by the SCAP calculator.
    #[inline]
    pub fn net_total_cap_ff(&self, n: NetId) -> f64 {
        self.net_total_cap_ff[n.index()]
    }

    /// Capacitance the driver sees for delay purposes, fF: total cap with
    /// the wire portion clamped to the library's buffered-wire limit.
    #[inline]
    pub fn net_delay_cap_ff(&self, n: NetId) -> f64 {
        self.net_delay_cap_ff[n.index()]
    }

    /// Number of annotated gates.
    pub fn num_gates(&self) -> usize {
        self.gate_rise_ps.len()
    }

    /// Number of annotated flops.
    pub fn num_flops(&self) -> usize {
        self.flop_clk_to_q_ps.len()
    }

    /// Mutable access to `(gate_rise_ps, gate_fall_ps, flop_clk_to_q_ps)`.
    ///
    /// Used by [`crate::scaling`] to apply IR-drop derating, and by
    /// defect-injection tests that corrupt an annotation (negative or
    /// non-finite delays are caught by the `TIM002` lint rule). Values
    /// written here are trusted by STA without further validation.
    pub fn delays_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [f64]) {
        (
            &mut self.gate_rise_ps,
            &mut self.gate_fall_ps,
            &mut self.flop_clk_to_q_ps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, Die, NetlistBuilder, Placement, Point, Rect};

    fn fanout_pair() -> Netlist {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let z1 = b.add_net("z1");
        let z2 = b.add_net("z2");
        let q = b.add_net("q");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_gate(CellKind::Buf, &[y], z1, blk).unwrap();
        b.add_gate(CellKind::Buf, &[y], z2, blk).unwrap();
        b.add_flop("ff", z1, q, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn higher_fanout_means_longer_delay() {
        let n = fanout_pair();
        let ann = DelayAnnotation::unit_wire(&n);
        // Gate 0 (inv driving two buffers) sees more load than gate 1
        // (buffer driving one flop D)... inv is also intrinsically faster,
        // so compare like cells: both buffers drive different loads.
        let g1 = ann.gate_delay_ps(GateId::new(1)); // drives flop D
        let g2 = ann.gate_delay_ps(GateId::new(2)); // drives nothing
        assert!(g1 > g2, "{g1} vs {g2}");
    }

    #[test]
    fn extract_uses_placement_distance() {
        let n = fanout_pair();
        let near = Floorplan::new(
            &n,
            Die::square(1000.0),
            vec![Rect::new(0.0, 0.0, 1000.0, 1000.0)],
            Placement::new(vec![Point::new(0.0, 0.0); 3], vec![Point::new(0.0, 0.0); 1]),
        );
        let far = Floorplan::new(
            &n,
            Die::square(1000.0),
            vec![Rect::new(0.0, 0.0, 1000.0, 1000.0)],
            Placement::new(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(900.0, 900.0),
                    Point::new(0.0, 900.0),
                ],
                vec![Point::new(900.0, 0.0); 1],
            ),
        );
        let ann_near = DelayAnnotation::extract(&n, &near);
        let ann_far = DelayAnnotation::extract(&n, &far);
        assert!(ann_far.gate_delay_ps(GateId::new(0)) > ann_near.gate_delay_ps(GateId::new(0)));
        assert!(ann_far.net_wire_cap_ff(n.gate(GateId::new(0)).output) > 0.0);
    }

    #[test]
    fn total_cap_includes_pins_and_wire() {
        let n = fanout_pair();
        let ann = DelayAnnotation::unit_wire(&n);
        let y = n.gate(GateId::new(0)).output;
        let expected = 2.0 + n.pin_load_ff(y);
        assert!((ann.net_total_cap_ff(y) - expected).abs() < 1e-12);
    }

    #[test]
    fn flop_clk_to_q_exceeds_intrinsic() {
        let n = fanout_pair();
        let ann = DelayAnnotation::unit_wire(&n);
        assert!(ann.flop_clk_to_q_ps(FlopId::new(0)) > n.library.flop().clk_to_q_ps);
    }
}
