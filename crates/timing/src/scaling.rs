//! IR-drop-aware delay scaling (paper §3.2).
//!
//! The paper's second PLI plugs reported per-instance voltages into the
//! gate-level simulator, scaling every cell delay by
//! `1 + k_volt · ΔV` with `k_volt = 0.9` (a 0.1 V droop slows a cell by
//! 9 %). [`scale_annotation`] implements the same transformation on a
//! [`DelayAnnotation`], producing the "Case 2" timing the paper's Figure 7
//! compares against the nominal "Case 1".

use crate::DelayAnnotation;
use serde::{Deserialize, Serialize};

/// A signoff process/voltage/temperature corner.
///
/// Pattern signoff traditionally simulates at the best and worst corners
/// (paper §3.2); both apply one uniform factor to *every* cell, unlike
/// the per-instance IR-drop scaling this crate also provides — which is
/// exactly the paper's criticism of corner-based signoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corner {
    /// Fast silicon, high voltage, low temperature.
    Best,
    /// Nominal.
    Typical,
    /// Slow silicon, low voltage, high temperature.
    Worst,
}

impl Corner {
    /// The uniform delay factor of the corner (180 nm-class spread).
    pub const fn delay_factor(self) -> f64 {
        match self {
            Corner::Best => 0.85,
            Corner::Typical => 1.0,
            Corner::Worst => 1.25,
        }
    }
}

/// Returns the annotation scaled uniformly to a signoff corner.
pub fn at_corner(annotation: &DelayAnnotation, corner: Corner) -> DelayAnnotation {
    let f = corner.delay_factor() - 1.0;
    // Reuse the per-instance scaler with a uniform pseudo-droop of f/k,
    // k = 1: scale = 1 + f.
    let gates = vec![f.max(0.0); annotation.num_gates()];
    let flops = vec![f.max(0.0); annotation.num_flops()];
    if f >= 0.0 {
        scale_annotation(annotation, &gates, &flops, 1.0)
    } else {
        // Fast corner: shrink directly.
        let mut out = annotation.clone();
        let (rise, fall, ck2q) = out.delays_mut();
        for v in rise
            .iter_mut()
            .chain(fall.iter_mut())
            .chain(ck2q.iter_mut())
        {
            *v *= corner.delay_factor();
        }
        out
    }
}

/// Returns a new annotation with every gate and flop delay scaled by
/// `1 + k_volt · ΔV` using per-instance supply droops (in volts).
///
/// Negative droop entries are clamped to zero (supply overshoot is not
/// allowed to speed cells up, matching the paper's one-sided model).
///
/// # Panics
///
/// Panics if the droop slices do not match the annotation's gate/flop
/// counts.
pub fn scale_annotation(
    annotation: &DelayAnnotation,
    gate_drop_v: &[f64],
    flop_drop_v: &[f64],
    k_volt_per_volt: f64,
) -> DelayAnnotation {
    assert_eq!(
        gate_drop_v.len(),
        annotation.num_gates(),
        "one droop entry per gate"
    );
    assert_eq!(
        flop_drop_v.len(),
        annotation.num_flops(),
        "one droop entry per flop"
    );
    let mut scaled = annotation.clone();
    let (rise, fall, clk_to_q) = scaled.delays_mut();
    for (i, d) in gate_drop_v.iter().enumerate() {
        let s = 1.0 + k_volt_per_volt * d.max(0.0);
        rise[i] *= s;
        fall[i] *= s;
    }
    for (i, d) in flop_drop_v.iter().enumerate() {
        let s = 1.0 + k_volt_per_volt * d.max(0.0);
        clk_to_q[i] *= s;
    }
    scaled
}

/// Convenience: the delay scale factor for a droop of `delta_v` volts.
///
/// # Example
///
/// ```
/// // k_volt = 0.9: a 0.1 V droop slows a cell by 9 %.
/// assert!((scap_timing::scaling::scale_factor(0.1, 0.9) - 1.09).abs() < 1e-12);
/// ```
#[inline]
pub fn scale_factor(delta_v: f64, k_volt_per_volt: f64) -> f64 {
    1.0 + k_volt_per_volt * delta_v.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, FlopId, GateId, NetlistBuilder};

    fn ann() -> (scap_netlist::Netlist, DelayAnnotation) {
        let mut b = NetlistBuilder::new("d");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let y = b.add_net("y");
        let q = b.add_net("q");
        b.add_gate(CellKind::Inv, &[a], y, blk).unwrap();
        b.add_flop("ff", y, q, clk, ClockEdge::Rising, blk).unwrap();
        let n = b.finish().unwrap();
        let ann = DelayAnnotation::unit_wire(&n);
        (n, ann)
    }

    #[test]
    fn corners_scale_uniformly() {
        let (_, a) = ann();
        let worst = at_corner(&a, Corner::Worst);
        let best = at_corner(&a, Corner::Best);
        let typical = at_corner(&a, Corner::Typical);
        let g = GateId::new(0);
        assert!((worst.gate_rise_ps(g) - 1.25 * a.gate_rise_ps(g)).abs() < 1e-9);
        assert!((best.gate_fall_ps(g) - 0.85 * a.gate_fall_ps(g)).abs() < 1e-9);
        assert_eq!(typical.gate_rise_ps(g), a.gate_rise_ps(g));
        let f = FlopId::new(0);
        assert!((worst.flop_clk_to_q_ps(f) - 1.25 * a.flop_clk_to_q_ps(f)).abs() < 1e-9);
        assert!((best.flop_clk_to_q_ps(f) - 0.85 * a.flop_clk_to_q_ps(f)).abs() < 1e-9);
    }

    #[test]
    fn paper_calibration_point() {
        // 5 % voltage decrease (0.1 V at 1.8 V… the paper's example) → +9 %.
        assert!((scale_factor(0.1, 0.9) - 1.09).abs() < 1e-12);
        // No droop → no change.
        assert_eq!(scale_factor(0.0, 0.9), 1.0);
    }

    #[test]
    fn scales_gates_and_flops_independently() {
        let (_, a) = ann();
        let scaled = scale_annotation(&a, &[0.2], &[0.0], 0.9);
        let g = GateId::new(0);
        let f = FlopId::new(0);
        assert!((scaled.gate_rise_ps(g) - a.gate_rise_ps(g) * 1.18).abs() < 1e-9);
        assert!((scaled.gate_fall_ps(g) - a.gate_fall_ps(g) * 1.18).abs() < 1e-9);
        assert_eq!(scaled.flop_clk_to_q_ps(f), a.flop_clk_to_q_ps(f));
    }

    #[test]
    fn negative_droop_is_clamped() {
        let (_, a) = ann();
        let scaled = scale_annotation(&a, &[-0.5], &[-0.1], 0.9);
        assert_eq!(
            scaled.gate_rise_ps(GateId::new(0)),
            a.gate_rise_ps(GateId::new(0))
        );
        assert_eq!(
            scaled.flop_clk_to_q_ps(FlopId::new(0)),
            a.flop_clk_to_q_ps(FlopId::new(0))
        );
    }

    #[test]
    #[should_panic(expected = "one droop entry per gate")]
    fn validates_slice_lengths() {
        let (_, a) = ann();
        let _ = scale_annotation(&a, &[], &[0.0], 0.9);
    }
}
