//! Static timing analysis: longest-path arrival per net and per endpoint.

use crate::{ClockArrivals, DelayAnnotation};
use scap_netlist::{FlopId, Levelization, NetId, NetSource, Netlist};

/// Timing of one capture endpoint (a flop D pin).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EndpointTiming {
    /// The capturing flop.
    pub flop: FlopId,
    /// Worst data arrival at the D pin, ps, measured from the launch clock
    /// edge at time 0.
    pub data_arrival_ps: f64,
    /// Required time: capture-clock arrival + period − setup, ps.
    pub required_ps: f64,
}

impl EndpointTiming {
    /// Slack in ps (negative = violation).
    #[inline]
    pub fn slack_ps(&self) -> f64 {
        self.required_ps - self.data_arrival_ps
    }
}

/// Topological longest-path analysis under a [`DelayAnnotation`].
///
/// Launch model: every flop Q toggles at its clock arrival + clock-to-Q;
/// primary inputs change at time 0 (the paper holds PIs constant during
/// at-speed test, so they rarely dominate).
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::{Netlist, ClockId, Floorplan};
/// # fn demo(netlist: &Netlist, floorplan: &Floorplan) {
/// use scap_timing::{ClockTree, DelayAnnotation, Sta};
/// let ann = DelayAnnotation::extract(netlist, floorplan);
/// let tree = ClockTree::synthesize(netlist, floorplan, ClockId::new(0));
/// let sta = Sta::run(netlist, &ann, &tree.arrivals());
/// let wns = sta.endpoints().iter().map(|e| e.slack_ps()).fold(f64::MAX, f64::min);
/// println!("WNS = {wns} ps");
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Sta {
    arrival_ps: Vec<f64>,
    endpoints: Vec<EndpointTiming>,
}

impl Sta {
    /// Runs longest-path STA for the domain covered by `clock_arrivals`.
    ///
    /// Flops outside the domain are treated as launching at time 0 and are
    /// not reported as endpoints.
    pub fn run(
        netlist: &Netlist,
        annotation: &DelayAnnotation,
        clock_arrivals: &ClockArrivals,
    ) -> Self {
        let lv = Levelization::build(netlist);
        let mut arrival_ps = vec![0.0f64; netlist.num_nets()];
        // Launch times at flop Q nets.
        for (f, t_clk) in clock_arrivals.iter() {
            let ff = netlist.flop(f);
            arrival_ps[ff.q.index()] = t_clk + annotation.flop_clk_to_q_ps(f);
        }
        for &g in lv.order() {
            let gate = netlist.gate(g);
            let worst_in = gate
                .inputs
                .iter()
                .map(|n| arrival_ps[n.index()])
                .fold(0.0f64, f64::max);
            arrival_ps[gate.output.index()] = worst_in + annotation.gate_delay_ps(g);
        }
        let period_ps = clock_arrivals
            .iter()
            .next()
            .map(|(f, _)| netlist.clock(netlist.flop(f).clock).period_ps())
            .unwrap_or(0.0);
        let setup = netlist.library.flop().setup_ps;
        let endpoints = clock_arrivals
            .iter()
            .map(|(f, t_clk)| EndpointTiming {
                flop: f,
                data_arrival_ps: arrival_ps[netlist.flop(f).d.index()],
                required_ps: t_clk + period_ps - setup,
            })
            .collect();
        Sta {
            arrival_ps,
            endpoints,
        }
    }

    /// Worst arrival time at a net, ps.
    #[inline]
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrival_ps[net.index()]
    }

    /// Endpoint report, one entry per in-domain flop.
    pub fn endpoints(&self) -> &[EndpointTiming] {
        &self.endpoints
    }

    /// Critical-path delay: the maximum data arrival over all endpoints, ps.
    pub fn critical_path_ps(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|e| e.data_arrival_ps)
            .fold(0.0, f64::max)
    }

    /// Worst negative slack over all endpoints (most-negative slack), or
    /// `None` with no endpoints.
    pub fn worst_slack_ps(&self) -> Option<f64> {
        self.endpoints
            .iter()
            .map(|e| e.slack_ps())
            .min_by(|a, b| a.partial_cmp(b).expect("slacks are finite"))
    }

    /// Marks nets on any path whose endpoint arrival equals the critical
    /// path (within `tol_ps`). Used to pick "long path" patterns.
    pub fn is_near_critical(&self, netlist: &Netlist, net: NetId, tol_ps: f64) -> bool {
        // A net is near-critical if its arrival plus the remaining longest
        // path to an endpoint is within tolerance; approximate with the
        // arrival alone relative to the critical path.
        let _ = netlist;
        self.arrival_ps(net) + tol_ps >= self.critical_path_ps()
    }

    /// Traces the `count` worst paths: for each of the latest-arriving
    /// endpoints, walks back through the max-arrival predecessor at every
    /// gate until a launch point (flop Q, primary input or constant).
    ///
    /// Fully deterministic: endpoints with equal arrivals are ordered by
    /// flop id, and arrival ties during the walk-back resolve to the
    /// lowest net id, so the report is byte-identical across runs and
    /// thread counts.
    pub fn worst_paths(&self, netlist: &Netlist, count: usize) -> Vec<PathReport> {
        let mut order: Vec<&EndpointTiming> = self.endpoints.iter().collect();
        order.sort_by(|a, b| {
            b.data_arrival_ps
                .total_cmp(&a.data_arrival_ps)
                .then_with(|| a.flop.index().cmp(&b.flop.index()))
        });
        order
            .into_iter()
            .take(count)
            .map(|ep| {
                let nets = trace_path(netlist, |n| self.arrival_ps(n), ep.flop);
                PathReport {
                    endpoint: ep.flop,
                    data_arrival_ps: ep.data_arrival_ps,
                    slack_ps: ep.slack_ps(),
                    nets,
                }
            })
            .collect()
    }
}

/// Walks back from an endpoint's D net through the max-arrival
/// predecessor at every gate until a launch point (flop Q, primary input
/// or constant). Arrival ties resolve to the lowest net id so the traced
/// path is unique. Returns `(net, arrival)` pairs, launch first.
pub(crate) fn trace_path(
    netlist: &Netlist,
    arrival_ps: impl Fn(NetId) -> f64,
    endpoint: FlopId,
) -> Vec<(NetId, f64)> {
    let mut nets = Vec::new();
    let mut net = netlist.flop(endpoint).d;
    loop {
        nets.push((net, arrival_ps(net)));
        match netlist.net(net).source {
            Some(NetSource::Gate(g)) => {
                let gate = netlist.gate(g);
                net = gate
                    .inputs
                    .iter()
                    .copied()
                    .min_by(|a, b| {
                        arrival_ps(*b)
                            .total_cmp(&arrival_ps(*a))
                            .then_with(|| a.index().cmp(&b.index()))
                    })
                    .expect("gates have inputs");
            }
            _ => break,
        }
    }
    nets.reverse();
    nets
}

/// One traced timing path, launch to capture.
#[derive(Clone, Debug)]
pub struct PathReport {
    /// The capturing flop.
    pub endpoint: FlopId,
    /// Data arrival at the endpoint, ps.
    pub data_arrival_ps: f64,
    /// Endpoint slack, ps.
    pub slack_ps: f64,
    /// `(net, arrival)` along the path, launch first.
    pub nets: Vec<(NetId, f64)>,
}

impl PathReport {
    /// Logic depth of the path (number of gate stages).
    pub fn depth(&self) -> usize {
        self.nets.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClockTree;
    use scap_netlist::{
        CellKind, ClockEdge, ClockId, Die, Floorplan, NetlistBuilder, Placement, Point, Rect,
    };

    /// Two flops with a 3-inverter chain between them.
    fn pipeline() -> (Netlist, Floorplan) {
        let mut b = NetlistBuilder::new("p");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let pi = b.add_primary_input("pi");
        let q0 = b.add_net("q0");
        let mut prev = q0;
        let mut gate_count = 0;
        for i in 0..3 {
            let y = b.add_net(format!("y{i}"));
            b.add_gate(CellKind::Inv, &[prev], y, blk).unwrap();
            gate_count += 1;
            prev = y;
        }
        let q1 = b.add_net("q1");
        b.add_flop("ff0", pi, q0, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ff1", prev, q1, clk, ClockEdge::Rising, blk)
            .unwrap();
        let n = b.finish().unwrap();
        let fp = Floorplan::new(
            &n,
            Die::square(100.0),
            vec![Rect::new(0.0, 0.0, 100.0, 100.0)],
            Placement::new(
                vec![Point::new(50.0, 50.0); gate_count],
                vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)],
            ),
        );
        (n, fp)
    }

    #[test]
    fn arrival_accumulates_along_chain() {
        let (n, fp) = pipeline();
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let sta = Sta::run(&n, &ann, &tree.arrivals());
        // ff1's D input should arrive later than ff0's Q.
        let q0 = n.flop(FlopId::new(0)).q;
        let d1 = n.flop(FlopId::new(1)).d;
        assert!(sta.arrival_ps(d1) > sta.arrival_ps(q0));
        assert_eq!(sta.endpoints().len(), 2);
    }

    #[test]
    fn slack_positive_for_short_pipeline_at_100mhz() {
        let (n, fp) = pipeline();
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let sta = Sta::run(&n, &ann, &tree.arrivals());
        assert!(sta.worst_slack_ps().unwrap() > 0.0);
        assert!(sta.critical_path_ps() > 0.0);
    }

    #[test]
    fn worst_paths_are_sorted_and_monotone() {
        let (n, fp) = pipeline();
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let sta = Sta::run(&n, &ann, &tree.arrivals());
        let paths = sta.worst_paths(&n, 2);
        assert_eq!(paths.len(), 2);
        assert!(paths[0].data_arrival_ps >= paths[1].data_arrival_ps);
        // Arrivals increase along the path.
        let worst = &paths[0];
        assert!(worst.depth() >= 1);
        for w in worst.nets.windows(2) {
            assert!(w[0].1 <= w[1].1, "{:?}", worst.nets);
        }
        // The path's final arrival is the endpoint arrival.
        assert!((worst.nets.last().unwrap().1 - worst.data_arrival_ps).abs() < 1e-9);
    }

    #[test]
    fn worst_paths_break_arrival_ties_by_flop_id() {
        // Two flops capturing the same net arrive at exactly the same
        // time; the report must list the lower flop id first, every run.
        let mut b = NetlistBuilder::new("tie");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let pi = b.add_primary_input("pi");
        let q0 = b.add_net("q0");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[q0], y, blk).unwrap();
        let qa = b.add_net("qa");
        let qb = b.add_net("qb");
        b.add_flop("ff0", pi, q0, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ffa", y, qa, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ffb", y, qb, clk, ClockEdge::Rising, blk)
            .unwrap();
        let n = b.finish().unwrap();
        let fp = Floorplan::new(
            &n,
            Die::square(100.0),
            vec![Rect::new(0.0, 0.0, 100.0, 100.0)],
            Placement::new(
                vec![Point::new(50.0, 50.0)],
                vec![Point::new(50.0, 50.0); 3],
            ),
        );
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let sta = Sta::run(&n, &ann, &tree.arrivals());
        let paths = sta.worst_paths(&n, 3);
        assert_eq!(paths[0].data_arrival_ps, paths[1].data_arrival_ps);
        assert!(paths[0].endpoint.index() < paths[1].endpoint.index());
    }

    #[test]
    fn scaled_delays_reduce_slack() {
        let (n, fp) = pipeline();
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let slow = crate::scaling::scale_annotation(
            &ann,
            &vec![0.3; n.num_gates()],
            &vec![0.3; n.num_flops()],
            n.library.k_volt_per_volt,
        );
        let fast = Sta::run(&n, &ann, &tree.arrivals());
        let slow = Sta::run(&n, &slow, &tree.arrivals());
        assert!(slow.worst_slack_ps().unwrap() < fast.worst_slack_ps().unwrap());
    }
}
