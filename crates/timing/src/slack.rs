//! Full slack analysis: forward arrival **and** backward required-time
//! passes over the levelized netlist, per-net slack, launch reachability
//! and fault risk tiers.
//!
//! [`Sta`](crate::Sta) computes only the forward max-arrival pass; this
//! module adds the backward pass so every *net* (not just every endpoint)
//! carries a slack — the slack of the worst path through that net. That is
//! the quantity the paper's flow needs twice over:
//!
//! * **fault risk tiers** (paper §4): a transition fault on a
//!   near-critical net is the one supply noise can push past the capture
//!   edge, so ATPG should target it through its longest path;
//! * **derated signoff** (paper §3.2): re-running the same analysis with
//!   IR-drop-scaled delays (see [`crate::scaling::scale_annotation`])
//!   turns the nominal slack distribution into the noise-aware one, and
//!   the delta is exactly the paper's "Region 2" false-failure population.
//!
//! The forward pass is bit-identical to [`Sta`](crate::Sta) (the retained
//! oracle); both are sequential over the levelization, so results are
//! byte-identical across thread counts by construction.

use crate::sta::trace_path;
use crate::{ClockArrivals, DelayAnnotation, EndpointTiming, PathReport};
use scap_netlist::{FlopId, Levelization, NetId, NetSource, Netlist};

/// How exposed a fault site is to supply-noise-induced delay, judged by
/// the slack of the worst path through its net.
///
/// Tiers are ordered most-at-risk first, so sorting faults by tier puts
/// the paper's "long path through the fault site" targets up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RiskTier {
    /// Negative slack: the path already fails timing.
    Critical,
    /// Slack below 5 % of the clock period — a realistic droop kills it.
    High,
    /// Slack below 15 % of the period.
    Moderate,
    /// Comfortable margin.
    Low,
}

impl RiskTier {
    /// Classifies a slack against the domain period.
    pub fn classify(slack_ps: f64, period_ps: f64) -> RiskTier {
        if slack_ps < 0.0 {
            RiskTier::Critical
        } else if slack_ps < 0.05 * period_ps {
            RiskTier::High
        } else if slack_ps < 0.15 * period_ps {
            RiskTier::Moderate
        } else {
            RiskTier::Low
        }
    }

    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RiskTier::Critical => "critical",
            RiskTier::High => "high",
            RiskTier::Moderate => "moderate",
            RiskTier::Low => "low",
        }
    }

    /// All tiers, most-at-risk first.
    pub const ALL: [RiskTier; 4] = [
        RiskTier::Critical,
        RiskTier::High,
        RiskTier::Moderate,
        RiskTier::Low,
    ];
}

/// Forward + backward static timing analysis for one clock domain.
///
/// # Example
///
/// ```no_run
/// # use scap_netlist::{Netlist, ClockId, Floorplan};
/// # fn demo(netlist: &Netlist, floorplan: &Floorplan) {
/// use scap_timing::{ClockTree, DelayAnnotation, SlackSta};
/// let ann = DelayAnnotation::extract(netlist, floorplan);
/// let tree = ClockTree::synthesize(netlist, floorplan, ClockId::new(0));
/// let sta = SlackSta::run(netlist, &ann, &tree.arrivals());
/// for (f, _) in tree.arrivals().iter() {
///     let d = netlist.flop(f).d;
///     println!("flop {f:?}: slack {} ps", sta.slack_ps(d));
/// }
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SlackSta {
    arrival_ps: Vec<f64>,
    required_ps: Vec<f64>,
    reachable: Vec<bool>,
    endpoints: Vec<EndpointTiming>,
    period_ps: f64,
}

impl SlackSta {
    /// Runs the forward and backward passes for the domain covered by
    /// `clock_arrivals`.
    ///
    /// The forward pass matches [`Sta::run`](crate::Sta::run) exactly;
    /// the backward pass seeds each in-domain endpoint's D net with its
    /// required time and relaxes `required[input] =
    /// min(required[output] − gate_delay)` in reverse topological order.
    pub fn run(
        netlist: &Netlist,
        annotation: &DelayAnnotation,
        clock_arrivals: &ClockArrivals,
    ) -> Self {
        let lv = Levelization::build(netlist);
        let num_nets = netlist.num_nets();
        let mut arrival_ps = vec![0.0f64; num_nets];
        // Launch reachability: nets driven by a flop Q or a primary input
        // can carry a launch transition; constants cannot.
        let mut reachable = vec![false; num_nets];
        for (i, net) in netlist.nets().iter().enumerate() {
            reachable[i] = matches!(
                net.source,
                Some(NetSource::Flop(_)) | Some(NetSource::PrimaryInput)
            );
        }
        for (f, t_clk) in clock_arrivals.iter() {
            let ff = netlist.flop(f);
            arrival_ps[ff.q.index()] = t_clk + annotation.flop_clk_to_q_ps(f);
        }
        for &g in lv.order() {
            let gate = netlist.gate(g);
            let mut worst_in = 0.0f64;
            let mut any_reachable = false;
            for n in &gate.inputs {
                worst_in = worst_in.max(arrival_ps[n.index()]);
                any_reachable |= reachable[n.index()];
            }
            arrival_ps[gate.output.index()] = worst_in + annotation.gate_delay_ps(g);
            reachable[gate.output.index()] = any_reachable;
        }
        let period_ps = clock_arrivals
            .iter()
            .next()
            .map(|(f, _)| netlist.clock(netlist.flop(f).clock).period_ps())
            .unwrap_or(0.0);
        let setup = netlist.library.flop().setup_ps;
        // Backward required-time pass.
        let mut required_ps = vec![f64::INFINITY; num_nets];
        let mut endpoints = Vec::new();
        for (f, t_clk) in clock_arrivals.iter() {
            let d = netlist.flop(f).d;
            let required = t_clk + period_ps - setup;
            required_ps[d.index()] = required_ps[d.index()].min(required);
            endpoints.push(EndpointTiming {
                flop: f,
                data_arrival_ps: arrival_ps[d.index()],
                required_ps: required,
            });
        }
        for &g in lv.order().iter().rev() {
            let gate = netlist.gate(g);
            let r_out = required_ps[gate.output.index()];
            if !r_out.is_finite() {
                continue;
            }
            let r_in = r_out - annotation.gate_delay_ps(g);
            for n in &gate.inputs {
                required_ps[n.index()] = required_ps[n.index()].min(r_in);
            }
        }
        SlackSta {
            arrival_ps,
            required_ps,
            reachable,
            endpoints,
            period_ps,
        }
    }

    /// Worst arrival time at a net, ps.
    #[inline]
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrival_ps[net.index()]
    }

    /// Required time at a net, ps: the latest a transition may pass
    /// through the net without violating some downstream endpoint's
    /// setup. `+∞` for nets with no in-domain endpoint downstream.
    #[inline]
    pub fn required_ps(&self, net: NetId) -> f64 {
        self.required_ps[net.index()]
    }

    /// Slack of the worst path through a net, ps (negative = violation,
    /// `+∞` if no endpoint is downstream).
    #[inline]
    pub fn slack_ps(&self, net: NetId) -> f64 {
        self.required_ps[net.index()] - self.arrival_ps[net.index()]
    }

    /// Whether a launch transition (from a flop Q or primary input) can
    /// reach this net at all.
    #[inline]
    pub fn is_reachable(&self, net: NetId) -> bool {
        self.reachable[net.index()]
    }

    /// Endpoint report, one entry per in-domain flop, in clock-arrival
    /// (flop) order.
    pub fn endpoints(&self) -> &[EndpointTiming] {
        &self.endpoints
    }

    /// The domain's clock period, ps.
    #[inline]
    pub fn period_ps(&self) -> f64 {
        self.period_ps
    }

    /// Endpoints whose D net cannot be reached from any launch flop or
    /// primary input (only constants feed them) — untestable for
    /// transition delay, flagged by the `TIM003` lint rule.
    pub fn unreachable_endpoints(&self, netlist: &Netlist) -> Vec<FlopId> {
        self.endpoints
            .iter()
            .filter(|e| !self.reachable[netlist.flop(e.flop).d.index()])
            .map(|e| e.flop)
            .collect()
    }

    /// Worst negative slack over all endpoints, or `None` with no
    /// endpoints.
    pub fn worst_slack_ps(&self) -> Option<f64> {
        self.endpoints
            .iter()
            .map(|e| e.slack_ps())
            .min_by(f64::total_cmp)
    }

    /// Critical-path delay: the maximum data arrival over all endpoints.
    pub fn critical_path_ps(&self) -> f64 {
        self.endpoints
            .iter()
            .map(|e| e.data_arrival_ps)
            .fold(0.0, f64::max)
    }

    /// Risk tier of the worst path through a net.
    pub fn risk_tier(&self, net: NetId) -> RiskTier {
        RiskTier::classify(self.slack_ps(net), self.period_ps)
    }

    /// Traces the `count` smallest-slack paths, deterministically:
    /// endpoints sort by ascending slack with flop-id tie-break, and the
    /// walk-back resolves arrival ties to the lowest net id.
    pub fn worst_paths(&self, netlist: &Netlist, count: usize) -> Vec<PathReport> {
        let mut order: Vec<&EndpointTiming> = self.endpoints.iter().collect();
        order.sort_by(|a, b| {
            a.slack_ps()
                .total_cmp(&b.slack_ps())
                .then_with(|| a.flop.index().cmp(&b.flop.index()))
        });
        order
            .into_iter()
            .take(count)
            .map(|ep| PathReport {
                endpoint: ep.flop,
                data_arrival_ps: ep.data_arrival_ps,
                slack_ps: ep.slack_ps(),
                nets: trace_path(netlist, |n| self.arrival_ps(n), ep.flop),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockTree, Sta};
    use scap_netlist::{
        CellKind, ClockEdge, ClockId, Die, Floorplan, NetlistBuilder, Placement, Point, Rect,
    };

    /// Two flops with a 3-inverter chain between them, plus a flop whose
    /// D is tied to a constant (unreachable endpoint).
    fn pipeline() -> (Netlist, Floorplan) {
        let mut b = NetlistBuilder::new("p");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let pi = b.add_primary_input("pi");
        let q0 = b.add_net("q0");
        let mut prev = q0;
        let mut gate_count = 0;
        for i in 0..3 {
            let y = b.add_net(format!("y{i}"));
            b.add_gate(CellKind::Inv, &[prev], y, blk).unwrap();
            gate_count += 1;
            prev = y;
        }
        let q1 = b.add_net("q1");
        let zero = b.add_const("tie0", false);
        let q2 = b.add_net("q2");
        b.add_flop("ff0", pi, q0, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ff1", prev, q1, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("ff2", zero, q2, clk, ClockEdge::Rising, blk)
            .unwrap();
        let n = b.finish().unwrap();
        let fp = Floorplan::new(
            &n,
            Die::square(100.0),
            vec![Rect::new(0.0, 0.0, 100.0, 100.0)],
            Placement::new(
                vec![Point::new(50.0, 50.0); gate_count],
                vec![
                    Point::new(10.0, 10.0),
                    Point::new(90.0, 90.0),
                    Point::new(90.0, 10.0),
                ],
            ),
        );
        (n, fp)
    }

    fn analyzed() -> (Netlist, SlackSta, Sta) {
        let (n, fp) = pipeline();
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let slack = SlackSta::run(&n, &ann, &tree.arrivals());
        let oracle = Sta::run(&n, &ann, &tree.arrivals());
        (n, slack, oracle)
    }

    #[test]
    fn forward_pass_matches_sta_oracle() {
        let (n, slack, oracle) = analyzed();
        for i in 0..n.num_nets() {
            let net = NetId::new(i as u32);
            assert_eq!(slack.arrival_ps(net), oracle.arrival_ps(net), "net {i}");
        }
        assert_eq!(slack.endpoints(), oracle.endpoints());
        assert_eq!(slack.worst_slack_ps(), oracle.worst_slack_ps());
    }

    #[test]
    fn net_slack_bounds_endpoint_slack() {
        // The slack of an endpoint's D net is at most that endpoint's
        // slack (the backward pass takes the min over all endpoints).
        let (n, slack, _) = analyzed();
        for ep in slack.endpoints() {
            let d = n.flop(ep.flop).d;
            assert!(slack.slack_ps(d) <= ep.slack_ps() + 1e-9);
        }
    }

    #[test]
    fn required_decreases_backward_along_the_chain() {
        let (n, slack, _) = analyzed();
        let q0 = n.flop(FlopId::new(0)).q;
        let d1 = n.flop(FlopId::new(1)).d;
        assert!(slack.required_ps(q0) < slack.required_ps(d1));
        // Every net on the single path carries the same slack.
        assert!((slack.slack_ps(q0) - slack.slack_ps(d1)).abs() < 1e-9);
    }

    #[test]
    fn unreachable_endpoint_is_reported() {
        let (n, slack, _) = analyzed();
        assert_eq!(slack.unreachable_endpoints(&n), vec![FlopId::new(2)]);
        let d1 = n.flop(FlopId::new(1)).d;
        assert!(slack.is_reachable(d1));
    }

    #[test]
    fn risk_tiers_order_by_slack() {
        assert_eq!(RiskTier::classify(-1.0, 20_000.0), RiskTier::Critical);
        assert_eq!(RiskTier::classify(500.0, 20_000.0), RiskTier::High);
        assert_eq!(RiskTier::classify(2_000.0, 20_000.0), RiskTier::Moderate);
        assert_eq!(RiskTier::classify(10_000.0, 20_000.0), RiskTier::Low);
        assert!(RiskTier::Critical < RiskTier::Low);
    }

    #[test]
    fn worst_paths_sorted_by_slack() {
        let (n, slack, _) = analyzed();
        let paths = slack.worst_paths(&n, 3);
        assert_eq!(paths.len(), 3);
        for w in paths.windows(2) {
            assert!(w[0].slack_ps <= w[1].slack_ps);
        }
        // The tightest path is the 3-inverter chain into ff1.
        assert_eq!(paths[0].endpoint, FlopId::new(1));
        assert!(paths[0].depth() >= 3);
    }

    #[test]
    fn scaled_delays_shift_the_slack_distribution() {
        let (n, fp) = pipeline();
        let ann = DelayAnnotation::extract(&n, &fp);
        let tree = ClockTree::synthesize(&n, &fp, ClockId::new(0));
        let slow = crate::scaling::scale_annotation(
            &ann,
            &vec![0.3; n.num_gates()],
            &vec![0.3; n.num_flops()],
            n.library.k_volt_per_volt,
        );
        let nominal = SlackSta::run(&n, &ann, &tree.arrivals());
        let derated = SlackSta::run(&n, &slow, &tree.arrivals());
        let d1 = n.flop(FlopId::new(1)).d;
        assert!(derated.slack_ps(d1) < nominal.slack_ps(d1));
        assert!(derated.critical_path_ps() > nominal.critical_path_ps());
    }
}
