//! Resident HTTP serving layer for the SCAP pipeline.
//!
//! Every other surface of this workspace is one-shot: a `scap`
//! invocation regenerates the synthetic SOC, re-inserts scan and
//! re-runs analysis from scratch. This crate keeps the expensive state
//! resident and serves it over a zero-dependency (std-only, consistent
//! with the vendored-deps policy) HTTP/1.1 JSON API:
//!
//! | Endpoint            | What it serves                                   |
//! |---------------------|--------------------------------------------------|
//! | `GET /healthz`      | liveness (answered inline, never queued)         |
//! | `GET /metrics`      | the full `scap-obs` registry as JSON             |
//! | `GET /v1/design`    | Tables 1–2 design report                         |
//! | `POST /v1/lint`     | cross-layer design-rule check                    |
//! | `POST /v1/sta`      | nominal / IR-drop-derated slack analysis         |
//! | `POST /v1/profile`  | per-pattern SCAP + screen verdicts               |
//! | `POST /v1/schedule` | power-constrained session scheduling             |
//! | `POST /v1/shutdown` | graceful drain + exit                            |
//!
//! Three mechanisms make it hold up under concurrent traffic:
//!
//! * a **design cache** ([`cache::DesignCache`]) — LRU over built
//!   [`scap::CaseStudy`] instances keyed by `(scale, seed)`, with
//!   single-flight deduplication so N concurrent cold requests trigger
//!   exactly one build;
//! * a **response cache** ([`cache::ResponseCache`]) — LRU over
//!   rendered 200 bodies keyed by the full canonical parameter tuple
//!   (every analysis handler is pure, so repeats are answered from
//!   bytes); capacity is the `--cache-cap` flag, and the
//!   `serve.respcache.*` counters make shard-cache pressure visible to
//!   the cluster coordinator;
//! * a **bounded job pool** ([`pool::JobPool`], layered on
//!   [`scap_exec::BoundedQueue`]) — fixed workers, fixed queue depth,
//!   per-request deadlines; a full queue answers `503` +
//!   `Retry-After` (**backpressure**) instead of accepting unbounded
//!   work, and a missed deadline answers `504` with the job abandoned;
//! * **graceful shutdown** — stop accepting, drain in-flight jobs,
//!   flush a final metrics snapshot (returned from [`Server::run`]).
//!
//! The cheap endpoints (`/healthz`, `/metrics`, `/v1/shutdown`) are
//! answered on the connection thread so the server stays observable
//! even when the pool is saturated.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod handlers;
pub mod http;
pub mod loadgen;
pub mod params;
pub mod pool;

pub use handlers::{lint_report, lint_report_with};

use cache::{DesignCache, ResponseCache};
use http::{read_request, ReadError, Request, Response};
use params::Args;
use pool::JobPool;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server configuration; every knob mirrors a `scap serve` flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, `host:port` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Pool worker threads running the heavy endpoints.
    pub workers: usize,
    /// Jobs the pool queues beyond the running ones before shedding.
    pub queue_depth: usize,
    /// Designs the LRU cache keeps resident.
    pub cache_capacity: usize,
    /// Rendered 200 responses the LRU response cache keeps resident
    /// (the `--cache-cap` flag); every analysis endpoint is pure, so a
    /// repeat request is answered from bytes.
    pub response_cache_capacity: usize,
    /// Default per-request deadline (override per request with
    /// `deadline_ms`).
    pub default_deadline: Duration,
    /// Enables the `/v1/sleep` test endpoint (integration tests only).
    pub debug_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 2,
            queue_depth: 16,
            cache_capacity: 4,
            response_cache_capacity: 32,
            default_deadline: Duration::from_secs(60),
            debug_endpoints: false,
        }
    }
}

/// Signals a running [`Server`] to shut down gracefully. Clone-cheap;
/// usable from any thread (the CLI wires it to `POST /v1/shutdown`).
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: the accept loop stops taking connections and
    /// drains everything in flight. Idempotent.
    pub fn signal(&self) {
        self.flag.store(true, Ordering::Release);
        // Wake a blocked `accept` with a throwaway connection; the
        // handler sees an empty request and drops it silently.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Whether shutdown has been requested.
    pub fn is_signaled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

struct ServerCtx {
    cfg: ServeConfig,
    cache: Arc<DesignCache>,
    respcache: Arc<ResponseCache>,
    pool: JobPool,
    shutdown: ShutdownHandle,
    started: Instant,
}

/// The bound, not-yet-running server. [`Server::bind`] then
/// [`Server::run`]; `run` blocks until shutdown is signaled.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.local_addr())
            .finish()
    }
}

impl Server {
    /// Binds the listener and starts the worker pool. Metrics
    /// collection is enabled as a side effect: `/metrics` is part of
    /// the API contract, so the registry must be live.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        scap_obs::set_enabled(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(ServerCtx {
            cache: Arc::new(DesignCache::new(cfg.cache_capacity)),
            respcache: Arc::new(ResponseCache::new(cfg.response_cache_capacity)),
            pool: JobPool::new(cfg.workers, cfg.queue_depth),
            shutdown: ShutdownHandle {
                flag: Arc::new(AtomicBool::new(false)),
                addr,
            },
            started: Instant::now(),
            cfg,
        });
        Ok(Server { listener, ctx })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// A handle that can signal graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.ctx.shutdown.clone()
    }

    /// Serves until shutdown is signaled, then drains: in-flight
    /// connections finish, queued jobs run to completion, workers join.
    /// Returns the final metrics snapshot (the "flush").
    pub fn run(self) -> std::io::Result<scap_obs::Snapshot> {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.ctx.shutdown.is_signaled() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let ctx = Arc::clone(&self.ctx);
            let handle = std::thread::Builder::new()
                .name("scap-serve-conn".to_owned())
                .spawn(move || handle_connection(&ctx, stream))
                .expect("spawning connection thread");
            connections.push(handle);
            connections.retain(|h| !h.is_finished());
        }
        drop(self.listener); // stop accepting before draining
        for h in connections {
            let _ = h.join();
        }
        // All connection threads are joined, so the remaining Arc clones
        // are (at worst) mid-drop; spin briefly rather than assume.
        let mut shared = self.ctx;
        let ctx = loop {
            match Arc::try_unwrap(shared) {
                Ok(ctx) => break ctx,
                Err(still_shared) => {
                    shared = still_shared;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        ctx.pool.shutdown();
        Ok(scap_obs::snapshot())
    }
}

fn handle_connection(ctx: &ServerCtx, mut stream: TcpStream) {
    // Bound how long an idle or trickling peer can hold the thread —
    // also what lets shutdown's drain terminate.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let response = match read_request(&mut stream) {
        Ok(Some(req)) => handle_request(ctx, &req),
        Ok(None) => return, // silent close (shutdown waker, port probe)
        Err(ReadError::Io(_)) => return,
        Err(ReadError::BadRequest(msg)) => Response::error(400, msg),
        Err(ReadError::TooLarge(msg)) => Response::error(413, msg),
    };
    scap_obs::counter!("serve.responses").incr();
    match response.status / 100 {
        2 => scap_obs::counter!("serve.responses.2xx").incr(),
        4 => scap_obs::counter!("serve.responses.4xx").incr(),
        _ => scap_obs::counter!("serve.responses.5xx").incr(),
    }
    if response.status == 503 {
        scap_obs::counter!("serve.responses.503").incr();
    }
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Routes with statically-interned metric names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Route {
    Healthz,
    Metrics,
    Shutdown,
    Design,
    Lint,
    Sta,
    Profile,
    Schedule,
    Sleep,
}

impl Route {
    fn resolve(method: &str, path: &str) -> Result<Route, Response> {
        let route = match path {
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            "/v1/shutdown" => Route::Shutdown,
            "/v1/design" => Route::Design,
            "/v1/lint" => Route::Lint,
            "/v1/sta" => Route::Sta,
            "/v1/profile" => Route::Profile,
            "/v1/schedule" => Route::Schedule,
            "/v1/sleep" => Route::Sleep,
            _ => return Err(Response::error(404, "no such endpoint")),
        };
        let expected = match route {
            Route::Healthz | Route::Metrics | Route::Design | Route::Sleep => "GET",
            Route::Shutdown | Route::Lint | Route::Sta | Route::Profile | Route::Schedule => "POST",
        };
        if method != expected {
            return Err(Response::error(405, &format!("{path} expects {expected}"))
                .with_header("allow", expected));
        }
        Ok(route)
    }

    fn request_counter(self) -> &'static str {
        match self {
            Route::Healthz => "serve.req.healthz",
            Route::Metrics => "serve.req.metrics",
            Route::Shutdown => "serve.req.shutdown",
            Route::Design => "serve.req.design",
            Route::Lint => "serve.req.lint",
            Route::Sta => "serve.req.sta",
            Route::Profile => "serve.req.profile",
            Route::Schedule => "serve.req.schedule",
            Route::Sleep => "serve.req.sleep",
        }
    }

    fn span_name(self) -> &'static str {
        match self {
            Route::Healthz => "serve.handle.healthz",
            Route::Metrics => "serve.handle.metrics",
            Route::Shutdown => "serve.handle.shutdown",
            Route::Design => "serve.handle.design",
            Route::Lint => "serve.handle.lint",
            Route::Sta => "serve.handle.sta",
            Route::Profile => "serve.handle.profile",
            Route::Schedule => "serve.handle.schedule",
            Route::Sleep => "serve.handle.sleep",
        }
    }
}

fn handle_request(ctx: &ServerCtx, req: &Request) -> Response {
    scap_obs::counter!("serve.requests").incr();
    let route = match Route::resolve(&req.method, &req.path) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    scap_obs::counter(route.request_counter()).incr();
    // Time-to-first-byte proxy: the whole handling window (the body is
    // written in one piece right after).
    let _span = scap_obs::Span::enter(scap_obs::span_stats(route.span_name()));
    let args = Args::from_request(&req.query, req.body_str());
    match route {
        Route::Healthz => healthz(ctx),
        Route::Metrics => Response::json(200, scap_obs::render_json(&scap_obs::snapshot())),
        Route::Shutdown => {
            ctx.shutdown.signal();
            let mut obj = scap_obs::json::Obj::new();
            obj.bool("shutting_down", true);
            Response::json(200, obj.finish())
        }
        Route::Sleep if !ctx.cfg.debug_endpoints => Response::error(404, "no such endpoint"),
        Route::Design
        | Route::Lint
        | Route::Sta
        | Route::Profile
        | Route::Schedule
        | Route::Sleep => pooled(ctx, route, &args),
    }
}

fn healthz(ctx: &ServerCtx) -> Response {
    let mut obj = scap_obs::json::Obj::new();
    obj.str("status", "ok")
        .u64("uptime_ms", ctx.started.elapsed().as_millis() as u64)
        .u64("queue_depth", ctx.pool.queue_len() as u64)
        .u64("cached_designs", ctx.cache.len() as u64)
        .u64("cached_responses", ctx.respcache.len() as u64);
    Response::json(200, obj.finish())
}

/// Validates parameters on the connection thread (a `400` must be fast
/// even when the pool is saturated), then admits the heavy body to the
/// pool — or sheds it with `503` + `Retry-After` when the queue is
/// full.
fn pooled(ctx: &ServerCtx, route: Route, args: &Args) -> Response {
    let deadline = match deadline_of(args, ctx.cfg.default_deadline) {
        Ok(d) => d,
        Err(msg) => return Response::error(400, &msg),
    };
    let cache = Arc::clone(&ctx.cache);
    let rc = Arc::clone(&ctx.respcache);
    // Analysis handlers are pure functions of their parameters, so each
    // runs behind the response cache under its canonical key; `/v1/sleep`
    // is the one pooled endpoint with a side effect (time) and skips it.
    let job: Box<dyn FnOnce() -> Response + Send> = match route {
        Route::Design => match handlers::DesignParams::parse(args) {
            Ok(p) => {
                let key = p.cache_key();
                Box::new(move || rc.get_or_respond(key, || handlers::design(&cache, &p)))
            }
            Err(msg) => return Response::error(400, &msg),
        },
        Route::Lint => match handlers::LintParams::parse(args) {
            Ok(p) => {
                let key = p.cache_key();
                Box::new(move || rc.get_or_respond(key, || handlers::lint(&cache, &p)))
            }
            Err(msg) => return Response::error(400, &msg),
        },
        Route::Sta => match handlers::StaParams::parse(args) {
            Ok(p) => {
                let key = p.cache_key();
                Box::new(move || rc.get_or_respond(key, || handlers::sta(&cache, &p)))
            }
            Err(msg) => return Response::error(400, &msg),
        },
        Route::Profile => match handlers::ProfileParams::parse(args) {
            Ok(p) => {
                let key = p.cache_key();
                Box::new(move || rc.get_or_respond(key, || handlers::profile(&cache, &p)))
            }
            Err(msg) => return Response::error(400, &msg),
        },
        Route::Schedule => match handlers::ScheduleParams::parse(args) {
            Ok(p) => {
                let key = p.cache_key();
                Box::new(move || rc.get_or_respond(key, || handlers::schedule(&cache, &p)))
            }
            Err(msg) => return Response::error(400, &msg),
        },
        Route::Sleep => match handlers::SleepParams::parse(args) {
            Ok(p) => Box::new(move || handlers::sleep(&p)),
            Err(msg) => return Response::error(400, &msg),
        },
        Route::Healthz | Route::Metrics | Route::Shutdown => {
            unreachable!("inline routes never reach the pool")
        }
    };
    match ctx.pool.try_submit(job) {
        Ok(handle) => match handle.wait_timeout(deadline) {
            Some(response) => response,
            None => Response::error(504, "deadline exceeded; partial work dropped"),
        },
        Err(pool::Busy) => {
            Response::error(503, "job queue full; retry later").with_header("retry-after", "1")
        }
    }
}

fn deadline_of(args: &Args, default: Duration) -> Result<Duration, String> {
    let Some(raw) = args.get("deadline_ms") else {
        return Ok(default);
    };
    match raw.parse::<u64>() {
        Ok(ms) if ms >= 1 => Ok(Duration::from_millis(ms)),
        _ => Err(format!(
            "deadline_ms expects a positive integer, got '{raw}'"
        )),
    }
}
