//! Endpoint implementations: typed parameter structs (parsed and
//! validated *before* a job is admitted to the pool) and the heavy
//! bodies that run on pool workers.
//!
//! Every handler is a pure function of the cached design and its
//! parameters, so identical requests produce byte-identical JSON no
//! matter how they interleave — the property the load tests assert.

use crate::cache::DesignCache;
use crate::http::Response;
use crate::params::Args;
use scap::dft::FillPolicy;
use scap::tgen::EngineKind;
use scap::{experiments, flows, schedule, CaseStudy, PatternAnalyzer};
use scap_obs::json::{Arr, Obj};

/// Which ATPG flow a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowKind {
    /// Random-fill conventional ATPG.
    Conventional,
    /// The paper's staged noise-aware flow.
    NoiseAware,
}

impl FlowKind {
    fn parse(raw: Option<&str>) -> Result<Self, String> {
        match raw {
            None | Some("noise-aware") => Ok(FlowKind::NoiseAware),
            Some("conventional") => Ok(FlowKind::Conventional),
            Some(other) => Err(format!(
                "flow expects 'conventional' or 'noise-aware', got '{other}'"
            )),
        }
    }

    fn label(self) -> &'static str {
        match self {
            FlowKind::Conventional => "conventional",
            FlowKind::NoiseAware => "noise-aware",
        }
    }
}

fn parse_fill(raw: Option<&str>) -> Result<Option<FillPolicy>, String> {
    match raw {
        None => Ok(None),
        Some("random-fill") | Some("random") => Ok(Some(FillPolicy::Random)),
        Some("fill-0") => Ok(Some(FillPolicy::Zero)),
        Some("fill-1") => Ok(Some(FillPolicy::One)),
        Some("fill-adjacent") => Ok(Some(FillPolicy::Adjacent)),
        Some(other) => Err(format!(
            "fill expects random-fill|fill-0|fill-1|fill-adjacent, got '{other}'"
        )),
    }
}

fn parse_engine(raw: Option<&str>) -> Result<EngineKind, String> {
    match raw {
        None => Ok(EngineKind::Podem),
        Some(s) => EngineKind::parse(s)
            .ok_or_else(|| format!("engine expects podem|sat|hybrid, got '{s}'")),
    }
}

fn fill_label(fill: FillPolicy) -> &'static str {
    match fill {
        FillPolicy::Random => "random-fill",
        FillPolicy::Zero => "fill-0",
        FillPolicy::One => "fill-1",
        FillPolicy::Adjacent => "fill-adjacent",
    }
}

/// Parameters shared by every design-backed endpoint.
#[derive(Clone, Copy, Debug)]
pub struct CommonParams {
    /// Design scale in `(0, 1]`.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl CommonParams {
    fn parse(args: &Args) -> Result<Self, String> {
        Ok(CommonParams {
            scale: args.scale()?,
            seed: args.seed()?,
        })
    }

    /// Canonical key fragment: the exact scale bits plus the seed —
    /// the same identity the design cache and the cluster router use.
    fn key_part(&self) -> String {
        format!("{:016x}|{}", self.scale.to_bits(), self.seed)
    }
}

fn reject_unknown(args: &Args, known: &[&str]) -> Result<(), String> {
    let unknown = args.unknown_flags(known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(format!("unknown parameter(s): {}", unknown.join(", ")))
    }
}

/// Flags every pooled endpoint accepts on top of its own.
const COMMON_KNOWN: &[&str] = &["scale", "seed", "deadline_ms"];

fn with_common<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut known: Vec<&'a str> = COMMON_KNOWN.to_vec();
    known.extend_from_slice(extra);
    known
}

// ---------------------------------------------------------------------
// GET /v1/design
// ---------------------------------------------------------------------

/// Parsed `/v1/design` request.
#[derive(Clone, Copy, Debug)]
pub struct DesignParams {
    /// Shared scale/seed pair.
    pub common: CommonParams,
}

impl DesignParams {
    /// Validates a request's parameters.
    pub fn parse(args: &Args) -> Result<Self, String> {
        reject_unknown(args, &with_common(&[]))?;
        Ok(DesignParams {
            common: CommonParams::parse(args)?,
        })
    }

    /// Canonical response-cache key: every parameter the handler's
    /// output depends on, nothing else (`deadline_ms` is operational,
    /// not semantic, so it never keys).
    pub fn cache_key(&self) -> String {
        format!("design|{}", self.common.key_part())
    }
}

/// Tables 1–2 of the cached design as JSON.
pub fn design(cache: &DesignCache, p: &DesignParams) -> Response {
    let study = cache.get_or_build(p.common.scale, p.common.seed);
    let report = experiments::table1(&study);
    let mut domains = Arr::new();
    for row in &report.domains {
        let mut blocks = Arr::new();
        for b in &row.blocks_covered {
            blocks.str(b);
        }
        let mut o = Obj::new();
        o.str("name", &row.name)
            .u64("scan_cells", row.scan_cells as u64)
            .f64("frequency_mhz", row.frequency_mhz)
            .raw("blocks_covered", &blocks.finish());
        domains.raw(&o.finish());
    }
    let mut design = Obj::new();
    design
        .u64("clock_domains", report.clock_domains as u64)
        .u64("scan_chains", report.scan_chains as u64)
        .u64("total_scan_flops", report.total_scan_flops as u64)
        .u64("negative_edge_flops", report.negative_edge_flops as u64)
        .u64("transition_faults", report.transition_faults as u64)
        .u64("collapsed_faults", report.collapsed_faults as u64)
        .u64("gates", report.gates as u64)
        .raw("domains", &domains.finish());
    let mut root = Obj::new();
    root.f64("scale", p.common.scale)
        .u64("seed", p.common.seed)
        .raw("design", &design.finish());
    Response::json(200, root.finish())
}

// ---------------------------------------------------------------------
// POST /v1/lint
// ---------------------------------------------------------------------

/// Parsed `/v1/lint` request.
#[derive(Clone, Copy, Debug)]
pub struct LintParams {
    /// Shared scale/seed pair.
    pub common: CommonParams,
}

impl LintParams {
    /// Validates a request's parameters.
    pub fn parse(args: &Args) -> Result<Self, String> {
        reject_unknown(args, &with_common(&[]))?;
        Ok(LintParams {
            common: CommonParams::parse(args)?,
        })
    }

    /// Canonical response-cache key (see
    /// [`DesignParams::cache_key`]).
    pub fn cache_key(&self) -> String {
        format!("lint|{}", self.common.key_part())
    }
}

/// Runs the full design-rule registry against a study: the generated
/// design, the noise-aware flow's patterns and both supply meshes.
/// Shared by the `scap lint` subcommand and `POST /v1/lint`.
pub fn lint_report(study: &CaseStudy) -> scap_lint::LintReport {
    lint_report_with(study, scap_lint::all_rules())
}

/// [`lint_report`] restricted to an explicit rule set — what backs the
/// CLI's `--only <RULEPREFIX>` filter. The context is still assembled in
/// full so cross-layer rules see the same inputs either way.
pub fn lint_report_with(
    study: &CaseStudy,
    rules: Vec<Box<dyn scap_lint::Rule>>,
) -> scap_lint::LintReport {
    use scap_lint::{LintContext, MeshKind, MeshSpec, QuietSpec, ScreenSpec, TimingSpec};

    let flow = flows::noise_aware(study);

    // Screen declaration: the flow's output is SCAP-screened, so measure
    // every pattern and declare the within-threshold ones as emitted; the
    // PAT003 rule then re-checks the declaration against the measurements.
    let thresholds = experiments::scap_thresholds(study);
    let profile = PatternAnalyzer::new(study).power_profile(&flow.patterns);
    let num_blocks = study.design.netlist.blocks().len();
    let pattern_block_mw: Vec<Vec<f64>> = profile
        .iter()
        .map(|p| {
            (0..num_blocks)
                .map(|b| p.scap_vdd_mw(scap_netlist::BlockId::new(b as u32)))
                .collect()
        })
        .collect();
    let emitted: Vec<usize> = pattern_block_mw
        .iter()
        .enumerate()
        .filter(|(_, row)| {
            row.iter()
                .zip(&thresholds)
                .all(|(&mw, &t)| mw <= t * (1.0 + 1e-9))
        })
        .map(|(p, _)| p)
        .collect();

    // Timing layer: nominal + worst-case-derated slack per endpoint.
    let sta = scap::sta::NoiseAwareSta::worst_case(study);
    let timing_spec = TimingSpec::from_analyses(
        &study.design.netlist,
        study.clka(),
        &sta.nominal,
        Some(&sta.derated),
    );

    let grid = scap::power::PowerGrid::new(study.design.floorplan.die, study.grid);
    let ctx = LintContext::new(&study.design.netlist)
        .with_timing(&study.annotation, &study.clock_tree)
        .with_mesh(MeshSpec::from_grid(MeshKind::Vdd, &grid))
        .with_mesh(MeshSpec::from_grid(MeshKind::Vss, &grid))
        .with_patterns(&flow.patterns)
        .with_quiet(QuietSpec::from_staged_flow(
            &flows::paper_stages(study),
            &flow.steps,
            flow.patterns.len(),
        ))
        .with_screen(ScreenSpec {
            thresholds_mw: thresholds,
            pattern_block_mw,
            emitted,
        })
        .with_sta(timing_spec);
    scap_lint::run_rules(&ctx, rules)
}

/// Design-rule check of the cached design as JSON.
pub fn lint(cache: &DesignCache, p: &LintParams) -> Response {
    let study = cache.get_or_build(p.common.scale, p.common.seed);
    let report = lint_report(&study);
    let mut root = Obj::new();
    root.f64("scale", p.common.scale)
        .u64("seed", p.common.seed)
        .raw("lint", &report.render_json());
    Response::json(200, root.finish())
}

// ---------------------------------------------------------------------
// POST /v1/sta
// ---------------------------------------------------------------------

/// Parsed `/v1/sta` request.
#[derive(Clone, Copy, Debug)]
pub struct StaParams {
    /// Shared scale/seed pair.
    pub common: CommonParams,
    /// Whether to also run the IR-drop-derated analysis.
    pub derate: bool,
    /// Derating aggressiveness: multiplies the library's calibrated
    /// delay-vs-droop sensitivity. `1.0` is the calibrated worst case.
    pub k: f64,
    /// How many worst paths to trace.
    pub paths: usize,
}

impl StaParams {
    /// Validates a request's parameters.
    pub fn parse(args: &Args) -> Result<Self, String> {
        reject_unknown(args, &with_common(&["derate", "k", "paths"]))?;
        let derate = match args.get("derate") {
            None | Some("false") | Some("0") => false,
            Some("true") | Some("1") | Some("") => true,
            Some(other) => return Err(format!("derate expects true or false, got '{other}'")),
        };
        let k = args.f64_flag("k")?.unwrap_or(1.0);
        if !k.is_finite() || k <= 0.0 {
            return Err(format!("k expects a positive factor, got {k}"));
        }
        Ok(StaParams {
            common: CommonParams::parse(args)?,
            derate,
            k,
            paths: args.usize_flag("paths", 3)?,
        })
    }

    /// Canonical response-cache key (see
    /// [`DesignParams::cache_key`]).
    pub fn cache_key(&self) -> String {
        format!(
            "sta|{}|{}|{:016x}|{}",
            self.common.key_part(),
            self.derate,
            self.k.to_bits(),
            self.paths
        )
    }
}

fn paths_json(paths: &[scap::timing::PathReport], netlist: &scap_netlist::Netlist) -> String {
    let mut arr = Arr::new();
    for p in paths {
        let mut o = Obj::new();
        o.str("endpoint", &netlist.flop(p.endpoint).name)
            .f64("data_arrival_ps", p.data_arrival_ps)
            .f64("slack_ps", p.slack_ps)
            .u64("depth", p.depth() as u64);
        arr.raw(&o.finish());
    }
    arr.finish()
}

/// Nominal (and optionally IR-drop-derated) slack analysis as JSON.
pub fn sta(cache: &DesignCache, p: &StaParams) -> Response {
    use scap::timing::SlackSta;

    let study = cache.get_or_build(p.common.scale, p.common.seed);
    let n = &study.design.netlist;
    let mut root = Obj::new();
    root.f64("scale", p.common.scale)
        .u64("seed", p.common.seed)
        .f64("period_ps", study.period_ps())
        .bool("derate", p.derate);
    if p.derate {
        let sta = scap::sta::NoiseAwareSta::with_derate(&study, p.k);
        let faults = scap::sim::FaultList::full(n);
        let mut endpoints = Arr::new();
        for (flop, nom, der) in sta.endpoint_slacks() {
            let mut o = Obj::new();
            o.str("flop", &n.flop(flop).name)
                .f64("nominal_slack_ps", nom)
                .f64("derated_slack_ps", der)
                .str(
                    "tier",
                    scap::timing::RiskTier::classify(der, study.period_ps()).label(),
                );
            endpoints.raw(&o.finish());
        }
        let mut tiers = Obj::new();
        for (tier, count) in sta.tier_histogram(n, &faults) {
            tiers.u64(tier.label(), count as u64);
        }
        root.f64("k_factor", p.k)
            .f64(
                "nominal_worst_slack_ps",
                sta.nominal.worst_slack_ps().unwrap_or(f64::INFINITY),
            )
            .f64(
                "derated_worst_slack_ps",
                sta.derated.worst_slack_ps().unwrap_or(f64::INFINITY),
            )
            .f64("nominal_critical_path_ps", sta.nominal.critical_path_ps())
            .f64("derated_critical_path_ps", sta.derated.critical_path_ps())
            .raw("fault_tiers", &tiers.finish())
            .raw("endpoints", &endpoints.finish())
            .raw(
                "worst_paths",
                &paths_json(&sta.derated.worst_paths(n, p.paths), n),
            );
    } else {
        let nominal = SlackSta::run(n, &study.annotation, &study.arrivals);
        let mut endpoints = Arr::new();
        for e in nominal.endpoints() {
            let mut o = Obj::new();
            o.str("flop", &n.flop(e.flop).name)
                .f64("nominal_slack_ps", e.slack_ps());
            endpoints.raw(&o.finish());
        }
        root.f64(
            "nominal_worst_slack_ps",
            nominal.worst_slack_ps().unwrap_or(f64::INFINITY),
        )
        .f64("nominal_critical_path_ps", nominal.critical_path_ps())
        .u64(
            "unreachable_endpoints",
            nominal.unreachable_endpoints(n).len() as u64,
        )
        .raw("endpoints", &endpoints.finish())
        .raw(
            "worst_paths",
            &paths_json(&nominal.worst_paths(n, p.paths), n),
        );
    }
    Response::json(200, root.finish())
}

// ---------------------------------------------------------------------
// POST /v1/profile
// ---------------------------------------------------------------------

/// Parsed `/v1/profile` request.
#[derive(Clone, Debug)]
pub struct ProfileParams {
    /// Shared scale/seed pair.
    pub common: CommonParams,
    /// Which flow to profile.
    pub flow: FlowKind,
    /// Fill policy override (the flow's default otherwise).
    pub fill: Option<FillPolicy>,
    /// Primary ATPG engine (`podem`, `sat` or `hybrid`).
    pub engine: EngineKind,
    /// Block to profile (the paper's hot block B5 by default).
    pub block: String,
}

impl ProfileParams {
    /// Validates a request's parameters.
    pub fn parse(args: &Args) -> Result<Self, String> {
        reject_unknown(args, &with_common(&["flow", "fill", "engine", "block"]))?;
        Ok(ProfileParams {
            common: CommonParams::parse(args)?,
            flow: FlowKind::parse(args.get("flow"))?,
            fill: parse_fill(args.get("fill"))?,
            engine: parse_engine(args.get("engine"))?,
            block: args.get("block").unwrap_or("B5").to_owned(),
        })
    }

    /// Canonical response-cache key (see [`DesignParams::cache_key`]).
    /// The fill keys on its *effective* policy: an explicit
    /// `fill=fill-0` and the noise-aware flow's default are the same
    /// computation, so they share an entry.
    pub fn cache_key(&self) -> String {
        format!(
            "profile|{}|{}|{}|{}|{}",
            self.common.key_part(),
            self.flow.label(),
            fill_label(effective_fill(self.flow, self.fill)),
            self.engine.label(),
            self.block
        )
    }
}

fn run_flow(
    study: &CaseStudy,
    kind: FlowKind,
    fill: Option<FillPolicy>,
    engine: EngineKind,
) -> flows::FlowResult {
    match kind {
        FlowKind::Conventional => flows::conventional_with(
            study,
            flows::flow_atpg_config_with_engine(fill.unwrap_or(FillPolicy::Random), engine),
        ),
        FlowKind::NoiseAware => flows::noise_aware_with(
            study,
            flows::flow_atpg_config_with_engine(fill.unwrap_or(FillPolicy::Zero), engine),
            &flows::paper_stages(study),
        ),
    }
}

fn effective_fill(kind: FlowKind, fill: Option<FillPolicy>) -> FillPolicy {
    fill.unwrap_or(match kind {
        FlowKind::Conventional => FillPolicy::Random,
        FlowKind::NoiseAware => FillPolicy::Zero,
    })
}

/// Per-pattern SCAP of one block vs its screening threshold, with a
/// screen verdict per pattern.
pub fn profile(cache: &DesignCache, p: &ProfileParams) -> Response {
    let study = cache.get_or_build(p.common.scale, p.common.seed);
    let Some(block) = study.design.block_named(&p.block) else {
        return Response::error(400, &format!("no block named '{}'", p.block));
    };
    let Some(&threshold) = experiments::scap_thresholds(&study).get(block.index()) else {
        return Response::error(500, &format!("no screening threshold for '{}'", p.block));
    };
    let flow = run_flow(&study, p.flow, p.fill, p.engine);
    let series = experiments::scap_series(&study, &flow, block, threshold);
    let mut patterns = Arr::new();
    for (i, &mw) in series.scap_mw.iter().enumerate() {
        let mut o = Obj::new();
        o.u64("pattern", i as u64)
            .f64("scap_mw", mw)
            .bool("above", mw > threshold);
        patterns.raw(&o.finish());
    }
    let mut root = Obj::new();
    root.f64("scale", p.common.scale)
        .u64("seed", p.common.seed)
        .str("flow", p.flow.label())
        .str("fill", fill_label(effective_fill(p.flow, p.fill)))
        .str("engine", p.engine.label())
        .str("block", &p.block)
        .f64("threshold_mw", threshold)
        .u64("patterns", series.scap_mw.len() as u64)
        .u64("above", series.above.len() as u64)
        .f64("fraction_above", series.fraction_above())
        .f64("fault_coverage", flow.fault_coverage())
        .raw("series", &patterns.finish());
    Response::json(200, root.finish())
}

// ---------------------------------------------------------------------
// POST /v1/schedule
// ---------------------------------------------------------------------

/// Parsed `/v1/schedule` request.
#[derive(Clone, Debug)]
pub struct ScheduleParams {
    /// Shared scale/seed pair.
    pub common: CommonParams,
    /// Which flow supplies the per-block tests.
    pub flow: FlowKind,
    /// Fill policy override.
    pub fill: Option<FillPolicy>,
    /// Primary ATPG engine (`podem`, `sat` or `hybrid`).
    pub engine: EngineKind,
    /// Session power budget, mW (2× the hottest block when absent —
    /// the CLI's default).
    pub budget_mw: Option<f64>,
}

impl ScheduleParams {
    /// Validates a request's parameters.
    pub fn parse(args: &Args) -> Result<Self, String> {
        reject_unknown(args, &with_common(&["flow", "fill", "engine", "budget"]))?;
        let budget_mw = args.f64_flag("budget")?;
        if let Some(b) = budget_mw {
            if b <= 0.0 {
                return Err(format!("budget expects a positive power in mW, got {b}"));
            }
        }
        Ok(ScheduleParams {
            common: CommonParams::parse(args)?,
            flow: FlowKind::parse(args.get("flow"))?,
            fill: parse_fill(args.get("fill"))?,
            engine: parse_engine(args.get("engine"))?,
            budget_mw,
        })
    }

    /// Canonical response-cache key (see [`DesignParams::cache_key`]).
    /// An absent budget keys as `-`: the default is derived from the
    /// flow's tests, not a fixed number, so it must not collide with
    /// any explicit value.
    pub fn cache_key(&self) -> String {
        let budget = match self.budget_mw {
            Some(b) => format!("{:016x}", b.to_bits()),
            None => "-".to_owned(),
        };
        format!(
            "schedule|{}|{}|{}|{}|{}",
            self.common.key_part(),
            self.flow.label(),
            fill_label(effective_fill(self.flow, self.fill)),
            self.engine.label(),
            budget
        )
    }
}

/// Power-constrained session scheduling of the flow's per-block tests.
pub fn schedule(cache: &DesignCache, p: &ScheduleParams) -> Response {
    let study = cache.get_or_build(p.common.scale, p.common.seed);
    let flow = run_flow(&study, p.flow, p.fill, p.engine);
    let tests = schedule::block_tests_from_flow(&study, &flow);
    let serial = schedule::serial_length(&tests);
    let budget = p
        .budget_mw
        .unwrap_or_else(|| 2.0 * tests.iter().map(|t| t.power_mw).fold(0.0, f64::max));
    let plan = schedule::schedule(&tests, budget);
    let mut sessions = Arr::new();
    for s in &plan.sessions {
        let mut members = Arr::new();
        for m in &s.members {
            let mut o = Obj::new();
            o.str("block", &study.design.netlist.block(m.block).name)
                .u64("patterns", m.patterns as u64)
                .f64("power_mw", m.power_mw);
            members.raw(&o.finish());
        }
        let mut o = Obj::new();
        o.raw("members", &members.finish())
            .f64("power_mw", s.power_mw())
            .u64("length", s.length() as u64);
        sessions.raw(&o.finish());
    }
    let mut root = Obj::new();
    root.f64("scale", p.common.scale)
        .u64("seed", p.common.seed)
        .str("flow", p.flow.label())
        .str("engine", p.engine.label())
        .f64("budget_mw", budget)
        .u64("serial_length", serial as u64)
        .u64("scheduled_length", plan.total_length() as u64)
        .f64("peak_power_mw", plan.peak_power_mw())
        .raw("sessions", &sessions.finish());
    Response::json(200, root.finish())
}

// ---------------------------------------------------------------------
// GET /v1/sleep (debug builds of the server only)
// ---------------------------------------------------------------------

/// Parsed `/v1/sleep` request (test-only endpoint).
#[derive(Clone, Copy, Debug)]
pub struct SleepParams {
    /// How long the pooled job sleeps.
    pub ms: u64,
}

impl SleepParams {
    /// Validates a request's parameters.
    pub fn parse(args: &Args) -> Result<Self, String> {
        reject_unknown(args, &["ms", "deadline_ms"])?;
        let raw = args.get("ms").unwrap_or("100");
        let ms = raw
            .parse::<u64>()
            .map_err(|_| format!("ms expects a non-negative integer, got '{raw}'"))?;
        if ms > 60_000 {
            return Err(format!("ms is capped at 60000, got {ms}"));
        }
        Ok(SleepParams { ms })
    }
}

/// Sleeps on a pool worker — a deterministic way for tests to saturate
/// the queue and exercise deadlines.
pub fn sleep(p: &SleepParams) -> Response {
    std::thread::sleep(std::time::Duration::from_millis(p.ms));
    let mut root = Obj::new();
    root.u64("slept_ms", p.ms);
    Response::json(200, root.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_and_fill_parse_strictly() {
        assert_eq!(FlowKind::parse(None).unwrap(), FlowKind::NoiseAware);
        assert_eq!(
            FlowKind::parse(Some("conventional")).unwrap(),
            FlowKind::Conventional
        );
        assert!(FlowKind::parse(Some("fast")).is_err());
        assert_eq!(parse_fill(Some("fill-1")).unwrap(), Some(FillPolicy::One));
        assert!(parse_fill(Some("ones")).is_err());
    }

    #[test]
    fn engine_parses_strictly_and_defaults_to_podem() {
        assert_eq!(parse_engine(None).unwrap(), EngineKind::Podem);
        assert_eq!(parse_engine(Some("hybrid")).unwrap(), EngineKind::Hybrid);
        assert_eq!(parse_engine(Some("sat")).unwrap(), EngineKind::Sat);
        assert!(parse_engine(Some("cnf")).is_err());
        let p = ProfileParams::parse(&Args::from_query("engine=hybrid&flow=conventional")).unwrap();
        assert_eq!(p.engine, EngineKind::Hybrid);
        let p = ScheduleParams::parse(&Args::from_query("engine=sat")).unwrap();
        assert_eq!(p.engine, EngineKind::Sat);
    }

    #[test]
    fn unknown_parameters_are_rejected() {
        let args = Args::from_query("scale=0.01&sacle=0.02");
        assert!(DesignParams::parse(&args).is_err());
        let args = Args::from_query("scale=0.01&seed=5&deadline_ms=100");
        assert!(DesignParams::parse(&args).is_ok());
    }

    #[test]
    fn sta_params_parse_strictly() {
        let p = StaParams::parse(&Args::from_query("")).unwrap();
        assert!(!p.derate);
        assert_eq!(p.k, 1.0);
        assert_eq!(p.paths, 3);
        let p = StaParams::parse(&Args::from_query("derate=true&k=4.5&paths=10")).unwrap();
        assert!(p.derate);
        assert_eq!(p.k, 4.5);
        assert_eq!(p.paths, 10);
        assert!(StaParams::parse(&Args::from_query("derate=maybe")).is_err());
        assert!(StaParams::parse(&Args::from_query("k=-2")).is_err());
        assert!(StaParams::parse(&Args::from_query("scael=0.01")).is_err());
    }

    #[test]
    fn schedule_budget_must_be_positive() {
        let args = Args::from_query("budget=-2");
        assert!(ScheduleParams::parse(&args).is_err());
        let args = Args::from_query("budget=1.5&flow=conventional&fill=random-fill");
        let p = ScheduleParams::parse(&args).unwrap();
        assert_eq!(p.budget_mw, Some(1.5));
        assert_eq!(p.flow, FlowKind::Conventional);
    }

    #[test]
    fn sleep_params_are_bounded() {
        assert_eq!(
            SleepParams::parse(&Args::from_query("ms=250")).unwrap().ms,
            250
        );
        assert!(SleepParams::parse(&Args::from_query("ms=90000")).is_err());
        assert!(SleepParams::parse(&Args::from_query("ms=abc")).is_err());
    }
}
