//! `scap-loadgen` — burst a running `scap serve` (or `scap cluster`)
//! instance and report the status-code breakdown plus latency
//! percentiles. Used by `scripts/check.sh` for the server and cluster
//! smoke stages; handy interactively too:
//!
//! ```text
//! scap-loadgen --addr 127.0.0.1:7878 --path /v1/design --query scale=0.004 \
//!              --concurrency 8 --requests 2
//! ```
//!
//! `--seeds K` rotates the burst across K distinct generator seeds
//! (`--seed-base`, `--seed-base`+1, …) by appending `seed=N` to the
//! query string — the cluster mode: each seed is a shard key, so the
//! burst exercises the coordinator's consistent-hash routing.
//!
//! Exits 0 when every connection got an HTTP verdict (any status) and
//! at least one exchange returned 200 — or, under `--require-200`, only
//! when *every* exchange returned 200; exits 1 otherwise.

use scap_serve::loadgen;
use scap_serve::params::Args;
use std::net::SocketAddr;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let addr_raw = args.get("addr").unwrap_or("127.0.0.1:7878");
    let addr: SocketAddr = match addr_raw.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("scap-loadgen: invalid --addr '{addr_raw}'");
            return ExitCode::from(2);
        }
    };
    let method = args.get("method").unwrap_or("GET");
    let path = args.get("path").unwrap_or("/healthz");
    let query = args.get("query").unwrap_or("");
    let body = args.get("body").unwrap_or("");
    let require_200 = args.has("require-200");
    let (concurrency, per_thread, seeds, seed_base) = match (
        args.usize_flag("concurrency", 4),
        args.usize_flag("requests", 1),
        args.usize_flag("seeds", 0),
        args.usize_flag("seed-base", 1),
    ) {
        (Ok(c), Ok(r), Ok(s), Ok(b)) => (c, r, s, b),
        (c, r, s, b) => {
            for e in [c.err(), r.err(), s.err(), b.err()].into_iter().flatten() {
                eprintln!("scap-loadgen: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let target_of = |extra: Option<u64>| {
        let mut q = query.to_owned();
        if let Some(seed) = extra {
            if !q.is_empty() {
                q.push('&');
            }
            let _ = std::fmt::Write::write_fmt(&mut q, format_args!("seed={seed}"));
        }
        if q.is_empty() {
            (path.to_owned(), body.to_owned())
        } else {
            (format!("{path}?{q}"), body.to_owned())
        }
    };
    let targets: Vec<(String, String)> = if seeds == 0 {
        vec![target_of(None)]
    } else {
        (0..seeds)
            .map(|i| target_of(Some(seed_base as u64 + i as u64)))
            .collect()
    };

    let report = loadgen::burst_targets(addr, method, &targets, concurrency, per_thread);

    let total = report.statuses.len() + report.transport_errors;
    let what = if targets.len() == 1 {
        format!("{method} {}", targets[0].0)
    } else {
        format!("{method} {path} x {} seeds", targets.len())
    };
    println!("loadgen: {total} exchanges against {what} ({concurrency} threads x {per_thread})");
    for (code, count) in report.status_breakdown() {
        println!("  {code}: {count}");
    }
    if report.transport_errors > 0 {
        println!("  transport errors: {}", report.transport_errors);
    }
    if let (Some(p50), Some(p95), Some(p99)) = (
        report.percentile_ms(50.0),
        report.percentile_ms(95.0),
        report.percentile_ms(99.0),
    ) {
        println!("  latency ms: p50 {p50:.2}  p95 {p95:.2}  p99 {p99:.2}");
    }

    let ok = if require_200 {
        report.transport_errors == 0 && report.count(200) == report.statuses.len() && total > 0
    } else {
        report.transport_errors == 0 && report.count(200) > 0
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("scap-loadgen: FAILED (errors or missing 200s)");
        ExitCode::FAILURE
    }
}
