//! `scap-loadgen` — burst a running `scap serve` instance and report
//! the status-code distribution. Used by `scripts/check.sh` for the
//! server smoke stage; handy interactively too:
//!
//! ```text
//! scap-loadgen --addr 127.0.0.1:7878 --path /v1/design --query scale=0.004 \
//!              --concurrency 8 --requests 2
//! ```
//!
//! Exits 0 when every connection got an HTTP verdict (any status) and
//! at least one exchange returned 200; exits 1 otherwise.

use scap_serve::loadgen;
use scap_serve::params::Args;
use std::net::SocketAddr;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let addr_raw = args.get("addr").unwrap_or("127.0.0.1:7878");
    let addr: SocketAddr = match addr_raw.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("scap-loadgen: invalid --addr '{addr_raw}'");
            return ExitCode::from(2);
        }
    };
    let method = args.get("method").unwrap_or("GET");
    let path = args.get("path").unwrap_or("/healthz");
    let query = args.get("query").unwrap_or("");
    let body = args.get("body").unwrap_or("");
    let concurrency = match args.usize_flag("concurrency", 4) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("scap-loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    let per_thread = match args.usize_flag("requests", 1) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("scap-loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    let target = if query.is_empty() {
        path.to_owned()
    } else {
        format!("{path}?{query}")
    };
    let report = loadgen::burst(addr, method, &target, body, concurrency, per_thread);

    let total = report.statuses.len() + report.transport_errors;
    println!(
        "loadgen: {total} exchanges against {method} {target} ({concurrency} threads x {per_thread})"
    );
    let mut codes: Vec<u16> = report.statuses.clone();
    codes.sort_unstable();
    codes.dedup();
    for code in codes {
        println!("  {code}: {}", report.count(code));
    }
    if report.transport_errors > 0 {
        println!("  transport errors: {}", report.transport_errors);
    }

    let ok = report.transport_errors == 0 && report.count(200) > 0;
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("scap-loadgen: FAILED (errors or no 200s)");
        ExitCode::FAILURE
    }
}
