//! Minimal HTTP/1.1 framing over `std::net` — just the slice the JSON
//! API needs: request-line + headers + `Content-Length` bodies in, and
//! `Connection: close` responses out. No keep-alive, no chunked
//! encoding, no TLS; every connection carries exactly one exchange.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, percent-encoded as received.
    pub path: String,
    /// Query component (after `?`), without the `?`; empty if absent.
    pub query: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (UTF-8 enforced by the parameter layer when used).
    pub body: Vec<u8>,
}

impl Request {
    /// First header of this lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an empty string if invalid/absent.
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }
}

/// Why a request could not be read. Each maps to one status code.
#[derive(Debug)]
pub enum ReadError {
    /// Socket-level failure or timeout.
    Io(std::io::Error),
    /// Malformed framing → `400`.
    BadRequest(&'static str),
    /// Head or body over the fixed limits → `413`.
    TooLarge(&'static str),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from `stream`. Returns `Ok(None)` when the peer
/// closed without sending anything (e.g. the shutdown waker or a port
/// probe) — not an error, just nothing to answer.
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, ReadError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;

    let n = read_head_line(&mut reader, &mut line, &mut head_bytes)?;
    if n == 0 {
        return Ok(None);
    }
    let request_line = line.trim_end();
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_owned(), t.to_owned(), v),
        _ => return Err(ReadError::BadRequest("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = read_head_line(&mut reader, &mut line, &mut head_bytes)?;
        if n == 0 {
            return Err(ReadError::BadRequest("connection closed mid-headers"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ReadError::BadRequest("malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest("malformed Content-Length"))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge("request body over limit"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

fn read_head_line(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<usize, ReadError> {
    let n = reader.read_line(line)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(ReadError::TooLarge("request head over limit"));
    }
    Ok(n)
}

/// One response, always `Connection: close`.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": "…"}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut obj = scap_obs::json::Obj::new();
        obj.str("error", message);
        Response::json(status, obj.finish())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the response onto `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_serializes_with_framing_headers() {
        let mut buf = Vec::new();
        Response::json(200, "{}")
            .with_header("retry-after", "1")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }

    #[test]
    fn error_bodies_are_json_envelopes() {
        let r = Response::error(503, "queue full");
        assert_eq!(r.status, 503);
        assert_eq!(
            String::from_utf8(r.body).unwrap(),
            "{\"error\":\"queue full\"}\n"
        );
    }

    #[test]
    fn status_text_covers_emitted_codes() {
        for code in [200, 400, 404, 405, 413, 500, 502, 503, 504] {
            assert_ne!(status_text(code), "Unknown");
        }
    }
}
