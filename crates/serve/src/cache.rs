//! LRU design cache with single-flight build deduplication.
//!
//! Building a [`CaseStudy`] — generate the SOC, insert scan, extract
//! timing, synthesize the clock tree, calibrate the grid — is by far
//! the most expensive prefix of every endpoint. The cache keys built
//! designs by `(scale, seed)` and holds them behind `Arc`s so requests
//! share one immutable instance.
//!
//! **Single-flight:** when N requests miss on the same key at once,
//! exactly one thread builds while the other N−1 block on a condvar and
//! receive the same `Arc` — never N redundant builds saturating the
//! machine. The `serve.design_builds` counter proves this property in
//! the integration tests.

use scap::CaseStudy;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Cache key: the exact bits of the scale plus the generator seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheKey {
    scale_bits: u64,
    seed: u64,
}

impl CacheKey {
    /// Key for a `(scale, seed)` pair.
    pub fn new(scale: f64, seed: u64) -> Self {
        CacheKey {
            scale_bits: scale.to_bits(),
            seed,
        }
    }
}

#[derive(Clone)]
enum Slot {
    /// A build is in flight on some thread; wait on the condvar.
    Building,
    /// The design is resident.
    Ready(Arc<CaseStudy>),
}

struct Entry {
    key: CacheKey,
    slot: Slot,
    last_used: u64,
}

struct CacheState {
    entries: Vec<Entry>,
    tick: u64,
}

/// The process-wide design cache (see the module docs).
pub struct DesignCache {
    capacity: usize,
    state: Mutex<CacheState>,
    ready: Condvar,
}

impl std::fmt::Debug for DesignCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignCache")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl DesignCache {
    /// A cache holding at most `capacity` built designs (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        DesignCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                entries: Vec::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Locks the state, recovering from poison. A builder that panics
    /// poisons the mutex: `BuildGuard::drop` takes the lock during the
    /// unwind, and releasing a guard while panicking marks the mutex
    /// poisoned. The guard only ever removes its own `Building` entry,
    /// so the state is never left half-mutated and is safe to reuse.
    fn lock(&self) -> MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of resident (fully built) designs.
    pub fn len(&self) -> usize {
        self.lock()
            .entries
            .iter()
            .filter(|e| matches!(e.slot, Slot::Ready(_)))
            .count()
    }

    /// Whether no design is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the design for `(scale, seed)`, building it at most once
    /// regardless of how many threads ask concurrently.
    ///
    /// `scale` must already be validated to `(0, 1]` — the underlying
    /// generator panics outside that range.
    pub fn get_or_build(&self, scale: f64, seed: u64) -> Arc<CaseStudy> {
        let key = CacheKey::new(scale, seed);
        let mut s = self.lock();
        while let Some(i) = s.entries.iter().position(|e| e.key == key) {
            match s.entries[i].slot.clone() {
                Slot::Ready(design) => {
                    s.tick += 1;
                    let tick = s.tick;
                    s.entries[i].last_used = tick;
                    scap_obs::counter!("serve.cache.hits").incr();
                    return design;
                }
                Slot::Building => {
                    scap_obs::counter!("serve.cache.waits").incr();
                    s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        // Miss: claim the build under the lock, run it outside.
        scap_obs::counter!("serve.cache.misses").incr();
        self.evict_if_full(&mut s);
        s.tick += 1;
        let tick = s.tick;
        s.entries.push(Entry {
            key,
            slot: Slot::Building,
            last_used: tick,
        });
        drop(s);

        // If the build panics (it should not — scale is validated), the
        // guard removes the Building entry and wakes waiters so they
        // retry instead of hanging forever.
        let mut guard = BuildGuard {
            cache: self,
            key,
            armed: true,
        };
        let design = {
            let _span = scap_obs::span!("serve.design_build");
            scap_obs::counter!("serve.design_builds").incr();
            Arc::new(CaseStudy::with_seed(scale, seed))
        };
        guard.armed = false;

        let mut s = self.lock();
        if let Some(e) = s.entries.iter_mut().find(|e| e.key == key) {
            e.slot = Slot::Ready(design.clone());
        }
        drop(s);
        self.ready.notify_all();
        design
    }

    /// Evicts the least-recently-used *ready* entry while at capacity.
    /// In-flight builds are never evicted (their waiters hold no
    /// reference yet).
    fn evict_if_full(&self, s: &mut MutexGuard<'_, CacheState>) {
        while s.entries.len() >= self.capacity {
            let victim = s
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    s.entries.remove(i);
                    scap_obs::counter!("serve.cache.evictions").incr();
                }
                // Every entry is Building: allow a temporary overshoot
                // (bounded by the job pool's worker count).
                None => break,
            }
        }
    }
}

struct BuildGuard<'a> {
    cache: &'a DesignCache,
    key: CacheKey,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut s = self.cache.lock();
        s.entries.retain(|e| e.key != self.key);
        drop(s);
        self.cache.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tiny scale: each build is well under a second.
    const SCALE: f64 = 0.003;

    /// Serializes the module's tests: the build counter is process-wide,
    /// so concurrent cache tests would pollute each other's deltas.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let _guard = serial();
        let cache = DesignCache::new(2);
        let a = cache.get_or_build(SCALE, 1);
        let b = cache.get_or_build(SCALE, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_designs() {
        let _guard = serial();
        let cache = DesignCache::new(4);
        let a = cache.get_or_build(SCALE, 1);
        let b = cache.get_or_build(SCALE, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_prefers_the_stalest_entry() {
        let _guard = serial();
        let cache = DesignCache::new(2);
        let a = cache.get_or_build(SCALE, 1);
        let _b = cache.get_or_build(SCALE, 2);
        // Touch seed 1 so seed 2 is the LRU victim.
        let a2 = cache.get_or_build(SCALE, 1);
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = cache.get_or_build(SCALE, 3);
        assert_eq!(cache.len(), 2);
        // Seed 1 must still be resident (same Arc), seed 2 evicted.
        let a3 = cache.get_or_build(SCALE, 1);
        assert!(Arc::ptr_eq(&a, &a3));
    }

    #[test]
    fn concurrent_misses_build_once() {
        let _guard = serial();
        scap_obs::set_enabled(true);
        let cache = Arc::new(DesignCache::new(2));
        let seed = 0xC0FFEE; // unique to this test: counters are global
        let before = scap_obs::snapshot()
            .counter("serve.design_builds")
            .unwrap_or(0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || cache.get_or_build(SCALE, seed))
            })
            .collect();
        let designs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for d in &designs[1..] {
            assert!(Arc::ptr_eq(&designs[0], d));
        }
        let after = scap_obs::snapshot()
            .counter("serve.design_builds")
            .unwrap_or(0);
        assert_eq!(after - before, 1, "single-flight must build exactly once");
    }

    #[test]
    fn panicking_builder_does_not_poison_the_cache() {
        let _guard = serial();
        let cache = Arc::new(DesignCache::new(2));
        // Scale 0 violates the generator's contract; the build panics
        // outside the lock, and BuildGuard poisons the mutex while
        // cleaning up its Building entry during the unwind.
        let c = Arc::clone(&cache);
        let joined = std::thread::Builder::new()
            .name("panicking-builder".into())
            .spawn(move || c.get_or_build(0.0, 7))
            .unwrap()
            .join();
        assert!(joined.is_err(), "invalid scale must panic the builder");
        // Every entry point must recover instead of propagating the
        // poison: the aborted build left no entry behind, and a fresh
        // build on the same cache succeeds.
        assert_eq!(cache.len(), 0);
        let a = cache.get_or_build(SCALE, 7);
        let b = cache.get_or_build(SCALE, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }
}
