//! Single-flight LRU caches behind the serving layer.
//!
//! Two instances of one generic core ([`FlightCache`]):
//!
//! * [`DesignCache`] — built [`CaseStudy`] instances keyed by
//!   `(scale, seed)`. Building one — generate the SOC, insert scan,
//!   extract timing, synthesize the clock tree, calibrate the grid — is
//!   the expensive prefix of every endpoint.
//! * [`ResponseCache`] — rendered 200 responses keyed by the full
//!   canonical parameter tuple. Every analysis endpoint is a pure
//!   function of its parameters (the determinism contract), so a
//!   repeat request can be answered from the rendered bytes without
//!   recomputing the flow. This is the cache that makes a worker "own"
//!   its shard in the cluster tier: requests for resident keys are
//!   wire-speed, requests outside the shard pay the full recompute.
//!
//! **Single-flight:** when N requests miss on the same key at once,
//! exactly one thread builds while the other N−1 block on a condvar and
//! receive the same `Arc` — never N redundant builds saturating the
//! machine. The `serve.design_builds` counter proves this property in
//! the integration tests.
//!
//! Each instance owns its counter family (`serve.cache.*` for designs,
//! `serve.respcache.*` for responses: `hits` / `misses` / `waits` /
//! `evictions`, plus a `…capacity` gauge), pre-interned at construction
//! so `/metrics` echoes the whole family — zeros included — from the
//! first scrape. The coordinator reads shard-cache pressure off these.

use crate::http::Response;
use scap::CaseStudy;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// The counter family one [`FlightCache`] instance reports into.
/// Handles are interned eagerly so the names exist in `/metrics`
/// before the first request touches the cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheMetrics {
    hits: &'static scap_obs::Counter,
    misses: &'static scap_obs::Counter,
    waits: &'static scap_obs::Counter,
    evictions: &'static scap_obs::Counter,
}

impl CacheMetrics {
    /// Interns (and thereby registers) the four counters of a family.
    pub fn new(
        hits: &'static str,
        misses: &'static str,
        waits: &'static str,
        evictions: &'static str,
    ) -> Self {
        CacheMetrics {
            hits: scap_obs::counter(hits),
            misses: scap_obs::counter(misses),
            waits: scap_obs::counter(waits),
            evictions: scap_obs::counter(evictions),
        }
    }
}

enum Slot<V> {
    /// A build is in flight on some thread; wait on the condvar.
    Building,
    /// The value is resident.
    Ready(Arc<V>),
}

// Manual impl: `V` itself need not be `Clone` — only the `Arc` is.
impl<V> Clone for Slot<V> {
    fn clone(&self) -> Self {
        match self {
            Slot::Building => Slot::Building,
            Slot::Ready(v) => Slot::Ready(Arc::clone(v)),
        }
    }
}

struct Entry<K, V> {
    key: K,
    slot: Slot<V>,
    last_used: u64,
}

struct CacheState<K, V> {
    entries: Vec<Entry<K, V>>,
    tick: u64,
}

/// Generic LRU cache with single-flight build deduplication (see the
/// module docs). Lookup is a linear scan — capacities are single-digit
/// to low-double-digit, where a scan beats hashing.
pub struct FlightCache<K, V> {
    capacity: usize,
    metrics: CacheMetrics,
    state: Mutex<CacheState<K, V>>,
    ready: Condvar,
}

impl<K, V> std::fmt::Debug for FlightCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightCache")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<K: Clone + Eq, V> FlightCache<K, V> {
    /// A cache holding at most `capacity` ready values (clamped to at
    /// least 1), reporting into `metrics`.
    pub fn new(capacity: usize, metrics: CacheMetrics) -> Self {
        FlightCache {
            capacity: capacity.max(1),
            metrics,
            state: Mutex::new(CacheState {
                entries: Vec::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the state, recovering from poison. A builder that panics
    /// poisons the mutex: `BuildGuard::drop` takes the lock during the
    /// unwind, and releasing a guard while panicking marks the mutex
    /// poisoned. The guard only ever removes its own `Building` entry,
    /// so the state is never left half-mutated and is safe to reuse.
    fn lock(&self) -> MutexGuard<'_, CacheState<K, V>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of resident (fully built) values.
    pub fn len(&self) -> usize {
        self.lock()
            .entries
            .iter()
            .filter(|e| matches!(e.slot, Slot::Ready(_)))
            .count()
    }

    /// Whether no value is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the value for `key`, building it at most once regardless
    /// of how many threads ask concurrently.
    pub fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        self.get_or_build_filtered(key, build, |_| true)
    }

    /// [`FlightCache::get_or_build`] with an admission filter: the
    /// freshly built value is returned either way, but only stored when
    /// `cacheable(&v)` holds (the response cache admits only 200s).
    /// Waiters on a non-admitted build retry and rebuild — correct, and
    /// rare enough not to matter.
    pub fn get_or_build_filtered(
        &self,
        key: K,
        build: impl FnOnce() -> V,
        cacheable: impl FnOnce(&V) -> bool,
    ) -> Arc<V> {
        let mut s = self.lock();
        while let Some(i) = s.entries.iter().position(|e| e.key == key) {
            match s.entries[i].slot.clone() {
                Slot::Ready(value) => {
                    s.tick += 1;
                    let tick = s.tick;
                    s.entries[i].last_used = tick;
                    self.metrics.hits.incr();
                    return value;
                }
                Slot::Building => {
                    self.metrics.waits.incr();
                    s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        // Miss: claim the build under the lock, run it outside.
        self.metrics.misses.incr();
        self.evict_if_full(&mut s);
        s.tick += 1;
        let tick = s.tick;
        s.entries.push(Entry {
            key: key.clone(),
            slot: Slot::Building,
            last_used: tick,
        });
        drop(s);

        // If the build panics, the guard removes the Building entry and
        // wakes waiters so they retry instead of hanging forever.
        let mut guard = BuildGuard {
            cache: self,
            key: key.clone(),
            armed: true,
        };
        let value = Arc::new(build());
        guard.armed = false;

        let mut s = self.lock();
        if cacheable(&value) {
            if let Some(e) = s.entries.iter_mut().find(|e| e.key == key) {
                e.slot = Slot::Ready(value.clone());
            }
        } else {
            s.entries.retain(|e| e.key != key);
        }
        drop(s);
        self.ready.notify_all();
        value
    }

    /// Evicts the least-recently-used *ready* entry while at capacity.
    /// In-flight builds are never evicted (their waiters hold no
    /// reference yet).
    fn evict_if_full(&self, s: &mut MutexGuard<'_, CacheState<K, V>>) {
        while s.entries.len() >= self.capacity {
            let victim = s
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    s.entries.remove(i);
                    self.metrics.evictions.incr();
                }
                // Every entry is Building: allow a temporary overshoot
                // (bounded by the job pool's worker count).
                None => break,
            }
        }
    }
}

struct BuildGuard<'a, K: Clone + Eq, V> {
    cache: &'a FlightCache<K, V>,
    key: K,
    armed: bool,
}

impl<K: Clone + Eq, V> Drop for BuildGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut s = self.cache.lock();
        s.entries.retain(|e| e.key != self.key);
        drop(s);
        self.cache.ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// Design cache
// ---------------------------------------------------------------------

/// Cache key: the exact bits of the scale plus the generator seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheKey {
    scale_bits: u64,
    seed: u64,
}

impl CacheKey {
    /// Key for a `(scale, seed)` pair.
    pub fn new(scale: f64, seed: u64) -> Self {
        CacheKey {
            scale_bits: scale.to_bits(),
            seed,
        }
    }
}

/// The process-wide design cache (see the module docs).
#[derive(Debug)]
pub struct DesignCache {
    inner: FlightCache<CacheKey, CaseStudy>,
}

impl DesignCache {
    /// A cache holding at most `capacity` built designs (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        let inner = FlightCache::new(
            capacity,
            CacheMetrics::new(
                "serve.cache.hits",
                "serve.cache.misses",
                "serve.cache.waits",
                "serve.cache.evictions",
            ),
        );
        scap_obs::gauge("serve.cache.capacity").set(inner.capacity() as u64);
        DesignCache { inner }
    }

    /// Number of resident (fully built) designs.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no design is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Returns the design for `(scale, seed)`, building it at most once
    /// regardless of how many threads ask concurrently.
    ///
    /// `scale` must already be validated to `(0, 1]` — the underlying
    /// generator panics outside that range.
    pub fn get_or_build(&self, scale: f64, seed: u64) -> Arc<CaseStudy> {
        self.inner.get_or_build(CacheKey::new(scale, seed), || {
            let _span = scap_obs::span!("serve.design_build");
            scap_obs::counter!("serve.design_builds").incr();
            CaseStudy::with_seed(scale, seed)
        })
    }
}

// ---------------------------------------------------------------------
// Response cache
// ---------------------------------------------------------------------

/// LRU over rendered 200 responses, keyed by the canonical parameter
/// string each handler's params expose (see
/// [`crate::handlers::DesignParams::cache_key`] and siblings). Error
/// responses are never admitted. Capacity is `--cache-cap`.
#[derive(Debug)]
pub struct ResponseCache {
    inner: FlightCache<String, Response>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` rendered responses (clamped
    /// to at least 1).
    pub fn new(capacity: usize) -> Self {
        let inner = FlightCache::new(
            capacity,
            CacheMetrics::new(
                "serve.respcache.hits",
                "serve.respcache.misses",
                "serve.respcache.waits",
                "serve.respcache.evictions",
            ),
        );
        scap_obs::gauge("serve.respcache.capacity").set(inner.capacity() as u64);
        ResponseCache { inner }
    }

    /// Number of resident responses.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no response is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Returns the response for `key`, computing it (single-flight) on
    /// a miss. Only 200s are stored; anything else passes through
    /// uncached.
    pub fn get_or_respond(&self, key: String, build: impl FnOnce() -> Response) -> Response {
        let arc = self
            .inner
            .get_or_build_filtered(key, build, |r| r.status == 200);
        (*arc).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tiny scale: each build is well under a second.
    const SCALE: f64 = 0.003;

    /// Serializes the module's tests: the build counter is process-wide,
    /// so concurrent cache tests would pollute each other's deltas.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let _guard = serial();
        let cache = DesignCache::new(2);
        let a = cache.get_or_build(SCALE, 1);
        let b = cache.get_or_build(SCALE, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_designs() {
        let _guard = serial();
        let cache = DesignCache::new(4);
        let a = cache.get_or_build(SCALE, 1);
        let b = cache.get_or_build(SCALE, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_prefers_the_stalest_entry() {
        let _guard = serial();
        let cache = DesignCache::new(2);
        let a = cache.get_or_build(SCALE, 1);
        let _b = cache.get_or_build(SCALE, 2);
        // Touch seed 1 so seed 2 is the LRU victim.
        let a2 = cache.get_or_build(SCALE, 1);
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = cache.get_or_build(SCALE, 3);
        assert_eq!(cache.len(), 2);
        // Seed 1 must still be resident (same Arc), seed 2 evicted.
        let a3 = cache.get_or_build(SCALE, 1);
        assert!(Arc::ptr_eq(&a, &a3));
    }

    #[test]
    fn concurrent_misses_build_once() {
        let _guard = serial();
        scap_obs::set_enabled(true);
        let cache = Arc::new(DesignCache::new(2));
        let seed = 0xC0FFEE; // unique to this test: counters are global
        let before = scap_obs::snapshot()
            .counter("serve.design_builds")
            .unwrap_or(0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || cache.get_or_build(SCALE, seed))
            })
            .collect();
        let designs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for d in &designs[1..] {
            assert!(Arc::ptr_eq(&designs[0], d));
        }
        let after = scap_obs::snapshot()
            .counter("serve.design_builds")
            .unwrap_or(0);
        assert_eq!(after - before, 1, "single-flight must build exactly once");
    }

    #[test]
    fn panicking_builder_does_not_poison_the_cache() {
        let _guard = serial();
        let cache = Arc::new(DesignCache::new(2));
        // Scale 0 violates the generator's contract; the build panics
        // outside the lock, and BuildGuard poisons the mutex while
        // cleaning up its Building entry during the unwind.
        let c = Arc::clone(&cache);
        let joined = std::thread::Builder::new()
            .name("panicking-builder".into())
            .spawn(move || c.get_or_build(0.0, 7))
            .unwrap()
            .join();
        assert!(joined.is_err(), "invalid scale must panic the builder");
        // Every entry point must recover instead of propagating the
        // poison: the aborted build left no entry behind, and a fresh
        // build on the same cache succeeds.
        assert_eq!(cache.len(), 0);
        let a = cache.get_or_build(SCALE, 7);
        let b = cache.get_or_build(SCALE, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn constructing_the_caches_registers_their_counter_families() {
        let _guard = serial();
        scap_obs::set_enabled(true);
        let _design = DesignCache::new(3);
        let _resp = ResponseCache::new(5);
        let snap = scap_obs::snapshot();
        for name in [
            "serve.cache.hits",
            "serve.cache.misses",
            "serve.cache.waits",
            "serve.cache.evictions",
            "serve.respcache.hits",
            "serve.respcache.misses",
            "serve.respcache.waits",
            "serve.respcache.evictions",
        ] {
            assert!(
                snap.counter(name).is_some(),
                "{name} must be registered at construction"
            );
        }
        assert_eq!(snap.gauge("serve.cache.capacity"), Some(3));
        assert_eq!(snap.gauge("serve.respcache.capacity"), Some(5));
    }

    #[test]
    fn response_cache_serves_hits_and_never_stores_errors() {
        let _guard = serial();
        let cache = ResponseCache::new(2);
        let mut builds = 0;
        for _ in 0..3 {
            let r = cache.get_or_respond("design|k1".to_owned(), || {
                builds += 1;
                Response::json(200, "{\"ok\":true}")
            });
            assert_eq!(r.status, 200);
        }
        assert_eq!(builds, 1, "two hits after the first build");
        assert_eq!(cache.len(), 1);

        // Errors pass through uncached: every lookup rebuilds.
        let mut error_builds = 0;
        for _ in 0..3 {
            let r = cache.get_or_respond("design|bad".to_owned(), || {
                error_builds += 1;
                Response::error(400, "no such block")
            });
            assert_eq!(r.status, 400);
        }
        assert_eq!(error_builds, 3, "non-200s are never admitted");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn response_cache_evicts_lru_and_counts_it() {
        let _guard = serial();
        scap_obs::set_enabled(true);
        let before = scap_obs::snapshot()
            .counter("serve.respcache.evictions")
            .unwrap_or(0);
        let cache = ResponseCache::new(2);
        for key in ["a", "b", "c"] {
            cache.get_or_respond(key.to_owned(), || Response::json(200, "{}"));
        }
        assert_eq!(cache.len(), 2);
        let after = scap_obs::snapshot()
            .counter("serve.respcache.evictions")
            .unwrap_or(0);
        assert_eq!(after - before, 1, "third insert evicts the LRU entry");
        // "a" was the victim; "b" and "c" are still hits.
        let mut rebuilt = 0;
        cache.get_or_respond("b".to_owned(), || {
            rebuilt += 1;
            Response::json(200, "{}")
        });
        cache.get_or_respond("c".to_owned(), || {
            rebuilt += 1;
            Response::json(200, "{}")
        });
        assert_eq!(rebuilt, 0);
    }
}
