//! Bounded job pool: fixed workers, fixed-depth queue, per-request
//! deadlines, and load shedding.
//!
//! Layered on [`scap_exec::BoundedQueue`]: admission control is the
//! queue's non-blocking `try_push` — when the queue is full the job is
//! refused immediately ([`Busy`]) and the server answers `503` with
//! `Retry-After` instead of buffering unbounded work. A caller that
//! stops waiting ([`JobHandle::wait_timeout`] elapsing) abandons its
//! job: if the job has not started yet the workers skip it entirely;
//! if it is mid-run its result is dropped on completion. Shutdown is
//! graceful by construction — closing the queue lets workers drain
//! everything already admitted before exiting.

use scap_exec::{BoundedQueue, PushError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool refused a job because the queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy;

struct HandleCell<T> {
    result: Mutex<Option<T>>,
    done: Condvar,
    abandoned: AtomicBool,
}

/// The submitting side's receipt for one job.
pub struct JobHandle<T> {
    cell: Arc<HandleCell<T>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("abandoned", &self.cell.abandoned.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> JobHandle<T> {
    /// Blocks until the job finishes or `timeout` elapses. On timeout
    /// the job is marked abandoned — a still-queued job will be skipped,
    /// a running one finishes but its result is dropped — and `None` is
    /// returned.
    pub fn wait_timeout(self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.cell.result.lock().expect("job handle poisoned");
        loop {
            if let Some(value) = slot.take() {
                return Some(value);
            }
            let now = Instant::now();
            if now >= deadline {
                self.cell.abandoned.store(true, Ordering::Release);
                scap_obs::counter!("serve.jobs.timed_out").incr();
                return None;
            }
            let (next, timed_out) = self
                .cell
                .done
                .wait_timeout(slot, deadline - now)
                .expect("job handle poisoned");
            slot = next;
            // Loop re-checks the slot even on timeout: the worker may
            // have finished right at the boundary.
            let _ = timed_out;
        }
    }
}

/// A fixed set of worker threads consuming a bounded queue (see the
/// module docs).
pub struct JobPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for JobPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl JobPool {
    /// A pool of `workers` threads over a queue admitting `queue_depth`
    /// jobs (both clamped to at least 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_depth));
        let workers = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("scap-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            scap_obs::gauge!("serve.queue_depth").set(queue.len() as u64);
                            scap_obs::counter!("serve.jobs.started").incr();
                            job();
                        }
                    })
                    .expect("spawning pool worker")
            })
            .collect();
        JobPool { queue, workers }
    }

    /// Jobs currently queued (not yet started).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Submits `f` without blocking. Returns [`Busy`] when the queue is
    /// full or the pool is shutting down — the caller sheds the load.
    pub fn try_submit<T, F>(&self, f: F) -> Result<JobHandle<T>, Busy>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let cell = Arc::new(HandleCell {
            result: Mutex::new(None),
            done: Condvar::new(),
            abandoned: AtomicBool::new(false),
        });
        let worker_cell = Arc::clone(&cell);
        let job: Job = Box::new(move || {
            if worker_cell.abandoned.load(Ordering::Acquire) {
                scap_obs::counter!("serve.jobs.abandoned").incr();
                return;
            }
            let value = f();
            scap_obs::counter!("serve.jobs.completed").incr();
            let mut slot = worker_cell.result.lock().expect("job handle poisoned");
            *slot = Some(value);
            drop(slot);
            worker_cell.done.notify_all();
        });
        match self.queue.try_push(job) {
            Ok(()) => {
                scap_obs::counter!("serve.jobs.submitted").incr();
                scap_obs::gauge!("serve.queue_depth").set_max(self.queue.len() as u64);
                Ok(JobHandle { cell })
            }
            Err(PushError::Full(_)) | Err(PushError::Closed(_)) => {
                scap_obs::counter!("serve.jobs.rejected").incr();
                Err(Busy)
            }
        }
    }

    /// Graceful shutdown: refuse new jobs, drain everything already
    /// queued, join the workers.
    pub fn shutdown(self) {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submitted_jobs_complete_with_results() {
        let pool = JobPool::new(2, 8);
        let handles: Vec<_> = (0..6u64)
            .map(|i| pool.try_submit(move || i * i).unwrap())
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25]);
        pool.shutdown();
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let pool = JobPool::new(1, 1);
        // One job occupies the worker, one fills the queue.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g1 = Arc::clone(&gate);
        let running = pool
            .try_submit(move || {
                let (lock, cv) = &*g1;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        // Give the worker a moment to pick the first job up.
        std::thread::sleep(Duration::from_millis(50));
        let queued = pool.try_submit(|| ()).unwrap();
        let t = Instant::now();
        assert_eq!(pool.try_submit(|| ()).unwrap_err(), Busy);
        assert!(t.elapsed() < Duration::from_millis(100), "must not block");
        // Open the gate; everything drains.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert!(running.wait_timeout(Duration::from_secs(5)).is_some());
        assert!(queued.wait_timeout(Duration::from_secs(5)).is_some());
        pool.shutdown();
    }

    #[test]
    fn timed_out_job_is_abandoned() {
        let pool = JobPool::new(1, 4);
        // Occupy the worker long enough for the second job to time out
        // while still queued.
        let _slow = pool
            .try_submit(|| std::thread::sleep(Duration::from_millis(300)))
            .unwrap();
        let fast = pool.try_submit(|| 42u32).unwrap();
        assert_eq!(fast.wait_timeout(Duration::from_millis(50)), None);
        pool.shutdown(); // drains: the abandoned job must be skipped, not run
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = JobPool::new(1, 8);
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..5)
            .map(|_| {
                let c = Arc::clone(&counter);
                pool.try_submit(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap()
            })
            .collect();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        for h in handles {
            assert!(h.wait_timeout(Duration::from_millis(1)).is_some());
        }
    }
}
